//! The serve-shard equivalence matrix: counting sharded 2-way and 4-way
//! through `cqc-serve` must return results byte-equal to the unsharded
//! engine, for a fixed seed, across all three query classes of Figure 1.
//!
//! Two layers are pinned:
//! 1. [`count_sharded`] itself — the per-item `EstimateReport`s carry the
//!    same estimate bits and guarantee fields for every shard count, and
//!    shards = 1 equals a plain serial loop over
//!    `PreparedQuery::count_with_seed`;
//! 2. the full server — rendered JSON responses (which serialise exactly
//!    the deterministic fields) are byte-identical across shard counts.

use cqc_core::Engine;
use cqc_data::Structure;
use cqc_runtime::{split_seed, Runtime};
use cqc_serve::{count_sharded, Server, ServerConfig};
use cqc_workloads::{erdos_renyi, footnote4_star_query, graph_database, path_query, star_query};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn snapshot(n: usize, avg_deg: f64, seed: u64) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = erdos_renyi(n, avg_deg / n as f64, &mut rng);
    graph_database(&g, "E", false)
}

fn snapshots() -> Vec<Structure> {
    (0..5)
        .map(|i| snapshot(9 + i, 2.5, 0xD1CE + i as u64))
        .collect()
}

#[test]
fn sharded_counts_equal_the_unsharded_engine_bit_for_bit() {
    let engine = Engine::builder()
        .accuracy(0.25, 0.05)
        .seed(17)
        .build()
        .unwrap();
    let dbs = snapshots();
    let runtime = Runtime::new(4);
    for query in [
        footnote4_star_query(2, false).query, // CQ → FPRAS
        star_query(2, true).query,            // DCQ → FPTRAS
        path_query(2, false, true).query,     // ECQ → FPTRAS
    ] {
        let prepared = engine.prepare(&query).unwrap();
        // the unsharded single-node reference: a serial loop over the
        // per-item derived seeds
        let reference: Vec<_> = dbs
            .iter()
            .enumerate()
            .map(|(i, db)| {
                prepared
                    .count_with_seed(db, split_seed(17, i as u64))
                    .unwrap()
            })
            .collect();
        for shards in [1usize, 2, 4] {
            let sharded = count_sharded(&prepared, &dbs, 17, shards, runtime).unwrap();
            assert_eq!(sharded.len(), reference.len());
            for (i, (s, r)) in sharded.iter().zip(&reference).enumerate() {
                assert_eq!(
                    s.estimate.to_bits(),
                    r.estimate.to_bits(),
                    "item {i} diverged at {shards} shards ({} vs {})",
                    s.estimate,
                    r.estimate
                );
                assert_eq!(s.exact, r.exact, "item {i} at {shards} shards");
                assert_eq!(s.epsilon, r.epsilon, "item {i} at {shards} shards");
                assert_eq!(s.delta, r.delta, "item {i} at {shards} shards");
            }
        }
    }
}

#[test]
fn count_with_engine_seed_is_bit_identical_to_count() {
    // the primitive the shard layer rests on: plans are seed-independent
    // and count_with_seed(engine seed) is exactly count()
    let engine = Engine::builder()
        .accuracy(0.3, 0.1)
        .seed(23)
        .build()
        .unwrap();
    let dbs = snapshots();
    for query in [
        footnote4_star_query(2, false).query,
        star_query(2, true).query,
    ] {
        let prepared = engine.prepare(&query).unwrap();
        for db in &dbs {
            let a = prepared.count(db).unwrap();
            let b = prepared.count_with_seed(db, 23).unwrap();
            assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
            // and a different seed reuses the plan but may move the estimate
            let c = prepared.count_with_seed(db, 24).unwrap();
            assert_eq!(a.exact, c.exact);
        }
    }
}

#[test]
fn server_responses_are_byte_identical_across_shard_layouts() {
    let server = Server::new(ServerConfig::default());
    let dbs_json: Vec<String> = snapshots().iter().map(cqc_data::write_facts).collect();
    let request = |shards: usize| {
        let dbs = dbs_json
            .iter()
            .map(|t| format!("\"{}\"", t.replace('\n', "\\n")))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            r#"{{"id": "m", "query": "ans(x) :- E(x, y), E(x, z), y != z", "dbs": [{dbs}], "seed": 31, "shards": {shards}}}"#
        )
    };
    let reference = server.handle_line(&request(1));
    assert!(
        reference.contains("\"estimate_bits\""),
        "unexpected response: {reference}"
    );
    for shards in [2usize, 4] {
        let sharded = server.handle_line(&request(shards));
        assert_eq!(
            reference.replace("\"shards\":1", "\"shards\":N"),
            sharded.replace(&format!("\"shards\":{shards}"), "\"shards\":N"),
            "shard layout leaked into the response bytes"
        );
    }
}
