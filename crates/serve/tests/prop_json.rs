//! Property tests for the serving layer's hand-rolled JSON module: the
//! parser must never panic on arbitrary input (it fronts a network socket
//! in `cqc-net`), and render → parse must be the identity on every value
//! the server can produce — strings with escapes, bit-exact finite
//! numbers, and arbitrarily nested trees.

use cqc_serve::json::{parse, Value};
use proptest::prelude::*;

/// Arbitrary Unicode strings, biased towards the characters the escape
/// logic has to handle: quotes, backslashes, control characters, newlines,
/// and non-ASCII scalars.
fn arb_string() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            4 => (32u32..127).prop_map(|c| char::from_u32(c).unwrap()),
            2 => prop_oneof![
                Just('"'),
                Just('\\'),
                Just('\n'),
                Just('\r'),
                Just('\t'),
                Just('\u{0}'),
                Just('\u{1f}'),
            ],
            1 => any::<u32>().prop_map(|c| char::from_u32(c % 0x11_0000).unwrap_or('\u{FFFD}')),
        ],
        0..24,
    )
    .prop_map(|chars| chars.into_iter().collect())
}

/// Arbitrary finite `f64`s via their bit patterns (covers subnormals,
/// negative zero, and exact integers alongside run-of-the-mill values).
fn arb_finite_f64() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let x = f64::from_bits(bits);
        if x.is_finite() {
            x
        } else {
            f64::from_bits(bits & !(0x7FF0_0000_0000_0000))
        }
    })
}

/// Arbitrary JSON value trees of bounded depth and width.
fn arb_value(depth: u32) -> BoxedStrategy<Value> {
    let scalar = prop_oneof![
        1 => Just(Value::Null),
        1 => any::<bool>().prop_map(Value::Bool),
        3 => arb_finite_f64().prop_map(Value::Num),
        3 => arb_string().prop_map(Value::Str),
    ]
    .boxed();
    if depth == 0 {
        return scalar;
    }
    let inner = arb_value(depth - 1);
    let arr = proptest::collection::vec(arb_value(depth - 1), 0..4).prop_map(Value::Arr);
    let obj = proptest::collection::vec((arb_string(), inner), 0..4).prop_map(Value::Obj);
    prop_oneof![2 => scalar, 1 => arr.boxed(), 1 => obj.boxed()].boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Feeding arbitrary bytes (lossily decoded, as a socket reader would)
    /// to the parser returns `Ok` or `Err` — it never panics.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse(&text);
    }

    /// Mutating one byte of a valid document must not panic either —
    /// this walks the parser into "almost JSON" territory (truncated
    /// escapes, dangling commas, cut-off literals).
    #[test]
    fn parser_never_panics_on_corrupted_documents(
        v in arb_value(2),
        pos in any::<usize>(),
        byte in any::<u8>(),
    ) {
        let mut bytes = v.render().into_bytes();
        if !bytes.is_empty() {
            let i = pos % bytes.len();
            bytes[i] = byte;
        }
        let _ = parse(&String::from_utf8_lossy(&bytes));
    }

    /// Truncating a valid document at any byte must not panic.
    #[test]
    fn parser_never_panics_on_truncated_documents(v in arb_value(2), cut in any::<usize>()) {
        let text = v.render();
        let cut = cut % (text.len() + 1);
        let prefix = String::from_utf8_lossy(&text.as_bytes()[..cut]).into_owned();
        let _ = parse(&prefix);
    }

    /// String escaping round-trips every Unicode scalar exactly.
    #[test]
    fn string_escapes_round_trip(s in arb_string()) {
        let rendered = Value::Str(s.clone()).render();
        let back = parse(&rendered).expect("rendered string parses");
        prop_assert_eq!(back, Value::Str(s));
    }

    /// Finite numbers round-trip bit-exactly (the response renderer relies
    /// on this for `estimate`; `estimate_bits` is belt-and-braces).
    #[test]
    fn finite_numbers_round_trip_bit_exactly(x in arb_finite_f64()) {
        let rendered = Value::Num(x).render();
        let back = parse(&rendered).expect("rendered number parses").as_f64().expect("number");
        prop_assert_eq!(back.to_bits(), x.to_bits(), "{}", rendered);
    }

    /// Whole rendered trees parse back to the identical tree, and the
    /// renderer is deterministic (two renders, same bytes).
    #[test]
    fn value_trees_round_trip(v in arb_value(3)) {
        let rendered = v.render();
        prop_assert_eq!(&rendered, &v.render(), "rendering is deterministic");
        let back = parse(&rendered).expect("rendered value parses");
        prop_assert_eq!(back, v);
    }
}
