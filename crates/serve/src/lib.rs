//! # cqc-serve — the sharded serving front end
//!
//! A std-only serving layer over the `Engine` / `PreparedQuery` API: a
//! newline-delimited JSON request loop ([`Server::serve_lines`]) that plans
//! each distinct query once, then fans a request's work items (databases)
//! across **simulated shards** executed by the persistent worker pool of
//! `cqc-runtime`.
//!
//! The layer's load-bearing property is the **shard-equivalence
//! guarantee**: work item `i` of a request is always evaluated under the
//! derived seed `split_seed(request_seed, i)` (plans are seed-independent,
//! see `PreparedQuery::count_with_seed`), and shard partials are merged in
//! shard-index order back into item order. Estimates — and the rendered
//! response bytes — are therefore identical whether a request runs
//! unsharded, 2-way, or 4-way sharded, on any pool width. See
//! [`count_sharded`] and the module docs of [`server`] for the argument,
//! and `tests/shard_equivalence.rs` for the pinned matrix.
//!
//! The wire format is handled by the crate's own minimal [`json`] module
//! (the workspace's vendored `serde` shim is inert by design).
//!
//! ```
//! use cqc_serve::{Server, ServerConfig};
//!
//! let server = Server::new(ServerConfig::default());
//! let response = server.handle_line(
//!     r#"{"id": 1,
//!         "query": "ans(x) :- E(x, y), E(x, z), y != z",
//!         "dbs": ["universe 3\nrelation E 2\nE 0 1\nE 0 2\n"],
//!         "seed": 7, "shards": 2}"#,
//! );
//! assert!(response.contains("\"estimate\":1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod server;

pub use server::{
    count_sharded, overload_line, ServeError, Server, ServerConfig, StatsSnapshot,
    MAX_REQUEST_WORKERS, MAX_SHARDS_PER_ITEM, OVERLOAD_CONNECTION_LIMIT, OVERLOAD_QUEUE_FULL,
};
