//! The sharded counting server.
//!
//! ## Sharding contract
//!
//! A request carries a query, a list of databases (the *work items*) and a
//! request seed. Work item `i` is **always** evaluated under the derived
//! seed `split_seed(request_seed, i)` — regardless of which shard, thread
//! or machine evaluates it. This is the `(seed, work-item index)` scheme of
//! `cqc-runtime` lifted to the serving layer: because an item's estimate is
//! a pure function of `(plan, item seed, database)`, *any* partition of the
//! items across shards merges back — in shard-index order — to exactly the
//! answer a single unsharded node computes. The shard-equivalence tests
//! pin this down to the byte: responses rendered for 1, 2 and 4 shards are
//! identical.
//!
//! Shards here are *simulated*: each shard's slice of items is evaluated by
//! a participant of the persistent worker pool (`cqc_runtime::pool`). A
//! distributed deployment would place each shard on its own machine and
//! merge partials the same way; nothing in the contract changes, which is
//! the point of deriving item seeds instead of threading one RNG stream
//! through the request.

use crate::json::{parse, Value};
use cqc_core::{Backend, CoreError, Engine, EngineBuilder, EstimateReport, PreparedQuery};
use cqc_data::{parse_facts, Structure};
use cqc_obs::{Counter, Histogram, Registry, Stopwatch};
use cqc_query::parse_query;
use cqc_runtime::{split_seed, Runtime};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{BufRead, Write};
use std::sync::{Arc, Mutex};

/// Tag index deriving a request's span ID from its seed
/// (`split_seed(request_seed, REQUEST_SPAN_TAG)`); work-item spans hang off
/// it with per-item IDs `split_seed(request_seed, item)`.
const REQUEST_SPAN_TAG: u64 = 0x5245_5154; // "REQT"

/// Errors surfaced by the serving front end (rendered into `error`
/// responses by the request loop).
#[derive(Debug, Clone)]
pub enum ServeError {
    /// The request line is not valid JSON or misses required members.
    Request(String),
    /// The query text could not be parsed.
    Query(String),
    /// A database could not be parsed or read.
    Database(String),
    /// Planning or evaluation failed.
    Count(String),
    /// Writing a response failed.
    Io(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Request(m) => write!(f, "bad request: {m}"),
            ServeError::Query(m) => write!(f, "query error: {m}"),
            ServeError::Database(m) => write!(f, "database error: {m}"),
            ServeError::Count(m) => write!(f, "counting error: {m}"),
            ServeError::Io(m) => write!(f, "io error: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Server-wide defaults; individual requests may override the accuracy,
/// seed and shard count per request.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Simulated shards a request's work items are partitioned across
    /// (requests may override with a `"shards"` member). The shard count
    /// never affects results — only which pool participant computes what.
    pub shards: usize,
    /// Worker threads for each shard's inner evaluations (`0` = auto).
    pub threads: usize,
    /// Default relative error `ε`.
    pub epsilon: f64,
    /// Default failure probability `δ`.
    pub delta: f64,
    /// Default request seed.
    pub seed: u64,
    /// Maximum number of prepared plans kept in the LRU cache (clamped to
    /// at least 1). Plans are bounded-size but not small — a long-running
    /// server facing many distinct (query, accuracy) keys must not grow
    /// without limit. Evictions are counted in [`StatsSnapshot`].
    pub plan_cache_capacity: usize,
    /// Honour the deliberate failure hooks in requests (a `"panic": true`
    /// member makes the handler panic). **Test harnesses only** — crash
    /// paths (panic containment, flight-recorder dumps) cannot be
    /// exercised end-to-end without a way to make a real handler fail. The
    /// CLI never sets this, so the member is inert in production.
    pub fail_injection: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 1,
            threads: 0,
            epsilon: 0.25,
            delta: 0.05,
            seed: 0xC0FFEE,
            plan_cache_capacity: 64,
            fail_injection: false,
        }
    }
}

/// Per-request `workers` values above this are rejected as absurd: no
/// deployment has tens of thousands of cores, and a typo'd huge width
/// would otherwise ask the runtime for that many scoped threads.
pub const MAX_REQUEST_WORKERS: u64 = 4096;

/// A request may ask for at most this many shards **per work item** —
/// beyond that every extra shard is guaranteed empty and the request is
/// almost certainly malformed (e.g. `shards` confused with a size).
pub const MAX_SHARDS_PER_ITEM: usize = 16;

/// Monotonic serving counters, updated by [`Server::handle_line`] and the
/// plan cache. All counters are shared `cqc-obs` series (relaxed atomics)
/// — they feed the `/metrics` endpoint of `cqc-net` via
/// [`Server::register_metrics`] and never influence results.
#[derive(Debug)]
struct ServerCounters {
    requests: Arc<Counter>,
    errors: Arc<Counter>,
    work_items: Arc<Counter>,
    plan_cache_hits: Arc<Counter>,
    plan_cache_misses: Arc<Counter>,
    plan_cache_evictions: Arc<Counter>,
    oracle_calls: Arc<Counter>,
    colour_repetitions: Arc<Counter>,
    shard_merge: Arc<Histogram>,
}

impl Default for ServerCounters {
    fn default() -> Self {
        ServerCounters {
            requests: Arc::new(Counter::new()),
            errors: Arc::new(Counter::new()),
            work_items: Arc::new(Counter::new()),
            plan_cache_hits: Arc::new(Counter::new()),
            plan_cache_misses: Arc::new(Counter::new()),
            plan_cache_evictions: Arc::new(Counter::new()),
            oracle_calls: Arc::new(Counter::new()),
            colour_repetitions: Arc::new(Counter::new()),
            shard_merge: Arc::new(Histogram::default()),
        }
    }
}

/// A point-in-time copy of the server's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Request lines handled (including ones answered with an error).
    pub requests: u64,
    /// Requests answered with an `error` response.
    pub errors: u64,
    /// Work items (databases) evaluated across all requests.
    pub work_items: u64,
    /// Requests whose plan was already cached.
    pub plan_cache_hits: u64,
    /// Requests that had to prepare a plan.
    pub plan_cache_misses: u64,
    /// Plans evicted by the LRU bound ([`ServerConfig::plan_cache_capacity`]).
    pub plan_cache_evictions: u64,
}

/// The bounded LRU plan cache: a `BTreeMap` keyed by [`PlanKey`] with a
/// logical-clock `last_used` stamp per entry. Capacity is small (default
/// 64), so eviction scans for the stalest entry instead of maintaining an
/// intrusive list.
struct PlanCache {
    entries: BTreeMap<PlanKey, (Arc<PreparedQuery>, u64)>,
    tick: u64,
    capacity: usize,
}

impl PlanCache {
    fn new(capacity: usize) -> Self {
        PlanCache {
            entries: BTreeMap::new(),
            tick: 0,
            capacity: capacity.max(1),
        }
    }

    /// Look up a plan, refreshing its recency stamp.
    fn get(&mut self, key: &PlanKey) -> Option<Arc<PreparedQuery>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|(plan, used)| {
            *used = tick;
            Arc::clone(plan)
        })
    }

    /// Insert a freshly prepared plan (a racing earlier insert wins and is
    /// returned instead), then evict least-recently-used entries down to
    /// capacity. Returns the canonical plan and the number of evictions.
    fn insert(&mut self, key: PlanKey, plan: Arc<PreparedQuery>) -> (Arc<PreparedQuery>, u64) {
        self.tick += 1;
        let tick = self.tick;
        let canonical = {
            let entry = self
                .entries
                .entry(key)
                .and_modify(|(_, used)| *used = tick)
                .or_insert((plan, tick));
            Arc::clone(&entry.0)
        };
        let mut evicted = 0u64;
        while self.entries.len() > self.capacity {
            let stalest = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
                // cqc-audit: allow(serve-panic) — unreachable: the eviction loop only runs while len() > capacity ≥ 0, so the cache is non-empty here
                .expect("cache over capacity is non-empty");
            self.entries.remove(&stalest);
            evicted += 1;
        }
        (canonical, evicted)
    }
}

/// Key of the prepared-plan cache: everything query-side that shapes a
/// plan. Seeds and shard counts are deliberately absent — plans are
/// seed-independent, which is what lets one cached plan serve every seed
/// and every shard layout with bit-identical results.
type PlanKey = (String, u64, u64, u8);

/// The sharded counting server: caches prepared plans per (query,
/// accuracy, backend) and answers count requests by fanning work items
/// across simulated shards on the persistent worker pool.
pub struct Server {
    config: ServerConfig,
    plans: Mutex<PlanCache>,
    counters: ServerCounters,
}

impl Server {
    /// A server with the given defaults.
    pub fn new(config: ServerConfig) -> Self {
        let cache = PlanCache::new(config.plan_cache_capacity);
        Server {
            config,
            plans: Mutex::new(cache),
            counters: ServerCounters::default(),
        }
    }

    /// The server's defaults.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Number of distinct prepared plans currently cached.
    pub fn cached_plans(&self) -> usize {
        // cqc-audit: allow(serve-panic) — lock poisoning implies a worker already panicked; aborting is the right response, not error recovery
        self.plans.lock().expect("plan cache lock").entries.len()
    }

    /// A point-in-time copy of the serving counters (requests, errors,
    /// work items, plan-cache hits/misses/evictions).
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.counters.requests.get(),
            errors: self.counters.errors.get(),
            work_items: self.counters.work_items.get(),
            plan_cache_hits: self.counters.plan_cache_hits.get(),
            plan_cache_misses: self.counters.plan_cache_misses.get(),
            plan_cache_evictions: self.counters.plan_cache_evictions.get(),
        }
    }

    /// Register the server's historical counters in a shared metrics
    /// registry, in the order `/metrics` has always rendered them. The
    /// network layer calls this (after its own counters, before the
    /// latency histogram) so the byte prefix of the endpoint is unchanged
    /// from the pre-registry implementation.
    pub fn register_metrics(&self, registry: &Registry) {
        registry.register_counter(
            "cqc_serve_requests_total",
            "count requests handled by the serving core",
            Arc::clone(&self.counters.requests),
        );
        registry.register_counter(
            "cqc_serve_request_errors_total",
            "count requests answered with an error",
            Arc::clone(&self.counters.errors),
        );
        registry.register_counter(
            "cqc_shard_work_items_total",
            "work items (databases) evaluated across all requests",
            Arc::clone(&self.counters.work_items),
        );
        registry.register_counter(
            "cqc_plan_cache_hits_total",
            "requests served from the prepared-plan cache",
            Arc::clone(&self.counters.plan_cache_hits),
        );
        registry.register_counter(
            "cqc_plan_cache_misses_total",
            "requests that prepared a new plan",
            Arc::clone(&self.counters.plan_cache_misses),
        );
        registry.register_counter(
            "cqc_plan_cache_evictions_total",
            "plans evicted by the LRU capacity bound",
            Arc::clone(&self.counters.plan_cache_evictions),
        );
    }

    /// Register the series added with the unified registry (oracle-call and
    /// colour-repetition totals, the shard-merge histogram). Kept separate
    /// from [`Server::register_metrics`] so the network layer can place
    /// them *after* the historical series — `/metrics` stays a byte-stable
    /// prefix plus strictly appended lines.
    pub fn register_extended_metrics(&self, registry: &Registry) {
        registry.register_counter(
            "cqc_oracle_calls_total",
            "EdgeFree oracle calls issued while answering count requests",
            Arc::clone(&self.counters.oracle_calls),
        );
        registry.register_counter(
            "cqc_colour_repetitions_total",
            "colour-coding repetitions budgeted across evaluated work items",
            Arc::clone(&self.counters.colour_repetitions),
        );
        registry.register_histogram(
            "cqc_shard_merge_seconds",
            Arc::clone(&self.counters.shard_merge),
        );
    }

    /// Fetch or build the prepared plan for a (query, accuracy, backend)
    /// triple. Concurrent first requests for a key may prepare redundantly
    /// (the lock is not held across the expensive `prepare`); the first
    /// insert wins and every caller — including the redundant preparers —
    /// returns the cached [`PreparedQuery`], so later requests always
    /// share one plan. Redundant preparation is harmless beyond the wasted
    /// work: plans are seed-independent and deterministic.
    fn plan_for(
        &self,
        query_text: &str,
        epsilon: f64,
        delta: f64,
        backend: Backend,
    ) -> Result<Arc<PreparedQuery>, ServeError> {
        let key: PlanKey = (
            query_text.to_string(),
            epsilon.to_bits(),
            delta.to_bits(),
            backend_tag(backend),
        );
        // cqc-audit: allow(serve-panic) — lock poisoning implies a worker already panicked; aborting is the right response, not error recovery
        if let Some(plan) = self.plans.lock().expect("plan cache lock").get(&key) {
            self.counters.plan_cache_hits.inc();
            return Ok(plan);
        }
        self.counters.plan_cache_misses.inc();
        let query = parse_query(query_text).map_err(|e| ServeError::Query(e.to_string()))?;
        let engine: Engine = EngineBuilder::new()
            .accuracy(epsilon, delta)
            .threads(self.config.threads)
            .backend(backend)
            .build()
            .map_err(|e| ServeError::Count(e.to_string()))?;
        let prepared = engine
            .prepare(&query)
            .map_err(|e| ServeError::Count(e.to_string()))?;
        let (canonical, evicted) = self
            .plans
            .lock()
            // cqc-audit: allow(serve-panic) — lock poisoning implies a worker already panicked; aborting is the right response, not error recovery
            .expect("plan cache lock")
            .insert(key, Arc::new(prepared));
        if evicted > 0 {
            self.counters.plan_cache_evictions.add(evicted);
        }
        Ok(canonical)
    }

    /// Handle one request line, returning the response line (always valid
    /// JSON; failures become `{"id":…,"error":…}` responses).
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_classified(line).0
    }

    /// Like [`Server::handle_line`], additionally reporting whether the
    /// response is an `error` response. The network front end maps errors
    /// to an HTTP `400` while keeping the body bytes identical.
    pub fn handle_line_classified(&self, line: &str) -> (String, bool) {
        self.counters.requests.inc();
        let (id, trace_id, result) = match parse(line) {
            Err(e) => (Value::Null, None, Err(ServeError::Request(e.to_string()))),
            Ok(req) => {
                let id = req.get("id").cloned().unwrap_or(Value::Null);
                // An optional client correlation ID ("trace"): echoed back
                // verbatim whether tracing is on or off — a pure function
                // of the request bytes, so it cannot break byte identity.
                let trace_id = req
                    .get("trace")
                    .and_then(Value::as_str)
                    .map(|t| t.to_string());
                if let Some(t) = &trace_id {
                    cqc_obs::trace::instant("traceparent", t);
                    // Correlate the request's wide event with the client's
                    // trace id (the HTTP front end's `traceparent` header,
                    // when present, overrides this at emission).
                    if cqc_obs::wide::phases_active() {
                        cqc_obs::wide::note_trace(t);
                    }
                }
                (id.clone(), trace_id, self.handle(&req))
            }
        };
        match result {
            Ok(mut members) => {
                members.insert(0, ("id".to_string(), id));
                if let Some(t) = trace_id {
                    members.push(("trace".to_string(), Value::Str(t)));
                }
                (Value::Obj(members).render(), false)
            }
            Err(e) => {
                self.counters.errors.inc();
                let mut members = vec![
                    ("id".to_string(), id),
                    ("error".to_string(), Value::Str(e.to_string())),
                ];
                if let Some(t) = trace_id {
                    members.push(("trace".to_string(), Value::Str(t)));
                }
                (Value::Obj(members).render(), true)
            }
        }
    }

    /// Handle a parsed request, returning the response members (without
    /// the echoed `id`, which [`Server::handle_line`] prepends).
    fn handle(&self, req: &Value) -> Result<Vec<(String, Value)>, ServeError> {
        let query_text = req
            .get("query")
            .and_then(Value::as_str)
            .ok_or_else(|| ServeError::Request("missing string member `query`".into()))?;
        let epsilon = member_f64(req, "epsilon", self.config.epsilon)?;
        let delta = member_f64(req, "delta", self.config.delta)?;
        // Seeds are accepted as JSON numbers only up to 2⁵³ (the exact-f64
        // range); larger u64 seeds must be sent as decimal strings, never
        // silently rounded — reproducibility is the whole contract.
        let seed = match req.get("seed") {
            None => self.config.seed,
            Some(Value::Str(raw)) => raw
                .parse::<u64>()
                .map_err(|_| ServeError::Request("`seed` string must be a decimal u64".into()))?,
            Some(v) => v.as_u64().ok_or_else(|| {
                ServeError::Request(
                    "`seed` must be a non-negative integer below 2^53 (use a decimal \
                     string for larger seeds)"
                        .into(),
                )
            })?,
        };
        let (shards, shards_explicit) = match req.get("shards") {
            None => (self.config.shards, false),
            Some(v) => (
                v.as_u64().filter(|&s| s >= 1).ok_or_else(|| {
                    ServeError::Request("`shards` must be a positive integer".into())
                })? as usize,
                true,
            ),
        };
        // Optional per-request worker width for the inner evaluations.
        // Width never changes results, but `0` would mean "auto" by
        // accident and absurd widths would ask for that many threads, so
        // both are rejected up front.
        let workers = match req.get("workers") {
            None => self.config.threads,
            Some(v) => v
                .as_u64()
                .filter(|&w| (1..=MAX_REQUEST_WORKERS).contains(&w))
                .ok_or_else(|| {
                    ServeError::Request(format!(
                        "`workers` must be a positive integer at most {MAX_REQUEST_WORKERS}"
                    ))
                })? as usize,
        };
        let backend = match req.get("method") {
            None => Backend::Auto,
            Some(v) => parse_backend(
                v.as_str()
                    .ok_or_else(|| ServeError::Request("`method` must be a string".into()))?,
            )?,
        };
        let dbs = load_request_databases(req)?;
        // Beyond MAX_SHARDS_PER_ITEM × items every additional shard is
        // provably empty; a *request* asking for that is a malformed
        // client and gets a structured error. A high server-side default
        // (`--shards K` with a small request) is operator configuration,
        // not a client bug: it is applied as-is — extra shards are empty
        // and the response bytes are unchanged by the equivalence
        // contract.
        let max_shards = dbs.len().saturating_mul(MAX_SHARDS_PER_ITEM);
        if shards_explicit && shards > max_shards {
            return Err(ServeError::Request(format!(
                "`shards` = {shards} is out of range for {} work item(s) \
                 (at most {MAX_SHARDS_PER_ITEM} shards per item, i.e. {max_shards})",
                dbs.len()
            )));
        }
        self.counters.work_items.add(dbs.len() as u64);

        let _span = cqc_obs::trace::Span::enter("request", split_seed(seed, REQUEST_SPAN_TAG));
        // Deliberate failure hook for crash-path testing, inert unless the
        // operator opted in (see [`ServerConfig::fail_injection`]).
        if self.config.fail_injection && matches!(req.get("panic"), Some(Value::Bool(true))) {
            // cqc-audit: allow(serve-panic) — deliberate fail-injection hook, reachable only when ServerConfig::fail_injection is set by a test harness
            panic!("fail injection: request carried `\"panic\": true`");
        }
        // Phase annotations for the request's wide event: armed by the
        // network front end's dispatch worker, drained at emission. The
        // stopwatches run only when an accumulator is armed, and their
        // readings land in telemetry only — never in a result.
        let annotate = cqc_obs::wide::phases_active();
        let prepare_timer = annotate.then(Stopwatch::start);
        let prepared = self.plan_for(query_text, epsilon, delta, backend)?;
        if let Some(timer) = prepare_timer {
            cqc_obs::wide::note_phase(
                "prepare",
                timer.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
            cqc_obs::wide::note_class(&format!("{:?}", prepared.class()));
        }
        let runtime = Runtime::new(workers);
        let evaluate_timer = annotate.then(Stopwatch::start);
        let reports = count_sharded_observed(
            &prepared,
            &dbs,
            seed,
            shards,
            runtime,
            Some(&self.counters.shard_merge),
        )
        .map_err(|e| ServeError::Count(e.to_string()))?;
        if let Some(timer) = evaluate_timer {
            cqc_obs::wide::note_phase(
                "evaluate",
                timer.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
        }
        // Telemetry roll-up into the unified registry. Oracle-call and
        // repetition counts are deterministic per item (unlike hom_calls,
        // which early exits make scheduling-dependent).
        self.counters
            .oracle_calls
            .add(reports.iter().map(|r| r.telemetry.oracle_calls).sum());
        self.counters.colour_repetitions.add(
            reports
                .iter()
                .map(|r| r.telemetry.colour_repetitions as u64)
                .sum(),
        );

        // Only deterministic fields go on the wire: estimates (value +
        // exact bits), the guarantee, and the per-item derived seed.
        // Telemetry (wall times, scheduling-dependent hom-call counts)
        // stays out so responses are byte-identical across shard layouts
        // and runs — the shard-equivalence tests depend on it.
        let results: Vec<Value> = reports
            .iter()
            .enumerate()
            .map(|(i, r)| render_result(i, split_seed(seed, i as u64), r))
            .collect();
        Ok(vec![
            ("shards".to_string(), Value::Num(shards as f64)),
            (
                "class".to_string(),
                Value::Str(format!("{:?}", prepared.class())),
            ),
            (
                "method".to_string(),
                Value::Str(prepared.method().to_string()),
            ),
            ("results".to_string(), Value::Arr(results)),
        ])
    }

    /// The request loop: read newline-delimited JSON requests, write one
    /// JSON response line per request. Blank lines are skipped; the loop
    /// ends at EOF. Responses are flushed per line so interactive clients
    /// see them immediately.
    pub fn serve_lines<R: BufRead, W: Write>(
        &self,
        reader: R,
        writer: &mut W,
    ) -> Result<usize, ServeError> {
        let mut served = 0usize;
        for line in reader.lines() {
            let line = line.map_err(|e| ServeError::Io(e.to_string()))?;
            if line.trim().is_empty() {
                continue;
            }
            let response = self.handle_line(&line);
            writeln!(writer, "{response}").map_err(|e| ServeError::Io(e.to_string()))?;
            writer.flush().map_err(|e| ServeError::Io(e.to_string()))?;
            served += 1;
        }
        Ok(served)
    }
}

/// Reason fragment for a connection refused at the concurrent-connection
/// cap (see [`overload_line`]).
pub const OVERLOAD_CONNECTION_LIMIT: &str = "connection limit reached";

/// Reason fragment for a request shed because the dispatch queue is at its
/// bound (see [`overload_line`]).
pub const OVERLOAD_QUEUE_FULL: &str = "dispatch queue full";

/// The canonical load-shed response line: `{"id":null,"error":"server
/// overloaded: <reason>"}`. Front ends must serve these bytes verbatim —
/// as an HTTP 503 body and as a raw NDJSON error line (plus `\n`) — so
/// clients parse one shape on every protocol and the shed path stays a
/// pure function of the overload reason.
pub fn overload_line(reason: &str) -> String {
    Value::Obj(vec![
        ("id".to_string(), Value::Null),
        (
            "error".to_string(),
            Value::Str(format!("server overloaded: {reason}")),
        ),
    ])
    .render()
}

/// Evaluate `dbs` through `shards` simulated shards: shard `s` owns the
/// items `i ≡ s (mod shards)`, every item `i` is evaluated under the
/// derived seed `split_seed(seed, i)`, and partial results are merged in
/// shard-index order back into item order.
///
/// **Equivalence guarantee:** the returned estimates are bit-identical for
/// every shard count (including `1`, the unsharded single-node run) and
/// every pool width, because item `i`'s estimate depends only on the plan,
/// `dbs[i]` and `split_seed(seed, i)` — never on which shard computed it.
/// On a failure the error of the first failing item (by index) is
/// returned, matching `PreparedQuery::count_batch`.
pub fn count_sharded(
    prepared: &PreparedQuery,
    dbs: &[Structure],
    seed: u64,
    shards: usize,
    runtime: Runtime,
) -> Result<Vec<EstimateReport>, CoreError> {
    count_sharded_observed(prepared, dbs, seed, shards, runtime, None)
}

/// [`count_sharded`] with the merge phase optionally timed into a shared
/// histogram ([`Server::handle`] passes its `cqc_shard_merge_seconds`
/// series; the public wrapper passes `None`). Observation-only: the merged
/// results are identical either way.
fn count_sharded_observed(
    prepared: &PreparedQuery,
    dbs: &[Structure],
    seed: u64,
    shards: usize,
    runtime: Runtime,
    merge_hist: Option<&Histogram>,
) -> Result<Vec<EstimateReport>, CoreError> {
    let k = shards.max(1);
    let n = dbs.len();
    // Work-item spans may open on pool workers; capture the logical parent
    // (the request span, if any) on the dispatching thread.
    let parent_span = cqc_obs::trace::current_span();
    // Round-robin shard ownership: shard s evaluates items s, s+k, s+2k, …
    let assignments: Vec<Vec<usize>> = (0..k).map(|s| (s..n).step_by(k).collect()).collect();
    let partials: Vec<Vec<(usize, Result<EstimateReport, CoreError>)>> =
        runtime.par_map(&assignments, |_, items| {
            items
                .iter()
                .map(|&i| {
                    let item_seed = split_seed(seed, i as u64);
                    let _span = cqc_obs::trace::Span::child_of(parent_span, "work_item", item_seed);
                    (i, prepared.count_with_seed(&dbs[i], item_seed))
                })
                .collect()
        });
    // Merge in shard-index order: iterate shards 0..k, placing each partial
    // at its global item index. The merge is a pure reshuffle — estimates
    // were fixed per item above — so shard layout cannot change any byte.
    let merge_start = Stopwatch::start();
    let mut merged: Vec<Option<Result<EstimateReport, CoreError>>> = (0..n).map(|_| None).collect();
    for shard in partials {
        for (i, r) in shard {
            merged[i] = Some(r);
        }
    }
    let out = merged
        .into_iter()
        // cqc-audit: allow(serve-panic) — unreachable: shard_indices partitions 0..n, so every slot was filled by exactly one shard
        .map(|r| r.expect("every item owned by exactly one shard"))
        .collect();
    if let Some(hist) = merge_hist {
        hist.record(merge_start.elapsed());
    }
    out
}

fn render_result(item: usize, item_seed: u64, report: &EstimateReport) -> Value {
    Value::Obj(vec![
        ("item".to_string(), Value::Num(item as f64)),
        ("estimate".to_string(), Value::Num(report.estimate)),
        (
            "estimate_bits".to_string(),
            Value::Str(format!("{:016x}", report.estimate.to_bits())),
        ),
        ("exact".to_string(), Value::Bool(report.exact)),
        ("epsilon".to_string(), Value::Num(report.epsilon)),
        ("delta".to_string(), Value::Num(report.delta)),
        (
            "item_seed".to_string(),
            Value::Str(format!("{item_seed:016x}")),
        ),
    ])
}

fn member_f64(req: &Value, key: &str, default: f64) -> Result<f64, ServeError> {
    match req.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| ServeError::Request(format!("`{key}` must be a number"))),
    }
}

fn backend_tag(backend: Backend) -> u8 {
    match backend {
        Backend::Auto => 0,
        Backend::Fpras => 1,
        Backend::Fptras => 2,
        Backend::Exact => 3,
    }
}

fn parse_backend(raw: &str) -> Result<Backend, ServeError> {
    match raw {
        "auto" => Ok(Backend::Auto),
        "fpras" => Ok(Backend::Fpras),
        "fptras" => Ok(Backend::Fptras),
        "exact" => Ok(Backend::Exact),
        other => Err(ServeError::Request(format!(
            "unknown method `{other}` (expected auto | fpras | fptras | exact)"
        ))),
    }
}

/// Load the request's databases: inline facts texts (`"dbs"`) and/or facts
/// files (`"db_files"`), in that order.
fn load_request_databases(req: &Value) -> Result<Vec<Structure>, ServeError> {
    let mut dbs = Vec::new();
    if let Some(items) = req.get("dbs") {
        let items = items
            .as_arr()
            .ok_or_else(|| ServeError::Request("`dbs` must be an array of facts texts".into()))?;
        for (i, item) in items.iter().enumerate() {
            let text = item.as_str().ok_or_else(|| {
                ServeError::Request(format!("`dbs[{i}]` must be a facts-file string"))
            })?;
            dbs.push(
                parse_facts(text).map_err(|e| ServeError::Database(format!("dbs[{i}]: {e}")))?,
            );
        }
    }
    if let Some(items) = req.get("db_files") {
        let items = items
            .as_arr()
            .ok_or_else(|| ServeError::Request("`db_files` must be an array of paths".into()))?;
        for item in items {
            let path = item
                .as_str()
                .ok_or_else(|| ServeError::Request("`db_files` entries must be strings".into()))?;
            let text = std::fs::read_to_string(path)
                .map_err(|e| ServeError::Database(format!("cannot read `{path}`: {e}")))?;
            dbs.push(parse_facts(&text).map_err(|e| ServeError::Database(format!("{path}: {e}")))?);
        }
    }
    if dbs.is_empty() {
        return Err(ServeError::Request(
            "provide at least one database via `dbs` (inline facts) or `db_files` (paths)".into(),
        ));
    }
    Ok(dbs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_line_bytes_are_pinned() {
        assert_eq!(
            overload_line(OVERLOAD_CONNECTION_LIMIT),
            r#"{"id":null,"error":"server overloaded: connection limit reached"}"#
        );
        assert_eq!(
            overload_line(OVERLOAD_QUEUE_FULL),
            r#"{"id":null,"error":"server overloaded: dispatch queue full"}"#
        );
    }

    const FACTS: &str =
        "universe 6\nrelation E 2\nE 0 1\nE 0 2\nE 1 2\nE 2 3\nE 3 4\nE 3 5\nE 5 0\n";
    const FACTS2: &str = "universe 4\nrelation E 2\nE 0 1\nE 0 2\nE 3 1\nE 3 2\n";
    const DCQ: &str = "ans(x) :- E(x, y), E(x, z), y != z";

    fn request(shards: usize) -> String {
        Value::Obj(vec![
            ("id".into(), Value::Num(1.0)),
            ("query".into(), Value::Str(DCQ.into())),
            (
                "dbs".into(),
                Value::Arr(vec![
                    Value::Str(FACTS.into()),
                    Value::Str(FACTS2.into()),
                    Value::Str(FACTS.into()),
                ]),
            ),
            ("seed".into(), Value::Num(7.0)),
            ("shards".into(), Value::Num(shards as f64)),
        ])
        .render()
    }

    #[test]
    fn responses_are_bytes_equal_across_shard_counts() {
        let server = Server::new(ServerConfig::default());
        let unsharded = server.handle_line(&request(1));
        assert!(unsharded.contains("\"estimate\""), "{unsharded}");
        for shards in [2usize, 4] {
            let sharded = server.handle_line(&request(shards));
            // normalise the echoed shard count, then demand byte equality
            let a = unsharded.replace("\"shards\":1", "\"shards\":N");
            let b = sharded.replace(&format!("\"shards\":{shards}"), "\"shards\":N");
            assert_eq!(a, b, "sharding changed a result byte");
        }
    }

    #[test]
    fn plan_cache_is_shared_across_requests() {
        let server = Server::new(ServerConfig::default());
        assert_eq!(server.cached_plans(), 0);
        server.handle_line(&request(1));
        assert_eq!(server.cached_plans(), 1);
        server.handle_line(&request(4)); // same query/accuracy: cache hit
        assert_eq!(server.cached_plans(), 1);
    }

    #[test]
    fn malformed_requests_become_error_responses() {
        let server = Server::new(ServerConfig::default());
        for (bad, needle) in [
            ("{nope", "json error"),
            ("{}", "missing string member `query`"),
            (r#"{"query": 5}"#, "missing string member `query`"),
            (r#"{"query": "ans(x) :- E(x, y)"}"#, "at least one database"),
            (
                r#"{"query": "ans(x) :-", "dbs": ["universe 1\n"]}"#,
                "query error",
            ),
            (
                r#"{"query": "ans(x) :- E(x, y)", "dbs": ["nonsense"]}"#,
                "database error",
            ),
            (
                r#"{"query": "ans(x) :- E(x, y)", "dbs": ["universe 1\nrelation E 2\n"], "shards": 0}"#,
                "`shards` must be a positive integer",
            ),
        ] {
            let out = server.handle_line(bad);
            assert!(out.contains("\"error\""), "{bad} -> {out}");
            assert!(out.contains(needle), "{bad} -> {out}");
        }
    }

    #[test]
    fn serve_lines_round_trips_requests() {
        let server = Server::new(ServerConfig::default());
        let input = format!("{}\n\n{}\n", request(2), request(4));
        let mut out = Vec::new();
        let served = server
            .serve_lines(std::io::BufReader::new(input.as_bytes()), &mut out)
            .unwrap();
        assert_eq!(served, 2);
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(parse(line).is_ok(), "response is not valid JSON: {line}");
            assert!(line.starts_with("{\"id\":1,"), "{line}");
        }
    }

    #[test]
    fn large_seeds_are_rejected_as_numbers_and_accepted_as_strings() {
        let server = Server::new(ServerConfig::default());
        let req = |seed: &str| {
            format!(
                r#"{{"id": 1, "query": "{DCQ}", "dbs": ["universe 3\nrelation E 2\nE 0 1\nE 0 2\n"], "seed": {seed}}}"#
            )
        };
        // 2^53 + 1 is not exactly representable as f64: must error, never
        // silently evaluate under a rounded seed
        let out = server.handle_line(&req("9007199254740993"));
        assert!(out.contains("\"error\""), "{out}");
        assert!(out.contains("2^53"), "{out}");
        // the same seed as a decimal string is accepted
        let out = server.handle_line(&req("\"9007199254740993\""));
        assert!(out.contains("\"estimate\""), "{out}");
        // and a string seed in the exact range matches the number form
        let a = server.handle_line(&req("12345"));
        let b = server.handle_line(&req("\"12345\""));
        assert_eq!(a, b);
    }

    #[test]
    fn plan_cache_evicts_least_recently_used_beyond_capacity() {
        let server = Server::new(ServerConfig {
            plan_cache_capacity: 2,
            ..ServerConfig::default()
        });
        let req = |query: &str| {
            Value::Obj(vec![
                ("query".into(), Value::Str(query.into())),
                ("dbs".into(), Value::Arr(vec![Value::Str(FACTS2.into())])),
                ("method".into(), Value::Str("exact".into())),
            ])
            .render()
        };
        let (a, b, c) = (
            "ans(x) :- E(x, y)",
            "ans(y) :- E(x, y)",
            "ans(x, y) :- E(x, y)",
        );
        server.handle_line(&req(a)); // cache: {a}
        server.handle_line(&req(b)); // cache: {a, b}
        server.handle_line(&req(a)); // refresh a; b is now stalest
        server.handle_line(&req(c)); // evicts b
        assert_eq!(server.cached_plans(), 2);
        let stats = server.stats();
        assert_eq!(stats.plan_cache_evictions, 1);
        assert_eq!(stats.plan_cache_misses, 3);
        assert_eq!(stats.plan_cache_hits, 1);
        // a survived the eviction (b was least recently used), so a fourth
        // request for it is a hit…
        server.handle_line(&req(a));
        assert_eq!(server.stats().plan_cache_hits, 2);
        // …while b was evicted and must be prepared again
        server.handle_line(&req(b));
        assert_eq!(server.stats().plan_cache_misses, 4);
    }

    #[test]
    fn stats_count_requests_errors_and_work_items() {
        let server = Server::new(ServerConfig::default());
        server.handle_line(&request(2)); // 3 work items
        server.handle_line("{not json");
        let stats = server.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.errors, 1);
        assert_eq!(stats.work_items, 3);
    }

    #[test]
    fn absurd_shard_counts_are_rejected() {
        let server = Server::new(ServerConfig::default());
        // 3 work items allow at most 48 shards; 49 is rejected…
        let mut req = request(3 * MAX_SHARDS_PER_ITEM + 1);
        let out = server.handle_line(&req);
        assert!(out.contains("\"error\""), "{out}");
        assert!(out.contains("out of range for 3 work item(s)"), "{out}");
        // …while exactly 48 (most shards empty) still answers normally
        req = request(3 * MAX_SHARDS_PER_ITEM);
        let out = server.handle_line(&req);
        assert!(out.contains("\"estimate\""), "{out}");
        // a high server-side default is operator configuration, not a
        // malformed client: requests without a `shards` member still work
        let configured = Server::new(ServerConfig {
            shards: 100,
            ..ServerConfig::default()
        });
        let line = Value::Obj(vec![
            ("query".into(), Value::Str(DCQ.into())),
            ("dbs".into(), Value::Arr(vec![Value::Str(FACTS2.into())])),
            ("method".into(), Value::Str("exact".into())),
        ])
        .render();
        let out = configured.handle_line(&line);
        assert!(out.contains("\"estimate\""), "{out}");
        assert!(out.contains("\"shards\":100"), "{out}");
    }

    #[test]
    fn request_workers_are_validated_and_never_change_bytes() {
        let server = Server::new(ServerConfig::default());
        let req = |workers: &str| {
            format!(
                r#"{{"id": 1, "query": "{DCQ}", "dbs": ["{}"], "seed": 3, "workers": {workers}}}"#,
                "universe 4\\nrelation E 2\\nE 0 1\\nE 0 2\\nE 3 1\\nE 3 2\\n"
            )
        };
        for bad in ["0", "-1", "1.5", "\"four\"", "4097"] {
            let out = server.handle_line(&req(bad));
            assert!(out.contains("\"error\""), "{bad} -> {out}");
            assert!(out.contains("`workers` must be"), "{bad} -> {out}");
        }
        let narrow = server.handle_line(&req("1"));
        let wide = server.handle_line(&req("8"));
        assert!(narrow.contains("\"estimate\""), "{narrow}");
        assert_eq!(narrow, wide, "worker width changed a response byte");
    }

    #[test]
    fn exact_method_reports_exact_results() {
        let server = Server::new(ServerConfig::default());
        let req = Value::Obj(vec![
            ("id".into(), Value::Str("e".into())),
            ("query".into(), Value::Str(DCQ.into())),
            ("dbs".into(), Value::Arr(vec![Value::Str(FACTS2.into())])),
            ("method".into(), Value::Str("exact".into())),
        ])
        .render();
        let out = server.handle_line(&req);
        // elements 0 and 3 each have two distinct out-neighbours
        assert!(out.contains("\"estimate\":2,"), "{out}");
        assert!(out.contains("\"exact\":true"), "{out}");
    }
}
