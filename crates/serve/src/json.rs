//! A minimal, dependency-free JSON layer for the serving front end.
//!
//! The workspace has no crates.io access and the vendored `serde` shim is
//! inert (it provides derives that expand to nothing), so the wire format
//! of `cqc-serve` is handled by this module: a small [`Value`] tree, a
//! recursive-descent parser, and a deterministic renderer. Objects keep
//! **insertion order** (they are backed by a `Vec`, not a map), so a
//! response rendered twice from the same data is byte-identical — the
//! shard-equivalence tests compare rendered responses as raw bytes.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order (rendering is deterministic).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a `u64`, if it is a non-negative integer
    /// that `f64` represents **unambiguously** (< 2⁵³). At and beyond 2⁵³
    /// distinct integers collapse onto one `f64` in the number parser
    /// (2⁵³ + 1 rounds to 2⁵³), so accepting them would silently return a
    /// *different* integer than the client sent — callers that need the
    /// full `u64` range (e.g. seeds) should accept a decimal string
    /// alongside the number form.
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_UNAMBIGUOUS: f64 = (1u64 << 53) as f64;
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < MAX_UNAMBIGUOUS => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render to a compact JSON string (deterministic: object members in
    /// insertion order, numbers via Rust's shortest round-trip `Display`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.is_finite() {
                    // integers render without a trailing ".0"; −0.0 must not
                    // take this path (`-0.0 as i64` is `0`, dropping the
                    // sign bit the round-trip property requires)
                    if n.fract() == 0.0 && n.abs() < 1e15 && !(*n == 0.0 && n.is_sign_negative()) {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no NaN/∞; encode as null like serde_json does
                    out.push_str("null");
                }
            }
            Value::Str(s) => render_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{literal}`")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // BMP only (no surrogate pairs) — plenty for the
                            // query/facts syntax this wire format carries
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e3").unwrap(), Value::Num(-1500.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": null}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Value::Str("line\nquote\"slash\\tab\tend".into());
        let rendered = original.render();
        assert_eq!(parse(&rendered).unwrap(), original);
    }

    #[test]
    fn render_is_deterministic_and_ordered() {
        let v = Value::Obj(vec![
            ("z".into(), Value::Num(1.0)),
            ("a".into(), Value::Bool(false)),
        ]);
        assert_eq!(v.render(), r#"{"z":1,"a":false}"#);
        assert_eq!(v.render(), v.render());
    }

    #[test]
    fn floats_round_trip_bit_exactly() {
        for bits in [
            0x3FF0_0000_0000_0001u64,
            0x4000_0000_0000_0000,
            0x0000_0000_0000_0001,
        ] {
            let x = f64::from_bits(bits);
            let rendered = Value::Num(x).render();
            let back = parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), bits, "{rendered}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"x", "{\"a\" 1}", "1 2", "tru", "{'a': 1}"] {
            assert!(parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn queries_with_unicode_survive() {
        let q = "ans(x) :- E(x, y), y != z"; // plus a non-ascii comment char
        let v = Value::Obj(vec![("query".into(), Value::Str(format!("{q} ∧ é")))]);
        let back = parse(&v.render()).unwrap();
        assert_eq!(
            back.get("query").unwrap().as_str(),
            Some(&*format!("{q} ∧ é"))
        );
    }
}
