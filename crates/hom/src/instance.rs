//! Homomorphism instances viewed as constraint networks.

use cqc_data::{Structure, SymbolId, Val};
use cqc_hypergraph::Hypergraph;

/// A single constraint: the image of the (ordered) element tuple `vars` of
/// `A` must be a tuple of the relation `sym` of `B`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// The relation symbol (shared between `A` and `B`).
    pub sym: SymbolId,
    /// The constrained elements of `A`, in relation-argument order
    /// (repetitions allowed, e.g. for a tuple `R(x, x)`).
    pub vars: Vec<usize>,
}

/// A homomorphism instance `(A, B)` presented as a constraint network over
/// the elements of `A` with domains in `U(B)`.
#[derive(Debug, Clone)]
pub struct HomInstance<'a> {
    /// The left-hand structure (pattern).
    pub a: &'a Structure,
    /// The right-hand structure (data).
    pub b: &'a Structure,
    /// One constraint per fact of `A`.
    pub constraints: Vec<Constraint>,
}

impl<'a> HomInstance<'a> {
    /// Build the constraint network for `Hom(A, B)`.
    ///
    /// # Panics
    /// Panics if `sig(A) ⊄ sig(B)` (the caller is expected to construct the
    /// two structures against a shared signature, as
    /// `cqc-query::build_a_structure` / `build_b_structure` do).
    pub fn new(a: &'a Structure, b: &'a Structure) -> Self {
        assert!(
            a.signature_contained_in(b),
            "sig(A) must be contained in sig(B)"
        );
        let mut constraints = Vec::new();
        for (sym, _, _) in a.signature().iter() {
            for t in a.relation(sym).iter() {
                constraints.push(Constraint {
                    sym,
                    vars: t.values().iter().map(|v| v.index()).collect(),
                });
            }
        }
        HomInstance { a, b, constraints }
    }

    /// The number of variables (= elements of `A`).
    pub fn num_vars(&self) -> usize {
        self.a.universe_size()
    }

    /// Initial domains: for each element of `A`, the values of `U(B)` allowed
    /// by all *unary* constraints on that element. (Non-unary constraints are
    /// handled during search / DP.)
    pub fn initial_domains(&self) -> Vec<Vec<Val>> {
        let n = self.num_vars();
        let m = self.b.universe_size();
        let mut domains: Vec<Vec<Val>> = Vec::with_capacity(n);
        for var in 0..n {
            let mut dom: Vec<Val> = (0..m as u32).map(Val).collect();
            for c in &self.constraints {
                if c.vars.len() == 1 && c.vars[0] == var {
                    let rel = self.b.relation(c.sym);
                    dom.retain(|&v| rel.contains_values(&[v]));
                }
            }
            domains.push(dom);
        }
        domains
    }

    /// Does the partial assignment admit, for this constraint, at least one
    /// tuple of `B` consistent with the already-assigned positions?
    /// (Support check; returns `true` when nothing is assigned yet.)
    pub fn constraint_supported(&self, c: &Constraint, assignment: &[Option<Val>]) -> bool {
        let bound: Vec<(usize, Val)> = c
            .vars
            .iter()
            .enumerate()
            .filter_map(|(pos, &var)| assignment[var].map(|v| (pos, v)))
            .collect();
        if bound.is_empty() {
            return !self.b.relation(c.sym).is_empty();
        }
        if bound.len() == c.vars.len() {
            let image: Vec<Val> = c.vars.iter().map(|&var| assignment[var].unwrap()).collect();
            return self.b.holds(c.sym, &image);
        }
        // Use the per-column index on the most selective bound position.
        let rel = self.b.relation(c.sym);
        let (pos0, val0) = bound[0];
        rel.select(pos0, val0)
            .iter()
            .any(|t| bound.iter().all(|&(pos, val)| t.get(pos) == val))
    }

    /// Check a *full* assignment against every constraint.
    pub fn is_homomorphism(&self, assignment: &[Val]) -> bool {
        assert_eq!(assignment.len(), self.num_vars());
        self.constraints.iter().all(|c| {
            let image: Vec<Val> = c.vars.iter().map(|&var| assignment[var]).collect();
            self.b.holds(c.sym, &image)
        })
    }

    /// The hypergraph of `A` (one hyperedge per constraint scope); its
    /// treewidth is the parameter governing [`crate::DecompositionDecider`].
    pub fn pattern_hypergraph(&self) -> Hypergraph {
        let mut h = Hypergraph::new(self.num_vars());
        for c in &self.constraints {
            let mut scope: Vec<usize> = c.vars.clone();
            scope.sort_unstable();
            scope.dedup();
            h.add_edge(&scope);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_data::StructureBuilder;

    fn pattern_edge() -> Structure {
        // A: a single directed edge x → y
        let mut b = StructureBuilder::new(2);
        b.relation("E", 2);
        b.fact("E", &[0, 1]).unwrap();
        b.build()
    }

    fn triangle() -> Structure {
        let mut b = StructureBuilder::new(3);
        b.relation("E", 2);
        b.fact("E", &[0, 1]).unwrap();
        b.fact("E", &[1, 2]).unwrap();
        b.fact("E", &[2, 0]).unwrap();
        b.build()
    }

    #[test]
    fn instance_construction() {
        let a = pattern_edge();
        let b = triangle();
        let inst = HomInstance::new(&a, &b);
        assert_eq!(inst.num_vars(), 2);
        assert_eq!(inst.constraints.len(), 1);
        assert_eq!(inst.constraints[0].vars, vec![0, 1]);
        let h = inst.pattern_hypergraph();
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    fn full_assignment_check() {
        let a = pattern_edge();
        let b = triangle();
        let inst = HomInstance::new(&a, &b);
        assert!(inst.is_homomorphism(&[Val(0), Val(1)]));
        assert!(inst.is_homomorphism(&[Val(2), Val(0)]));
        assert!(!inst.is_homomorphism(&[Val(0), Val(2)]));
    }

    #[test]
    fn support_check_partial() {
        let a = pattern_edge();
        let b = triangle();
        let inst = HomInstance::new(&a, &b);
        let c = &inst.constraints[0];
        // nothing assigned: supported because E is non-empty
        assert!(inst.constraint_supported(c, &[None, None]));
        // x = 0: supported (0 → 1)
        assert!(inst.constraint_supported(c, &[Some(Val(0)), None]));
        // y = 0: supported (2 → 0)
        assert!(inst.constraint_supported(c, &[None, Some(Val(0))]));
        // x = 0, y = 2: not supported
        assert!(!inst.constraint_supported(c, &[Some(Val(0)), Some(Val(2))]));
    }

    #[test]
    fn unary_constraints_restrict_domains() {
        let mut ab = StructureBuilder::new(2);
        ab.relation("E", 2);
        ab.relation("Mark", 1);
        ab.fact("E", &[0, 1]).unwrap();
        ab.fact("Mark", &[0]).unwrap();
        let a = ab.build();
        let mut bb = StructureBuilder::new(3);
        bb.relation("E", 2);
        bb.relation("Mark", 1);
        bb.fact("E", &[0, 1]).unwrap();
        bb.fact("E", &[1, 2]).unwrap();
        bb.fact("Mark", &[1]).unwrap();
        let b = bb.build();
        let inst = HomInstance::new(&a, &b);
        let dom = inst.initial_domains();
        assert_eq!(dom[0], vec![Val(1)]);
        assert_eq!(dom[1].len(), 3);
    }

    #[test]
    fn repeated_variable_in_tuple() {
        // A has a loop E(x, x); B has no loops → no homomorphism image tuple exists
        let mut ab = StructureBuilder::new(1);
        ab.relation("E", 2);
        ab.fact("E", &[0, 0]).unwrap();
        let a = ab.build();
        let b = triangle();
        let inst = HomInstance::new(&a, &b);
        assert_eq!(inst.constraints[0].vars, vec![0, 0]);
        for v in 0..3u32 {
            assert!(!inst.is_homomorphism(&[Val(v)]));
        }
    }

    #[test]
    #[should_panic(expected = "sig(A) must be contained")]
    fn signature_mismatch_panics() {
        let mut ab = StructureBuilder::new(1);
        ab.relation("R", 1);
        ab.fact("R", &[0]).unwrap();
        let a = ab.build();
        let b = triangle();
        let _ = HomInstance::new(&a, &b);
    }
}
