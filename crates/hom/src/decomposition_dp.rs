//! The bounded-treewidth homomorphism algorithm (Theorem 31).
//!
//! Dynamic programming over a tree decomposition of the pattern structure
//! `A`: for each bag, the locally consistent assignments are computed
//! ([`crate::bag_solutions()`]); a bottom-up semijoin pass keeps only the
//! assignments extendable into each subtree; a homomorphism exists iff the
//! root retains at least one assignment. The running time is
//! `poly(‖A‖, ‖B‖) · |U(B)|^{w+1}` for a decomposition of width `w`, i.e.
//! polynomial for every fixed treewidth, exactly as required by Theorem 31
//! (Dalmau, Kolaitis, Vardi).

use crate::bag_solutions::bag_solutions;
use crate::instance::HomInstance;
use cqc_data::{Structure, Val};
use cqc_hypergraph::treewidth::{treewidth_exact, treewidth_upper_bound};
use cqc_hypergraph::TreeDecomposition;
use std::collections::HashSet;

/// Configuration for the decomposition-based decider.
#[derive(Debug, Clone)]
pub struct DecompositionDecider {
    /// Use the exact treewidth algorithm when the pattern has at most this
    /// many elements (otherwise min-fill / min-degree heuristics are used).
    pub exact_treewidth_limit: usize,
}

impl Default for DecompositionDecider {
    fn default() -> Self {
        DecompositionDecider {
            exact_treewidth_limit: 13,
        }
    }
}

impl DecompositionDecider {
    /// A decider with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compute a tree decomposition of the pattern hypergraph of `A`.
    pub fn decompose(&self, a: &Structure, b: &Structure) -> TreeDecomposition {
        let inst = HomInstance::new(a, b);
        let h = inst.pattern_hypergraph();
        if h.num_vertices() <= self.exact_treewidth_limit {
            treewidth_exact(&h).1
        } else {
            treewidth_upper_bound(&h).1
        }
    }

    /// Decide `Hom(A, B)` using the provided tree decomposition of `A`'s
    /// hypergraph.
    pub fn decide_with_decomposition(
        &self,
        a: &Structure,
        b: &Structure,
        td: &TreeDecomposition,
    ) -> bool {
        let inst = HomInstance::new(a, b);
        if inst.num_vars() == 0 {
            return true;
        }
        let domains = inst.initial_domains();
        if domains.iter().any(|d| d.is_empty()) {
            return false;
        }

        let order = td.postorder();
        // surviving[t]: bag assignments (bag vars sorted ascending) that are
        // locally consistent and extendable into the whole subtree below t.
        let mut surviving: Vec<Option<Vec<Vec<Val>>>> = vec![None; td.num_nodes()];
        for &t in &order {
            let bag: Vec<usize> = td.bag(t).iter().copied().collect();
            let local = bag_solutions(&inst, &bag, &domains);
            // semijoin against each child
            let mut kept = local;
            for &c in td.children(t) {
                let child_bag: Vec<usize> = td.bag(c).iter().copied().collect();
                let shared: Vec<usize> = bag
                    .iter()
                    .copied()
                    .filter(|v| child_bag.contains(v))
                    .collect();
                let bag_pos: Vec<usize> = shared
                    .iter()
                    .map(|v| bag.iter().position(|x| x == v).unwrap())
                    .collect();
                let child_pos: Vec<usize> = shared
                    .iter()
                    .map(|v| child_bag.iter().position(|x| x == v).unwrap())
                    .collect();
                let child_proj: HashSet<Vec<Val>> = surviving[c]
                    .as_ref()
                    .expect("postorder: children processed first")
                    .iter()
                    .map(|beta| child_pos.iter().map(|&p| beta[p]).collect())
                    .collect();
                kept.retain(|alpha| {
                    let proj: Vec<Val> = bag_pos.iter().map(|&p| alpha[p]).collect();
                    child_proj.contains(&proj)
                });
                if kept.is_empty() {
                    break;
                }
            }
            let empty = kept.is_empty();
            surviving[t] = Some(kept);
            if empty {
                // the whole instance is unsatisfiable only if this node's
                // emptiness propagates to the root; but an empty surviving set
                // anywhere already implies no global solution, because the
                // root's semijoin chain will eventually consult it.
                return false;
            }
        }
        !surviving[td.root()]
            .as_ref()
            .expect("root processed")
            .is_empty()
    }

    /// Decide whether a homomorphism `A → B` exists.
    pub fn decide(&self, a: &Structure, b: &Structure) -> bool {
        let td = self.decompose(a, b);
        self.decide_with_decomposition(a, b, &td)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtracking::BacktrackingDecider;
    use cqc_data::StructureBuilder;

    fn cycle_graph(n: usize) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("E", 2);
        for i in 0..n {
            b.fact("E", &[i as u32, ((i + 1) % n) as u32]).unwrap();
        }
        b.build()
    }

    fn path_pattern(k: usize) -> Structure {
        let mut b = StructureBuilder::new(k + 1);
        b.relation("E", 2);
        for i in 0..k {
            b.fact("E", &[i as u32, (i + 1) as u32]).unwrap();
        }
        b.build()
    }

    fn grid_graph(rows: usize, cols: usize) -> Structure {
        let mut b = StructureBuilder::new(rows * cols);
        b.relation("E", 2);
        let id = |r: usize, c: usize| (r * cols + c) as u32;
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    b.fact("E", &[id(r, c), id(r, c + 1)]).unwrap();
                    b.fact("E", &[id(r, c + 1), id(r, c)]).unwrap();
                }
                if r + 1 < rows {
                    b.fact("E", &[id(r, c), id(r + 1, c)]).unwrap();
                    b.fact("E", &[id(r + 1, c), id(r, c)]).unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn agrees_with_backtracking_on_cycles() {
        let dp = DecompositionDecider::new();
        let bt = BacktrackingDecider::new();
        for pattern_len in [3usize, 4, 5, 6] {
            for target_len in [3usize, 4, 5] {
                let a = cycle_graph(pattern_len);
                let b = cycle_graph(target_len);
                assert_eq!(
                    dp.decide(&a, &b),
                    bt.decide(&a, &b),
                    "C{pattern_len} → C{target_len}"
                );
            }
        }
    }

    #[test]
    fn paths_into_everything() {
        let dp = DecompositionDecider::new();
        assert!(dp.decide(&path_pattern(4), &cycle_graph(3)));
        assert!(dp.decide(&path_pattern(6), &grid_graph(3, 3)));
    }

    #[test]
    fn no_hom_when_target_has_no_edges() {
        let dp = DecompositionDecider::new();
        let a = path_pattern(1);
        let mut bb = StructureBuilder::new(3);
        bb.relation("E", 2);
        let b = bb.build();
        assert!(!dp.decide(&a, &b));
    }

    #[test]
    fn empty_pattern_always_maps() {
        let dp = DecompositionDecider::new();
        let a = StructureBuilder::new(0).build();
        let b = cycle_graph(4);
        assert!(dp.decide(&a, &b));
    }

    #[test]
    fn unary_marks_force_specific_images() {
        // pattern path x0 → x1 with Start(x0), End(x1)
        let mut ab = StructureBuilder::new(2);
        ab.relation("E", 2);
        ab.relation("Start", 1);
        ab.relation("End", 1);
        ab.fact("E", &[0, 1]).unwrap();
        ab.fact("Start", &[0]).unwrap();
        ab.fact("End", &[1]).unwrap();
        let a = ab.build();
        // target: 0 → 1 → 2 with Start = {0}, End = {2}: no single edge works
        let mut bb = StructureBuilder::new(3);
        bb.relation("E", 2);
        bb.relation("Start", 1);
        bb.relation("End", 1);
        bb.fact("E", &[0, 1]).unwrap();
        bb.fact("E", &[1, 2]).unwrap();
        bb.fact("Start", &[0]).unwrap();
        bb.fact("End", &[2]).unwrap();
        let b = bb.build();
        let dp = DecompositionDecider::new();
        assert!(!dp.decide(&a, &b));
        // add the shortcut edge 0 → 2 and it becomes satisfiable
        let mut bb = StructureBuilder::new(3);
        bb.relation("E", 2);
        bb.relation("Start", 1);
        bb.relation("End", 1);
        bb.fact("E", &[0, 1]).unwrap();
        bb.fact("E", &[1, 2]).unwrap();
        bb.fact("E", &[0, 2]).unwrap();
        bb.fact("Start", &[0]).unwrap();
        bb.fact("End", &[2]).unwrap();
        let b = bb.build();
        assert!(dp.decide(&a, &b));
    }

    #[test]
    fn disconnected_patterns() {
        // two independent edges as pattern; target has only one edge → still a hom
        // (both pattern edges can map to the same target edge)
        let mut ab = StructureBuilder::new(4);
        ab.relation("E", 2);
        ab.fact("E", &[0, 1]).unwrap();
        ab.fact("E", &[2, 3]).unwrap();
        let a = ab.build();
        let mut bb = StructureBuilder::new(2);
        bb.relation("E", 2);
        bb.fact("E", &[0, 1]).unwrap();
        let b = bb.build();
        let dp = DecompositionDecider::new();
        assert!(dp.decide(&a, &b));
    }

    #[test]
    fn agrees_with_backtracking_on_random_like_instances() {
        // deterministic pseudo-random instances
        let dp = DecompositionDecider::new();
        let bt = BacktrackingDecider::new();
        let mut state = 12345u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..20 {
            // pattern: tree-like structure on 5 vertices
            let mut ab = StructureBuilder::new(5);
            ab.relation("E", 2);
            for v in 1..5u32 {
                let parent = (next() % v as u64) as u32;
                ab.fact("E", &[parent, v]).unwrap();
            }
            let a = ab.build();
            // target: sparse digraph on 6 vertices
            let mut bb = StructureBuilder::new(6);
            bb.relation("E", 2);
            for _ in 0..7 {
                let u = (next() % 6) as u32;
                let v = (next() % 6) as u32;
                bb.fact("E", &[u, v]).unwrap();
            }
            let b = bb.build();
            assert_eq!(dp.decide(&a, &b), bt.decide(&a, &b), "trial {trial}");
        }
    }
}
