//! Exact homomorphism counting via tree-decomposition dynamic programming
//! (Dalmau–Jonsson).
//!
//! Used as an exact baseline in experiments (counting answers of
//! quantifier-free queries reduces to counting homomorphisms) and as a ground
//! truth in tests. Runtime `poly(‖A‖, ‖B‖) · |U(B)|^{w+1}` for pattern
//! treewidth `w`.

use crate::bag_solutions::bag_solutions;
use crate::instance::HomInstance;
use cqc_data::{Structure, Val};
use cqc_hypergraph::treewidth::{treewidth_exact, treewidth_upper_bound};
use std::collections::HashMap;

/// Extension counts keyed by a bag assignment.
type ExtensionTable = HashMap<Vec<Val>, u128>;

/// Count the homomorphisms from `A` to `B` exactly.
///
/// The pattern's tree decomposition is computed exactly for up to 13 elements
/// and heuristically beyond; either way the count is exact (the decomposition
/// quality only affects running time).
pub fn count_homomorphisms(a: &Structure, b: &Structure) -> u128 {
    let inst = HomInstance::new(a, b);
    let n = inst.num_vars();
    if n == 0 {
        return 1;
    }
    let domains = inst.initial_domains();
    if domains.iter().any(|d| d.is_empty()) {
        return 0;
    }
    let h = inst.pattern_hypergraph();
    let td = if h.num_vertices() <= 13 {
        treewidth_exact(&h).1
    } else {
        treewidth_upper_bound(&h).1
    };

    let order = td.postorder();
    // ext[t]: bag assignment (bag order = sorted vertex order) → number of
    // extensions to the variables occurring in the subtree below t but not in
    // the bag of t.
    let mut ext: Vec<Option<HashMap<Vec<Val>, u128>>> = vec![None; td.num_nodes()];
    for &t in &order {
        let bag: Vec<usize> = td.bag(t).iter().copied().collect();
        let local = bag_solutions(&inst, &bag, &domains);
        let mut table: HashMap<Vec<Val>, u128> = HashMap::with_capacity(local.len());
        // For each child, pre-group its extension counts by the projection
        // onto the shared variables.
        let mut child_groups: Vec<(Vec<usize>, ExtensionTable)> = Vec::new();
        for &c in td.children(t) {
            let child_bag: Vec<usize> = td.bag(c).iter().copied().collect();
            let shared: Vec<usize> = bag
                .iter()
                .copied()
                .filter(|v| child_bag.contains(v))
                .collect();
            let child_pos: Vec<usize> = shared
                .iter()
                .map(|v| child_bag.iter().position(|x| x == v).unwrap())
                .collect();
            let mut grouped: HashMap<Vec<Val>, u128> = HashMap::new();
            // cqc-audit: allow(hash-iter) — every visit only does a commutative u128 `+=` into `grouped`; the final table is order-independent
            for (beta, count) in ext[c].as_ref().expect("child processed") {
                let proj: Vec<Val> = child_pos.iter().map(|&p| beta[p]).collect();
                *grouped.entry(proj).or_insert(0) += count;
            }
            let bag_pos: Vec<usize> = shared
                .iter()
                .map(|v| bag.iter().position(|x| x == v).unwrap())
                .collect();
            child_groups.push((bag_pos, grouped));
        }
        for alpha in local {
            let mut product: u128 = 1;
            // cqc-audit: allow(hash-iter) — analyzer over-approximation: `child_groups` is a Vec (deterministic order); only its `grouped` members are hash maps, and they are queried, never iterated
            for (bag_pos, grouped) in &child_groups {
                let proj: Vec<Val> = bag_pos.iter().map(|&p| alpha[p]).collect();
                match grouped.get(&proj) {
                    Some(&c) => product = product.saturating_mul(c),
                    None => {
                        product = 0;
                        break;
                    }
                }
            }
            if product > 0 {
                table.insert(alpha, product);
            }
        }
        ext[t] = Some(table);
    }
    ext[td.root()]
        .as_ref()
        .expect("root processed")
        // cqc-audit: allow(hash-iter) — saturating u128 fold equals min(u128::MAX, Σ) in any order, so hash order cannot change the result
        .values()
        .fold(0u128, |acc, &v| acc.saturating_add(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backtracking::BacktrackingDecider;
    use cqc_data::StructureBuilder;

    fn path_pattern(k: usize) -> Structure {
        let mut b = StructureBuilder::new(k + 1);
        b.relation("E", 2);
        for i in 0..k {
            b.fact("E", &[i as u32, (i + 1) as u32]).unwrap();
        }
        b.build()
    }

    fn clique_graph(n: usize) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("E", 2);
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                if i != j {
                    b.fact("E", &[i, j]).unwrap();
                }
            }
        }
        b.build()
    }

    fn cycle_graph(n: usize) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("E", 2);
        for i in 0..n {
            b.fact("E", &[i as u32, ((i + 1) % n) as u32]).unwrap();
        }
        b.build()
    }

    #[test]
    fn counts_edges_into_cliques() {
        // homs from one edge into K_n: n(n-1)
        for n in 2..6usize {
            assert_eq!(
                count_homomorphisms(&path_pattern(1), &clique_graph(n)),
                (n * (n - 1)) as u128
            );
        }
    }

    #[test]
    fn counts_paths_into_cliques() {
        // homs from a path with k edges into K_n: n(n-1)^k
        for (k, n) in [(2usize, 3usize), (3, 3), (2, 4), (4, 3)] {
            let expected = (n as u128) * ((n - 1) as u128).pow(k as u32);
            assert_eq!(
                count_homomorphisms(&path_pattern(k), &clique_graph(n)),
                expected
            );
        }
    }

    #[test]
    fn counts_paths_into_directed_cycles() {
        // A directed cycle has exactly n homs from a directed path (start anywhere).
        for (k, n) in [(2usize, 4usize), (3, 5), (5, 3)] {
            assert_eq!(
                count_homomorphisms(&path_pattern(k), &cycle_graph(n)),
                n as u128
            );
        }
    }

    #[test]
    fn count_zero_when_no_hom_exists() {
        assert_eq!(count_homomorphisms(&cycle_graph(5), &cycle_graph(4)), 0);
        assert_eq!(count_homomorphisms(&clique_graph(4), &clique_graph(3)), 0);
    }

    #[test]
    fn count_matches_enumeration_on_small_instances() {
        let bt = BacktrackingDecider::new();
        let patterns = vec![path_pattern(2), cycle_graph(3), cycle_graph(4)];
        let targets = vec![clique_graph(3), cycle_graph(4), cycle_graph(6)];
        for a in &patterns {
            for b in &targets {
                let expected = bt.enumerate(a, b).len() as u128;
                assert_eq!(count_homomorphisms(a, b), expected);
            }
        }
    }

    #[test]
    fn empty_pattern_counts_one() {
        let a = StructureBuilder::new(0).build();
        assert_eq!(count_homomorphisms(&a, &clique_graph(3)), 1);
    }

    #[test]
    fn isolated_pattern_elements_multiply_by_universe() {
        // pattern: one edge plus one isolated element
        let mut ab = StructureBuilder::new(3);
        ab.relation("E", 2);
        ab.fact("E", &[0, 1]).unwrap();
        let a = ab.build();
        let b = clique_graph(3);
        // 6 homs for the edge × 3 choices for the isolated element
        assert_eq!(count_homomorphisms(&a, &b), 18);
    }

    #[test]
    fn disconnected_pattern_counts_multiply() {
        // two independent edges into K3: 6 * 6 = 36
        let mut ab = StructureBuilder::new(4);
        ab.relation("E", 2);
        ab.fact("E", &[0, 1]).unwrap();
        ab.fact("E", &[2, 3]).unwrap();
        let a = ab.build();
        assert_eq!(count_homomorphisms(&a, &clique_graph(3)), 36);
    }
}
