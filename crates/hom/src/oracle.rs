//! The `Hom` oracle interface used by the FPTRAS pipelines.

use crate::backtracking::BacktrackingDecider;
use crate::decomposition_dp::DecompositionDecider;
use cqc_data::Structure;
use std::sync::atomic::{AtomicU64, Ordering};

/// Statistics collected by a [`HomDecider`] across a run (oracle call counts
/// are reported in the experiments of EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HomStats {
    /// Number of `Hom` decisions answered.
    pub calls: u64,
    /// How many of them returned `true`.
    pub positive: u64,
}

/// A decision oracle for the homomorphism problem, the interface required by
/// Lemma 22 ("a randomised algorithm that is equipped with oracle access to
/// `Hom`").
pub trait HomDecider {
    /// Decide whether there is a homomorphism `A → B`.
    fn decide(&self, a: &Structure, b: &Structure) -> bool;

    /// Statistics accumulated so far (optional; default: all zeros).
    fn stats(&self) -> HomStats {
        HomStats::default()
    }

    /// Reset the statistics counters.
    fn reset_stats(&self) {}
}

/// The engine selection strategy of [`HybridDecider`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// Always use the tree-decomposition dynamic program (Theorem 31).
    Decomposition,
    /// Always use backtracking search.
    Backtracking,
    /// Use the decomposition DP when the pattern decomposition has width at
    /// most the configured threshold, backtracking otherwise.
    Auto,
}

/// A `Hom` oracle that chooses between the bounded-treewidth DP and
/// backtracking search.
///
/// This is the practical stand-in for the two oracles used by the paper:
/// Theorem 31 (Dalmau–Kolaitis–Vardi, bounded treewidth) for the
/// bounded-arity FPTRAS of Theorem 5, and Theorem 36 (Marx, bounded adaptive
/// width) for the unbounded-arity FPTRAS of Theorem 13 — see DESIGN.md for
/// the substitution argument.
#[derive(Debug)]
pub struct HybridDecider {
    /// The engine selection strategy.
    pub choice: EngineChoice,
    /// Width threshold for [`EngineChoice::Auto`].
    pub width_threshold: usize,
    decomposition: DecompositionDecider,
    backtracking: BacktrackingDecider,
    // Atomics (not `Cell`s) so a decider shared read-only across the
    // parallel runtime's worker threads stays `Sync`; the counts are pure
    // telemetry, so `Relaxed` ordering suffices.
    calls: AtomicU64,
    positive: AtomicU64,
}

impl Default for HybridDecider {
    fn default() -> Self {
        HybridDecider {
            choice: EngineChoice::Auto,
            width_threshold: 4,
            decomposition: DecompositionDecider::new(),
            backtracking: BacktrackingDecider::new(),
            calls: AtomicU64::new(0),
            positive: AtomicU64::new(0),
        }
    }
}

impl HybridDecider {
    /// A decider with the default (auto) strategy.
    pub fn new() -> Self {
        Self::default()
    }

    /// A decider that always uses the tree-decomposition DP.
    pub fn decomposition_only() -> Self {
        HybridDecider {
            choice: EngineChoice::Decomposition,
            ..Self::default()
        }
    }

    /// A decider that always uses backtracking search.
    pub fn backtracking_only() -> Self {
        HybridDecider {
            choice: EngineChoice::Backtracking,
            ..Self::default()
        }
    }
}

impl HomDecider for HybridDecider {
    fn decide(&self, a: &Structure, b: &Structure) -> bool {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let result = match self.choice {
            EngineChoice::Decomposition => self.decomposition.decide(a, b),
            EngineChoice::Backtracking => self.backtracking.decide(a, b),
            EngineChoice::Auto => {
                let td = self.decomposition.decompose(a, b);
                if td.width() <= self.width_threshold as isize {
                    self.decomposition.decide_with_decomposition(a, b, &td)
                } else {
                    self.backtracking.decide(a, b)
                }
            }
        };
        if result {
            self.positive.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn stats(&self) -> HomStats {
        HomStats {
            calls: self.calls.load(Ordering::Relaxed),
            positive: self.positive.load(Ordering::Relaxed),
        }
    }

    fn reset_stats(&self) {
        self.calls.store(0, Ordering::Relaxed);
        self.positive.store(0, Ordering::Relaxed);
    }
}

impl HomDecider for BacktrackingDecider {
    fn decide(&self, a: &Structure, b: &Structure) -> bool {
        BacktrackingDecider::decide(self, a, b)
    }
}

impl HomDecider for DecompositionDecider {
    fn decide(&self, a: &Structure, b: &Structure) -> bool {
        DecompositionDecider::decide(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_data::StructureBuilder;

    fn cycle_graph(n: usize) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("E", 2);
        for i in 0..n {
            b.fact("E", &[i as u32, ((i + 1) % n) as u32]).unwrap();
        }
        b.build()
    }

    #[test]
    fn all_engines_agree() {
        let engines: Vec<HybridDecider> = vec![
            HybridDecider::new(),
            HybridDecider::decomposition_only(),
            HybridDecider::backtracking_only(),
        ];
        let cases = [
            (cycle_graph(3), cycle_graph(6), false), // C3 → C6 directed: no (6 not divisible by 3? actually 6 = 2*3 so yes)
        ];
        // Build a principled set of cases instead of the ad-hoc one above.
        let _ = cases;
        for (pk, tk) in [(3usize, 6usize), (4, 4), (5, 4), (6, 3), (4, 8)] {
            let a = cycle_graph(pk);
            let b = cycle_graph(tk);
            let answers: Vec<bool> = engines.iter().map(|e| e.decide(&a, &b)).collect();
            assert!(
                answers.iter().all(|&x| x == answers[0]),
                "engines disagree on C{pk} → C{tk}: {answers:?}"
            );
            // directed cycle homomorphism C_p → C_t exists iff t divides p
            assert_eq!(answers[0], pk % tk == 0, "C{pk} → C{tk}");
        }
    }

    #[test]
    fn stats_are_tracked() {
        let e = HybridDecider::new();
        assert_eq!(e.stats(), HomStats::default());
        let a = cycle_graph(4);
        let b = cycle_graph(4);
        assert!(e.decide(&a, &b));
        assert!(!e.decide(&cycle_graph(5), &cycle_graph(4)));
        let s = e.stats();
        assert_eq!(s.calls, 2);
        assert_eq!(s.positive, 1);
        e.reset_stats();
        assert_eq!(e.stats().calls, 0);
    }

    #[test]
    fn trait_objects_work() {
        let engines: Vec<Box<dyn HomDecider>> = vec![
            Box::new(HybridDecider::new()),
            Box::new(BacktrackingDecider::new()),
            Box::new(DecompositionDecider::new()),
        ];
        // a directed C9 maps onto a directed C3 (wrap three times)
        let a = cycle_graph(9);
        let b = cycle_graph(3);
        for e in &engines {
            assert!(e.decide(&a, &b));
        }
    }
}
