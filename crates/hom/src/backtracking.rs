//! Backtracking homomorphism search with support pruning.

use crate::instance::HomInstance;
use cqc_data::{Structure, Val};

/// A complete backtracking solver for `Hom(A, B)`.
///
/// Variable order: minimum remaining values (static, based on unary-filtered
/// domains), then by number of constraints. At every node, all constraints
/// touching an assigned variable are support-checked (a semijoin-style
/// filter), which prunes dead branches early. Worst-case exponential in
/// `|U(A)|`, but complete for arbitrary structures — this is the fallback
/// engine of [`crate::HybridDecider`].
#[derive(Debug, Clone, Default)]
pub struct BacktrackingDecider {
    /// Optional cap on the number of search nodes (`None` = unlimited).
    pub node_limit: Option<u64>,
}

impl BacktrackingDecider {
    /// A solver without a node limit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decide whether a homomorphism `A → B` exists.
    pub fn decide(&self, a: &Structure, b: &Structure) -> bool {
        self.find(a, b).is_some()
    }

    /// Find one homomorphism if it exists (as a value per element of `A`).
    pub fn find(&self, a: &Structure, b: &Structure) -> Option<Vec<Val>> {
        let inst = HomInstance::new(a, b);
        let n = inst.num_vars();
        if n == 0 {
            // the empty map is a homomorphism iff A has no facts, which is
            // vacuously true here since facts need elements
            return Some(vec![]);
        }
        let domains = inst.initial_domains();
        if domains.iter().any(|d| d.is_empty()) {
            return None;
        }
        // static variable order: most constrained (smallest domain, then most constraints)
        let mut order: Vec<usize> = (0..n).collect();
        let constraint_count = |v: usize| {
            inst.constraints
                .iter()
                .filter(|c| c.vars.contains(&v))
                .count()
        };
        order.sort_by_key(|&v| (domains[v].len(), usize::MAX - constraint_count(v)));

        let mut assignment: Vec<Option<Val>> = vec![None; n];
        let mut nodes: u64 = 0;
        if self.search(&inst, &domains, &order, 0, &mut assignment, &mut nodes) {
            Some(
                assignment
                    .into_iter()
                    .map(|v| v.expect("complete"))
                    .collect(),
            )
        } else {
            None
        }
    }

    /// Enumerate all homomorphisms (used in tests and small baselines).
    pub fn enumerate(&self, a: &Structure, b: &Structure) -> Vec<Vec<Val>> {
        let inst = HomInstance::new(a, b);
        let n = inst.num_vars();
        let mut out = Vec::new();
        if n == 0 {
            out.push(vec![]);
            return out;
        }
        let domains = inst.initial_domains();
        let mut assignment: Vec<Option<Val>> = vec![None; n];
        self.enumerate_rec(&inst, &domains, 0, &mut assignment, &mut out);
        out
    }

    fn enumerate_rec(
        &self,
        inst: &HomInstance<'_>,
        domains: &[Vec<Val>],
        var: usize,
        assignment: &mut Vec<Option<Val>>,
        out: &mut Vec<Vec<Val>>,
    ) {
        let n = inst.num_vars();
        if var == n {
            out.push(assignment.iter().map(|v| v.expect("complete")).collect());
            return;
        }
        for &val in &domains[var] {
            assignment[var] = Some(val);
            let consistent = inst
                .constraints
                .iter()
                .filter(|c| c.vars.contains(&var))
                .all(|c| inst.constraint_supported(c, assignment));
            if consistent {
                self.enumerate_rec(inst, domains, var + 1, assignment, out);
            }
        }
        assignment[var] = None;
    }

    fn search(
        &self,
        inst: &HomInstance<'_>,
        domains: &[Vec<Val>],
        order: &[usize],
        level: usize,
        assignment: &mut Vec<Option<Val>>,
        nodes: &mut u64,
    ) -> bool {
        if level == order.len() {
            return true;
        }
        let var = order[level];
        for &val in &domains[var] {
            *nodes += 1;
            if let Some(limit) = self.node_limit {
                if *nodes > limit {
                    return false;
                }
            }
            assignment[var] = Some(val);
            // support-check every constraint that touches any assigned variable
            let consistent = inst
                .constraints
                .iter()
                .filter(|c| c.vars.contains(&var))
                .all(|c| inst.constraint_supported(c, assignment));
            if consistent && self.search(inst, domains, order, level + 1, assignment, nodes) {
                return true;
            }
        }
        assignment[var] = None;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_data::StructureBuilder;

    fn path_pattern(k: usize) -> Structure {
        // directed path with k edges: x0 → x1 → ... → xk
        let mut b = StructureBuilder::new(k + 1);
        b.relation("E", 2);
        for i in 0..k {
            b.fact("E", &[i as u32, (i + 1) as u32]).unwrap();
        }
        b.build()
    }

    fn cycle_graph(n: usize) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("E", 2);
        for i in 0..n {
            b.fact("E", &[i as u32, ((i + 1) % n) as u32]).unwrap();
        }
        b.build()
    }

    fn clique_graph(n: usize) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("E", 2);
        for i in 0..n as u32 {
            for j in 0..n as u32 {
                if i != j {
                    b.fact("E", &[i, j]).unwrap();
                }
            }
        }
        b.build()
    }

    #[test]
    fn path_into_cycle() {
        let solver = BacktrackingDecider::new();
        assert!(solver.decide(&path_pattern(3), &cycle_graph(5)));
        let h = solver.find(&path_pattern(3), &cycle_graph(5)).unwrap();
        assert_eq!(h.len(), 4);
        // verify it is a homomorphism
        let a = path_pattern(3);
        let b = cycle_graph(5);
        let inst = HomInstance::new(&a, &b);
        assert!(inst.is_homomorphism(&h));
    }

    #[test]
    fn odd_cycle_into_even_cycle_fails() {
        // C5 → C4 requires an odd closed walk in C4: impossible.
        let solver = BacktrackingDecider::new();
        assert!(!solver.decide(&cycle_graph(5), &cycle_graph(4)));
        // but C4 → C4 works
        assert!(solver.decide(&cycle_graph(4), &cycle_graph(4)));
        // and C6 → C3 works (wrap twice)
        assert!(solver.decide(&cycle_graph(6), &cycle_graph(3)));
    }

    #[test]
    fn clique_pattern_needs_large_clique() {
        let solver = BacktrackingDecider::new();
        assert!(solver.decide(&clique_graph(3), &clique_graph(4)));
        assert!(!solver.decide(&clique_graph(4), &clique_graph(3)));
    }

    #[test]
    fn enumerate_counts_homomorphisms() {
        let solver = BacktrackingDecider::new();
        // homs from a single edge into K3: ordered pairs of distinct vertices = 6
        let homs = solver.enumerate(&path_pattern(1), &clique_graph(3));
        assert_eq!(homs.len(), 6);
        // homs from a path with 2 edges into K3: 3 * 2 * 2 = 12
        let homs = solver.enumerate(&path_pattern(2), &clique_graph(3));
        assert_eq!(homs.len(), 12);
    }

    #[test]
    fn empty_pattern() {
        let solver = BacktrackingDecider::new();
        let a = StructureBuilder::new(0).build();
        let b = cycle_graph(3);
        assert!(solver.decide(&a, &b));
        assert_eq!(solver.enumerate(&a, &b).len(), 1);
    }

    #[test]
    fn empty_target_with_nonempty_pattern() {
        let solver = BacktrackingDecider::new();
        let a = path_pattern(1);
        let mut bb = StructureBuilder::new(0);
        bb.relation("E", 2);
        let b = bb.build();
        assert!(!solver.decide(&a, &b));
    }

    #[test]
    fn node_limit_stops_search() {
        let solver = BacktrackingDecider {
            node_limit: Some(1),
        };
        // with only one node explored the solver may fail to find an existing
        // homomorphism — it must not panic and must return quickly
        let _ = solver.decide(&clique_graph(3), &clique_graph(5));
    }

    #[test]
    fn unary_relations_guide_the_search() {
        // pattern: x with Mark(x), edge x→y; target: only vertex 2 is marked
        let mut ab = StructureBuilder::new(2);
        ab.relation("E", 2);
        ab.relation("Mark", 1);
        ab.fact("E", &[0, 1]).unwrap();
        ab.fact("Mark", &[0]).unwrap();
        let a = ab.build();
        let mut bb = StructureBuilder::new(4);
        bb.relation("E", 2);
        bb.relation("Mark", 1);
        bb.fact("E", &[0, 1]).unwrap();
        bb.fact("E", &[2, 3]).unwrap();
        bb.fact("Mark", &[2]).unwrap();
        let b = bb.build();
        let solver = BacktrackingDecider::new();
        let h = solver.find(&a, &b).unwrap();
        assert_eq!(h[0], Val(2));
        assert_eq!(h[1], Val(3));
    }
}
