//! # cqc-hom — homomorphism decision and counting engines
//!
//! The algorithms of the paper (Theorems 5 and 13) reduce approximate answer
//! counting to *decision* oracles for the homomorphism problem `Hom`:
//! given structures `A`, `B` with `sig(A) ⊆ sig(B)`, is there a homomorphism
//! `A → B`? This crate provides those oracles:
//!
//! * [`BacktrackingDecider`] — a general-purpose backtracking solver with
//!   support-based pruning and minimum-remaining-values ordering; complete for
//!   every instance, exponential in the worst case.
//! * [`DecompositionDecider`] — the bounded-treewidth algorithm of
//!   Dalmau, Kolaitis and Vardi (Theorem 31 in the paper): dynamic programming
//!   over a tree decomposition of `A`, polynomial for every fixed treewidth.
//! * [`HybridDecider`] — picks the decomposition engine when a low-width
//!   decomposition of `A` is found and falls back to backtracking otherwise
//!   (the practical stand-in for Marx's adaptive-width algorithm, Theorem 36;
//!   see DESIGN.md, substitutions).
//! * [`count_homomorphisms`] — exact homomorphism counting by DP over a tree
//!   decomposition (Dalmau–Jonsson), used as a baseline.
//! * [`bag_solutions()`] / [`bag_partial_solutions`] — per-bag (partial)
//!   solution relations computed by a generic-join style algorithm; the
//!   latter implements the `Sol(ϕ, D, B_t)` computation of Lemma 48
//!   (Grohe–Marx fractional-cover join) used by the Theorem 16 pipeline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backtracking;
pub mod bag_solutions;
pub mod count;
pub mod decomposition_dp;
pub mod instance;
pub mod oracle;

pub use backtracking::BacktrackingDecider;
pub use bag_solutions::{bag_partial_solutions, bag_solutions};
pub use count::count_homomorphisms;
pub use decomposition_dp::DecompositionDecider;
pub use instance::HomInstance;
pub use oracle::{HomDecider, HomStats, HybridDecider};
