//! Per-bag solution relations computed by generic-join style enumeration.
//!
//! Two flavours are provided:
//!
//! * [`bag_solutions()`] — assignments of the bag variables satisfying every
//!   constraint whose scope lies **inside** the bag; this is the local
//!   relation used by the tree-decomposition dynamic programming
//!   ([`crate::DecompositionDecider`], [`crate::count_homomorphisms`]).
//! * [`bag_partial_solutions`] — the `Sol(ϕ, D, B)` semantics of
//!   Definition 47 / Lemma 48: assignments of the bag variables such that
//!   **every** constraint, individually, still has a supporting tuple. For a
//!   bag of bounded fractional edge cover number the output size is bounded
//!   by the AGM bound `‖D‖^{fcn(H[B])}` and the join-style enumeration below
//!   runs in input + output polynomial time, which is what the Theorem 16
//!   pipeline needs.

use crate::instance::HomInstance;
use cqc_data::{Structure, Val};

/// Assignments (in `bag` order) of the bag variables that satisfy every
/// constraint of the instance whose scope is contained in `bag`.
/// `domains[v]` bounds the values considered for variable `v`.
pub fn bag_solutions(inst: &HomInstance<'_>, bag: &[usize], domains: &[Vec<Val>]) -> Vec<Vec<Val>> {
    let in_bag = |v: usize| bag.contains(&v);
    let local: Vec<usize> = inst
        .constraints
        .iter()
        .enumerate()
        .filter(|(_, c)| c.vars.iter().all(|&v| in_bag(v)))
        .map(|(i, _)| i)
        .collect();
    let mut out = Vec::new();
    let mut assignment: Vec<Option<Val>> = vec![None; inst.num_vars()];
    enumerate_rec(
        inst,
        &local,
        bag,
        domains,
        0,
        &mut assignment,
        &mut |a: &[Option<Val>]| {
            out.push(bag.iter().map(|&v| a[v].expect("assigned")).collect());
        },
    );
    out
}

/// The `Sol(ϕ, D, B)` relation of Definition 47 computed for the pattern
/// structure `a` over the data structure `b`: assignments of the elements in
/// `bag` (a subset of `U(a)`) such that every fact of `a`, taken
/// individually, still has a supporting tuple in `b` consistent with the
/// assignment.
pub fn bag_partial_solutions(a: &Structure, b: &Structure, bag: &[usize]) -> Vec<Vec<Val>> {
    let inst = HomInstance::new(a, b);
    let all: Vec<usize> = (0..inst.constraints.len()).collect();
    let domains = inst.initial_domains();
    let mut out = Vec::new();
    let mut assignment: Vec<Option<Val>> = vec![None; inst.num_vars()];
    enumerate_rec(
        &inst,
        &all,
        bag,
        &domains,
        0,
        &mut assignment,
        &mut |asg: &[Option<Val>]| {
            out.push(bag.iter().map(|&v| asg[v].expect("assigned")).collect());
        },
    );
    out
}

/// Shared recursive enumeration: assign `bag[level..]` one variable at a
/// time; candidate values for a variable are the intersection, over the
/// watched constraints containing it, of the supported values given the
/// current partial assignment (generic-join style), intersected with the
/// variable's domain. Prunes as soon as any watched constraint loses support.
fn enumerate_rec(
    inst: &HomInstance<'_>,
    watched: &[usize],
    bag: &[usize],
    domains: &[Vec<Val>],
    level: usize,
    assignment: &mut Vec<Option<Val>>,
    emit: &mut dyn FnMut(&[Option<Val>]),
) {
    if level == bag.len() {
        // Constraints disjoint from the bag were never touched during the
        // descent; they must still have at least one supporting tuple
        // (Definition 47 requires every atom to be individually extendable).
        let all_supported = watched
            .iter()
            .all(|&ci| inst.constraint_supported(&inst.constraints[ci], assignment));
        if all_supported {
            emit(assignment);
        }
        return;
    }
    let var = bag[level];
    // Constraints containing `var`.
    let relevant: Vec<usize> = watched
        .iter()
        .copied()
        .filter(|&ci| inst.constraints[ci].vars.contains(&var))
        .collect();

    let candidates: Vec<Val> = if relevant.is_empty() {
        domains[var].clone()
    } else {
        // Start from the most selective constraint's supported values, then
        // filter through the rest (and the unary domain).
        let mut cands: Option<Vec<Val>> = None;
        for &ci in &relevant {
            let c = &inst.constraints[ci];
            let rel = inst.b.relation(c.sym);
            // positions of `var` in the constraint scope
            let positions: Vec<usize> = c
                .vars
                .iter()
                .enumerate()
                .filter(|(_, &v)| v == var)
                .map(|(p, _)| p)
                .collect();
            // bound positions (already assigned variables)
            let bound: Vec<(usize, Val)> = c
                .vars
                .iter()
                .enumerate()
                .filter_map(|(pos, &v)| assignment[v].map(|val| (pos, val)))
                .collect();
            let mut supported: Vec<Val> = Vec::new();
            'tuples: for t in rel.iter() {
                for &(pos, val) in &bound {
                    if t.get(pos) != val {
                        continue 'tuples;
                    }
                }
                // the same value must occur at every position of `var`
                let first = t.get(positions[0]);
                if positions.iter().all(|&p| t.get(p) == first) {
                    supported.push(first);
                }
            }
            supported.sort_unstable();
            supported.dedup();
            cands = Some(match cands {
                None => supported,
                Some(prev) => prev
                    .into_iter()
                    .filter(|v| supported.binary_search(v).is_ok())
                    .collect(),
            });
            if cands.as_ref().map(|c| c.is_empty()).unwrap_or(false) {
                break;
            }
        }
        let mut cands = cands.unwrap_or_default();
        cands.retain(|v| domains[var].contains(v));
        cands
    };

    for val in candidates {
        assignment[var] = Some(val);
        // support check: every watched constraint touching assigned vars keeps
        // at least one consistent tuple
        let ok = watched.iter().all(|&ci| {
            let c = &inst.constraints[ci];
            if c.vars.iter().any(|&v| assignment[v].is_some()) {
                inst.constraint_supported(c, assignment)
            } else {
                true
            }
        });
        if ok {
            enumerate_rec(inst, watched, bag, domains, level + 1, assignment, emit);
        }
    }
    assignment[var] = None;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_data::StructureBuilder;

    fn path_pattern(k: usize) -> Structure {
        let mut b = StructureBuilder::new(k + 1);
        b.relation("E", 2);
        for i in 0..k {
            b.fact("E", &[i as u32, (i + 1) as u32]).unwrap();
        }
        b.build()
    }

    fn path_graph(n: usize) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("E", 2);
        for i in 0..n - 1 {
            b.fact("E", &[i as u32, (i + 1) as u32]).unwrap();
        }
        b.build()
    }

    #[test]
    fn bag_solutions_of_an_edge() {
        let a = path_pattern(2); // x0 → x1 → x2
        let b = path_graph(4);
        let inst = HomInstance::new(&a, &b);
        let domains = inst.initial_domains();
        // bag {0, 1}: only the constraint E(0,1) lies inside
        let sols = bag_solutions(&inst, &[0, 1], &domains);
        assert_eq!(sols.len(), 3); // edges (0,1), (1,2), (2,3)
                                   // bag {0, 2}: no constraint inside → full cross product of domains
        let sols = bag_solutions(&inst, &[0, 2], &domains);
        assert_eq!(sols.len(), 16);
        // bag {0,1,2}: both constraints inside → paths of length 2
        let sols = bag_solutions(&inst, &[0, 1, 2], &domains);
        assert_eq!(sols.len(), 2); // 0→1→2, 1→2→3
    }

    #[test]
    fn bag_partial_solutions_match_definition_47() {
        // pattern: E(x0,x1), E(x1,x2) over the 4-path; Sol(ϕ, D, {x0, x1})
        // requires E(x0,x1) to hold and x1 to have an outgoing edge.
        let a = path_pattern(2);
        let b = path_graph(4);
        let sols = bag_partial_solutions(&a, &b, &[0, 1]);
        assert_eq!(sols.len(), 2); // (0,1), (1,2) — (2,3) fails: 3 has no out-edge
        assert!(sols.contains(&vec![Val(0), Val(1)]));
        assert!(sols.contains(&vec![Val(1), Val(2)]));
    }

    #[test]
    fn bag_partial_solutions_on_single_variable() {
        let a = path_pattern(2);
        let b = path_graph(4);
        // x1 must have an in-edge (for E(x0,x1)) and an out-edge (for E(x1,x2)):
        // values 1, 2
        let sols = bag_partial_solutions(&a, &b, &[1]);
        assert_eq!(sols.len(), 2);
        // x0 only needs an out-edge — Definition 47 checks each atom
        // *individually*, so the second atom does not constrain x0: values 0, 1, 2
        let sols = bag_partial_solutions(&a, &b, &[0]);
        assert_eq!(sols.len(), 3);
    }

    #[test]
    fn bag_partial_solutions_empty_bag() {
        let a = path_pattern(1);
        let b = path_graph(3);
        let sols = bag_partial_solutions(&a, &b, &[]);
        assert_eq!(sols.len(), 1); // the empty assignment, since E is non-empty
        let empty_b = {
            let mut bb = StructureBuilder::new(2);
            bb.relation("E", 2);
            bb.build()
        };
        let sols = bag_partial_solutions(&a, &empty_b, &[]);
        assert!(sols.is_empty());
    }

    #[test]
    fn repeated_variable_constraints() {
        // pattern with a loop E(x, x); data has one loop at vertex 1
        let mut ab = StructureBuilder::new(2);
        ab.relation("E", 2);
        ab.fact("E", &[0, 0]).unwrap();
        ab.fact("E", &[0, 1]).unwrap();
        let a = ab.build();
        let mut bb = StructureBuilder::new(3);
        bb.relation("E", 2);
        bb.fact("E", &[1, 1]).unwrap();
        bb.fact("E", &[1, 2]).unwrap();
        bb.fact("E", &[0, 2]).unwrap();
        let b = bb.build();
        let inst = HomInstance::new(&a, &b);
        let domains = inst.initial_domains();
        let sols = bag_solutions(&inst, &[0, 1], &domains);
        // x0 must carry the loop (value 1), x1 any out-neighbour of x0: (1,1), (1,2)
        assert_eq!(sols.len(), 2);
        assert!(sols.contains(&vec![Val(1), Val(1)]));
        assert!(sols.contains(&vec![Val(1), Val(2)]));
    }

    #[test]
    fn ternary_relation_bags() {
        let mut ab = StructureBuilder::new(3);
        ab.relation("R", 3);
        ab.fact("R", &[0, 1, 2]).unwrap();
        let a = ab.build();
        let mut bb = StructureBuilder::new(4);
        bb.relation("R", 3);
        bb.fact("R", &[0, 1, 2]).unwrap();
        bb.fact("R", &[1, 2, 3]).unwrap();
        bb.fact("R", &[0, 0, 0]).unwrap();
        let b = bb.build();
        let inst = HomInstance::new(&a, &b);
        let domains = inst.initial_domains();
        let sols = bag_solutions(&inst, &[0, 1, 2], &domains);
        assert_eq!(sols.len(), 3);
        let partial = bag_partial_solutions(&a, &b, &[1]);
        // middle positions of R tuples: {1, 2, 0}
        assert_eq!(partial.len(), 3);
    }
}
