//! Property-based tests for the homomorphism engines: the backtracking
//! solver, the bounded-treewidth dynamic program of Theorem 31 and the hybrid
//! dispatcher must all agree with a brute-force existence check, and the
//! exact counter must agree with brute-force enumeration.

use cqc_data::{Structure, StructureBuilder, Val};
use cqc_hom::{
    count_homomorphisms, BacktrackingDecider, DecompositionDecider, HomDecider, HomInstance,
    HybridDecider,
};
use proptest::prelude::*;

/// A raw instance: a small pattern structure A over one binary and one unary
/// relation, and a small target structure B over the same signature.
#[derive(Debug, Clone)]
struct RawInstance {
    a_vars: usize,
    a_binary: Vec<(u32, u32)>,
    a_unary: Vec<u32>,
    b_size: usize,
    b_binary: Vec<(u32, u32)>,
    b_unary: Vec<u32>,
}

fn raw_instance() -> impl Strategy<Value = RawInstance> {
    (2usize..=4, 2usize..=4).prop_flat_map(|(a_vars, b_size)| {
        let an = a_vars as u32;
        let bn = b_size as u32;
        (
            proptest::collection::vec((0..an, 0..an), 1..5),
            proptest::collection::vec(0..an, 0..3),
            proptest::collection::vec((0..bn, 0..bn), 0..10),
            proptest::collection::vec(0..bn, 0..4),
        )
            .prop_map(move |(a_binary, a_unary, b_binary, b_unary)| RawInstance {
                a_vars,
                a_binary,
                a_unary,
                b_size,
                b_binary,
                b_unary,
            })
    })
}

fn build_pair(raw: &RawInstance) -> (Structure, Structure) {
    let mut a = StructureBuilder::new(raw.a_vars);
    a.relation("E", 2);
    a.relation("L", 1);
    for &(u, v) in &raw.a_binary {
        a.fact("E", &[u, v]).unwrap();
    }
    for &u in &raw.a_unary {
        a.fact("L", &[u]).unwrap();
    }
    let mut b = StructureBuilder::new(raw.b_size);
    b.relation("E", 2);
    b.relation("L", 1);
    for &(u, v) in &raw.b_binary {
        b.fact("E", &[u, v]).unwrap();
    }
    for &u in &raw.b_unary {
        b.fact("L", &[u]).unwrap();
    }
    (a.build(), b.build())
}

/// Brute force over all |U(B)|^|U(A)| assignments.
fn bruteforce_homomorphisms(a: &Structure, b: &Structure) -> Vec<Vec<Val>> {
    let inst = HomInstance::new(a, b);
    let n = a.universe_size();
    let m = b.universe_size();
    let mut found = Vec::new();
    let total = (m as u64).pow(n as u32);
    for code in 0..total {
        let mut c = code;
        let assignment: Vec<Val> = (0..n)
            .map(|_| {
                let v = Val((c % m as u64) as u32);
                c /= m as u64;
                v
            })
            .collect();
        if inst.is_homomorphism(&assignment) {
            found.push(assignment);
        }
    }
    found
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All three deciders agree with brute force on homomorphism existence.
    #[test]
    fn deciders_agree_with_bruteforce(raw in raw_instance()) {
        let (a, b) = build_pair(&raw);
        let truth = !bruteforce_homomorphisms(&a, &b).is_empty();
        prop_assert_eq!(BacktrackingDecider::new().decide(&a, &b), truth);
        prop_assert_eq!(DecompositionDecider::new().decide(&a, &b), truth);
        prop_assert_eq!(HybridDecider::new().decide(&a, &b), truth);
        prop_assert_eq!(HybridDecider::decomposition_only().decide(&a, &b), truth);
        prop_assert_eq!(HybridDecider::backtracking_only().decide(&a, &b), truth);
    }

    /// The exact homomorphism counter (Dalmau–Jonsson-style DP) agrees with
    /// brute-force enumeration, and `find`/`enumerate` of the backtracking
    /// engine return genuine homomorphisms.
    #[test]
    fn counting_and_enumeration_agree(raw in raw_instance()) {
        let (a, b) = build_pair(&raw);
        let brute = bruteforce_homomorphisms(&a, &b);
        prop_assert_eq!(count_homomorphisms(&a, &b), brute.len() as u128);

        let bt = BacktrackingDecider::new();
        let inst = HomInstance::new(&a, &b);
        match bt.find(&a, &b) {
            Some(h) => prop_assert!(inst.is_homomorphism(&h)),
            None => prop_assert!(brute.is_empty()),
        }
        let mut enumerated = bt.enumerate(&a, &b);
        let mut expected = brute.clone();
        enumerated.sort();
        expected.sort();
        prop_assert_eq!(enumerated, expected);
    }

    /// Homomorphisms compose with target extension: adding facts to B can
    /// only create homomorphisms, never destroy them (monotonicity of the
    /// positive fragment).
    #[test]
    fn adding_target_facts_is_monotone(raw in raw_instance(), extra in proptest::collection::vec((0u32..4, 0u32..4), 0..5)) {
        let (a, b) = build_pair(&raw);
        let before = count_homomorphisms(&a, &b);
        let mut b_ext = b.clone();
        let e = b_ext.signature().symbol("E").unwrap();
        for &(u, v) in &extra {
            if (u as usize) < b_ext.universe_size() && (v as usize) < b_ext.universe_size() {
                b_ext.insert_fact(e, &[Val(u), Val(v)]).unwrap();
            }
        }
        let after = count_homomorphisms(&a, &b_ext);
        prop_assert!(after >= before, "adding facts removed homomorphisms: {before} -> {after}");
        prop_assert_eq!(BacktrackingDecider::new().decide(&a, &b), before > 0);
    }

    /// The identity map is always a homomorphism from a structure to itself.
    #[test]
    fn identity_is_a_homomorphism(raw in raw_instance()) {
        let (a, _) = build_pair(&raw);
        let inst = HomInstance::new(&a, &a);
        let id: Vec<Val> = (0..a.universe_size() as u32).map(Val).collect();
        prop_assert!(inst.is_homomorphism(&id));
        prop_assert!(HybridDecider::new().decide(&a, &a));
        prop_assert!(count_homomorphisms(&a, &a) >= 1);
    }

    /// A pattern with an `L`-labelled variable has no homomorphism into a
    /// target whose `L` relation is empty.
    #[test]
    fn empty_unary_target_blocks(raw in raw_instance()) {
        prop_assume!(!raw.a_unary.is_empty());
        let mut raw2 = raw.clone();
        raw2.b_unary.clear();
        let (a, b) = build_pair(&raw2);
        prop_assert!(!HybridDecider::new().decide(&a, &b));
        prop_assert_eq!(count_homomorphisms(&a, &b), 0);
    }
}
