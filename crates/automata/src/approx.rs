//! Approximate counting of accepted labellings over a fixed tree shape, in
//! the style of Arenas–Croquevielle–Jayaram–Riveros (Lemma 51).
//!
//! For every tree node `t` (bottom-up) and every automaton state `q`, the
//! algorithm maintains an estimate of `|L(t, q)|` — the number of labellings
//! of the subtree rooted at `t` that admit a run starting from `q` — together
//! with a pool of (approximately) uniform sample labellings from `L(t, q)`.
//! The set `L(t, q)` decomposes into a union of *components*, one per
//! transition `(q, σ) → …`:
//!
//! * leaf node, `(q, σ) → ∅`: the single labelling `{t ↦ σ}`;
//! * unary node, `(q, σ) → q₁`: `{t ↦ σ} × L(c, q₁)`;
//! * binary node, `(q, σ) → (q₁, q₂)`: `{t ↦ σ} × L(c₁, q₁) × L(c₂, q₂)`.
//!
//! Components may overlap (this is exactly the projection problem that makes
//! #TA hard), so their union is estimated by Karp–Luby: draw a component with
//! probability proportional to its estimated size, draw an element from it,
//! and count it only if the chosen component is the *first* one containing
//! it; membership is decidable exactly in polynomial time
//! ([`TreeAutomaton::subtree_accepts_from`]). The same draws provide the
//! node's sample pool (rejection sampling). Per-level error budgets are set
//! from `ε` and the tree size; see DESIGN.md (substitutions) for the relation
//! to ACJR's rigorous analysis.

use crate::automaton::{TransitionTarget, TreeAutomaton};
use crate::tree::{LabeledTree, TreeShape};
use cqc_runtime::{split_seed2, Runtime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Tuning parameters for [`approx_count_fixed_shape`].
#[derive(Debug, Clone)]
pub struct TaApproxConfig {
    /// Target relative error.
    pub epsilon: f64,
    /// Target failure probability.
    pub delta: f64,
    /// Karp–Luby trials per union estimation (0 = derive from ε and the
    /// number of components).
    pub union_trials: usize,
    /// Sample-pool size kept per (node, state).
    pub sample_pool: usize,
}

impl TaApproxConfig {
    /// A configuration with sensible defaults for the given accuracy target.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        TaApproxConfig {
            epsilon,
            delta,
            union_trials: 0,
            sample_pool: 48,
        }
    }

    fn trials(&self, components: usize) -> usize {
        if self.union_trials > 0 {
            return self.union_trials;
        }
        let base = (24.0 / (self.epsilon * self.epsilon)).ceil() as usize;
        base.max(16 * components).clamp(64, 20_000)
    }
}

#[derive(Debug, Clone)]
struct NodeStateInfo {
    estimate: f64,
    samples: Vec<Vec<usize>>,
}

/// One component of the union defining `L(t, q)`.
struct Component {
    label: usize,
    target: TransitionTarget,
    weight: f64,
}

/// Approximately count the labellings of `shape` accepted by `a`
/// (`|{ψ : (shape, ψ) accepted}|`), i.e. the `N`-slice restricted to this
/// shape — which for the Lemma 52 automata equals `|L_N(A)| = |Ans(ϕ, D)|`.
///
/// Legacy convenience wrapper: draws a root seed from `rng` and runs the
/// deterministic counter serially. Prefer
/// [`approx_count_fixed_shape_seeded`], which is bit-identical for any
/// thread count.
pub fn approx_count_fixed_shape<R: Rng>(
    a: &TreeAutomaton,
    shape: &TreeShape,
    config: &TaApproxConfig,
    rng: &mut R,
) -> f64 {
    approx_count_fixed_shape_seeded(a, shape, config, rng.gen::<u64>(), &Runtime::serial())
}

/// The components of `L(t, q)` at a node with the given children, weighted
/// by the child estimates computed so far.
fn components_of(
    a: &TreeAutomaton,
    children: &[usize],
    info: &[HashMap<usize, NodeStateInfo>],
    q: usize,
) -> Vec<Component> {
    let mut components: Vec<Component> = Vec::new();
    for (label, target) in a.transitions_from(q) {
        let weight = match (target, children.len()) {
            (TransitionTarget::Leaf, 0) => 1.0,
            (TransitionTarget::Unary(q1), 1) => info[children[0]]
                .get(&q1)
                .map(|i| i.estimate)
                .unwrap_or(0.0),
            (TransitionTarget::Binary(q1, q2), 2) => {
                let l = info[children[0]]
                    .get(&q1)
                    .map(|i| i.estimate)
                    .unwrap_or(0.0);
                let r = info[children[1]]
                    .get(&q2)
                    .map(|i| i.estimate)
                    .unwrap_or(0.0);
                l * r
            }
            _ => 0.0,
        };
        if weight > 0.0 {
            components.push(Component {
                label,
                target,
                weight,
            });
        }
    }
    components
}

/// Deterministic, parallel approximate counter. Tree nodes are processed
/// bottom-up (a genuine sequential dependency: a node's component weights
/// and sample pools come from its children), but within a node every state
/// `q` is independent and is fanned out over `runtime`. State `q` at node
/// `t` draws all of its randomness from the private RNG stream
/// `split_seed2(seed, t, q)`, so the result is **bit-identical for 1, 2,
/// or N threads** — parallelism changes only which thread happens to run a
/// state, never the draws that state makes.
pub fn approx_count_fixed_shape_seeded(
    a: &TreeAutomaton,
    shape: &TreeShape,
    config: &TaApproxConfig,
    seed: u64,
    runtime: &Runtime,
) -> f64 {
    let order = shape.postorder();
    // info[t]: state → (estimate, samples)
    let mut info: Vec<HashMap<usize, NodeStateInfo>> = vec![HashMap::new(); shape.num_nodes()];

    // Which states can possibly start a run at some node? Restrict attention
    // to states appearing on the left of some transition.
    let states_with_transitions: Vec<usize> = {
        let mut s: Vec<usize> = a.transitions().iter().map(|&(q, _, _)| q).collect();
        s.sort_unstable();
        s.dedup();
        s
    };

    for &t in &order {
        let children = shape.children(t);
        let entries: Vec<Option<(usize, NodeStateInfo)>> =
            runtime.par_map(&states_with_transitions, |_, &q| {
                let components = components_of(a, children, &info, q);
                if components.is_empty() {
                    return None;
                }
                let mut rng = StdRng::seed_from_u64(split_seed2(seed, t as u64, q as u64));
                let entry =
                    estimate_union(a, shape, t, children, &info, &components, config, &mut rng);
                (entry.estimate > 0.0).then_some((q, entry))
            });
        for (q, entry) in entries.into_iter().flatten() {
            info[t].insert(q, entry);
        }
    }

    info[shape.root()]
        .get(&a.initial())
        .map(|i| i.estimate)
        .unwrap_or(0.0)
}

/// Karp–Luby estimation of `|∪ components|` plus rejection sampling of a pool
/// of (approximately) uniform members.
#[allow(clippy::too_many_arguments)]
fn estimate_union<R: Rng>(
    a: &TreeAutomaton,
    shape: &TreeShape,
    node: usize,
    children: &[usize],
    info: &[HashMap<usize, NodeStateInfo>],
    components: &[Component],
    config: &TaApproxConfig,
    rng: &mut R,
) -> NodeStateInfo {
    let total: f64 = components.iter().map(|c| c.weight).sum();

    // Single component: no overlap possible; the estimate is exact relative to
    // the child estimates and sampling is direct. This covers the join and
    // forget nodes of the Lemma 52 automata, keeping the variance low.
    if components.len() == 1 {
        let c = &components[0];
        let mut samples = Vec::with_capacity(config.sample_pool);
        for _ in 0..config.sample_pool {
            if let Some(s) = draw_from_component(shape, node, children, info, c, rng) {
                samples.push(s);
            }
        }
        return NodeStateInfo {
            estimate: c.weight,
            samples,
        };
    }

    let trials = config.trials(components.len());
    let mut canonical = 0usize;
    let mut pool: Vec<Vec<usize>> = Vec::new();
    for _ in 0..trials {
        // pick a component proportional to weight
        let mut pick = rng.gen::<f64>() * total;
        let mut idx = 0;
        for (i, c) in components.iter().enumerate() {
            if pick < c.weight {
                idx = i;
                break;
            }
            pick -= c.weight;
            idx = i;
        }
        let Some(labeling) =
            draw_from_component(shape, node, children, info, &components[idx], rng)
        else {
            continue;
        };
        // canonical test: idx is the first component containing the labelling
        let first = components
            .iter()
            .position(|c| membership(a, shape, node, children, c, &labeling));
        if first == Some(idx) {
            canonical += 1;
            if pool.len() < config.sample_pool {
                pool.push(labeling);
            }
        }
    }
    let p = canonical as f64 / trials as f64;
    NodeStateInfo {
        estimate: total * p,
        samples: pool,
    }
}

/// Draw a labelling of the subtree rooted at `node` from the given component
/// (uniformly, relative to the child sample pools). Returns `None` if a
/// needed child sample pool is empty.
fn draw_from_component<R: Rng>(
    shape: &TreeShape,
    node: usize,
    children: &[usize],
    info: &[HashMap<usize, NodeStateInfo>],
    component: &Component,
    rng: &mut R,
) -> Option<Vec<usize>> {
    let mut labeling = vec![0usize; shape.num_nodes()];
    labeling[node] = component.label;
    match (component.target, children.len()) {
        (TransitionTarget::Leaf, 0) => Some(labeling),
        (TransitionTarget::Unary(q1), 1) => {
            let child_info = info[children[0]].get(&q1)?;
            if child_info.samples.is_empty() {
                return None;
            }
            let s = &child_info.samples[rng.gen_range(0..child_info.samples.len())];
            for &u in &shape.subtree(children[0]) {
                labeling[u] = s[u];
            }
            Some(labeling)
        }
        (TransitionTarget::Binary(q1, q2), 2) => {
            let left_info = info[children[0]].get(&q1)?;
            let right_info = info[children[1]].get(&q2)?;
            if left_info.samples.is_empty() || right_info.samples.is_empty() {
                return None;
            }
            let sl = &left_info.samples[rng.gen_range(0..left_info.samples.len())];
            let sr = &right_info.samples[rng.gen_range(0..right_info.samples.len())];
            for &u in &shape.subtree(children[0]) {
                labeling[u] = sl[u];
            }
            for &u in &shape.subtree(children[1]) {
                labeling[u] = sr[u];
            }
            Some(labeling)
        }
        _ => None,
    }
}

/// Is the subtree labelling a member of the component's set?
fn membership(
    a: &TreeAutomaton,
    shape: &TreeShape,
    node: usize,
    children: &[usize],
    component: &Component,
    labeling: &[usize],
) -> bool {
    if labeling[node] != component.label {
        return false;
    }
    let tree = LabeledTree::new(shape.clone(), labeling.to_vec());
    match (component.target, children.len()) {
        (TransitionTarget::Leaf, 0) => true,
        (TransitionTarget::Unary(q1), 1) => a.subtree_accepts_from(&tree, children[0], q1),
        (TransitionTarget::Binary(q1, q2), 2) => {
            a.subtree_accepts_from(&tree, children[0], q1)
                && a.subtree_accepts_from(&tree, children[1], q2)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::count_labelings_fixed_shape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn approx(a: &TreeAutomaton, shape: &TreeShape, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        approx_count_fixed_shape(a, shape, &TaApproxConfig::new(0.2, 0.05), &mut rng)
    }

    #[test]
    fn deterministic_automaton_is_counted_exactly() {
        let (a, _) = TreeAutomaton::all_zero_labels();
        let shape = TreeShape::new(vec![vec![1, 2], vec![], vec![3], vec![]], 0);
        assert_eq!(approx(&a, &shape, 1), 1.0);
    }

    #[test]
    fn empty_language_gives_zero() {
        let a = TreeAutomaton::new(2, 2, 0);
        let shape = TreeShape::new(vec![vec![1], vec![]], 0);
        assert_eq!(approx(&a, &shape, 2), 0.0);
    }

    #[test]
    fn overlapping_unions_are_not_double_counted() {
        // root delegates to state 1 or 2 with heavy overlap on leaves
        let mut a = TreeAutomaton::new(3, 4, 0);
        a.add_transition(0, 0, TransitionTarget::Unary(1));
        a.add_transition(0, 0, TransitionTarget::Unary(2));
        for label in 0..4 {
            a.add_transition(1, label, TransitionTarget::Leaf);
        }
        for label in 0..3 {
            a.add_transition(2, label, TransitionTarget::Leaf);
        }
        let shape = TreeShape::new(vec![vec![1], vec![]], 0);
        let exact = count_labelings_fixed_shape(&a, &shape) as f64; // 4, not 7
        assert_eq!(exact, 4.0);
        let est = approx(&a, &shape, 3);
        assert!(
            (est - exact).abs() <= 0.25 * exact,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn nondeterministic_binary_automaton_close_to_exact() {
        // Accepts trees where the root reads label 0 and each leaf reads any
        // of several labels depending on the delegated state; components
        // overlap substantially.
        let mut a = TreeAutomaton::new(4, 5, 0);
        a.add_transition(0, 0, TransitionTarget::Binary(1, 2));
        a.add_transition(0, 0, TransitionTarget::Binary(2, 3));
        for label in 0..3 {
            a.add_transition(1, label, TransitionTarget::Leaf);
        }
        for label in 1..5 {
            a.add_transition(2, label, TransitionTarget::Leaf);
        }
        for label in 2..4 {
            a.add_transition(3, label, TransitionTarget::Leaf);
        }
        let shape = TreeShape::new(vec![vec![1, 2], vec![], vec![]], 0);
        let exact = count_labelings_fixed_shape(&a, &shape) as f64;
        assert!(exact > 0.0);
        let est = approx(&a, &shape, 4);
        assert!(
            (est - exact).abs() <= 0.25 * exact,
            "estimate {est} vs exact {exact}"
        );
    }

    #[test]
    fn deeper_tree_with_unary_chains() {
        // parity-style automaton with some nondeterminism: accepts chains of
        // length 4 with labels in {0,1} at even positions and {0} at odd.
        let mut a = TreeAutomaton::new(2, 2, 0);
        a.add_transition(0, 0, TransitionTarget::Unary(1));
        a.add_transition(0, 1, TransitionTarget::Unary(1));
        a.add_transition(1, 0, TransitionTarget::Unary(0));
        a.add_transition(1, 0, TransitionTarget::Leaf);
        let chain = TreeShape::new(vec![vec![1], vec![2], vec![3], vec![]], 0);
        let exact = count_labelings_fixed_shape(&a, &chain) as f64;
        let est = approx(&a, &chain, 5);
        assert!(
            (est - exact).abs() <= 0.25 * exact.max(1.0),
            "estimate {est} vs exact {exact}"
        );
    }
}
