//! Nondeterministic tree automata (Definition 50).

use crate::tree::{LabeledTree, TreeShape};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// The right-hand side of a transition `(q, σ) → …`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransitionTarget {
    /// `(q, σ) → ∅`: the node is a leaf.
    Leaf,
    /// `(q, σ) → q₁`: the node has exactly one child, rooted at state `q₁`.
    Unary(usize),
    /// `(q, σ) → (q₁, q₂)`: the node has two ordered children.
    Binary(usize, usize),
}

/// A nondeterministic tree automaton `A = (S, Σ, Δ, s₀)` over binary trees
/// (Definition 50). States and labels are dense indices.
#[derive(Debug, Serialize, Deserialize)]
pub struct TreeAutomaton {
    num_states: usize,
    num_labels: usize,
    initial: usize,
    transitions: Vec<(usize, usize, TransitionTarget)>,
    /// Lazily built lookup tables. A `OnceLock` (not a `RefCell`) so a
    /// fully built automaton is `Sync`: the approximate counter shares it
    /// read-only across the runtime's worker threads.
    #[serde(skip)]
    index: std::sync::OnceLock<TransitionIndex>,
}

impl Clone for TreeAutomaton {
    fn clone(&self) -> Self {
        TreeAutomaton {
            num_states: self.num_states,
            num_labels: self.num_labels,
            initial: self.initial,
            transitions: self.transitions.clone(),
            index: std::sync::OnceLock::new(),
        }
    }
}

impl PartialEq for TreeAutomaton {
    fn eq(&self, other: &Self) -> bool {
        self.num_states == other.num_states
            && self.num_labels == other.num_labels
            && self.initial == other.initial
            && self.transitions == other.transitions
    }
}
impl Eq for TreeAutomaton {}

/// Lazily built lookup tables over the transition list.
#[derive(Debug, Clone, Default)]
struct TransitionIndex {
    by_state_label: HashMap<(usize, usize), Vec<TransitionTarget>>,
    by_label: HashMap<usize, Vec<(usize, TransitionTarget)>>,
    by_state: HashMap<usize, Vec<(usize, TransitionTarget)>>,
}

impl TreeAutomaton {
    /// Create an automaton with no transitions.
    pub fn new(num_states: usize, num_labels: usize, initial: usize) -> Self {
        assert!(initial < num_states);
        TreeAutomaton {
            num_states,
            num_labels,
            initial,
            transitions: Vec::new(),
            index: std::sync::OnceLock::new(),
        }
    }

    /// Number of states `|S|`.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Number of labels `|Σ|`.
    pub fn num_labels(&self) -> usize {
        self.num_labels
    }

    /// The initial (root) state `s₀`.
    pub fn initial(&self) -> usize {
        self.initial
    }

    /// Add a transition `(state, label) → target`.
    pub fn add_transition(&mut self, state: usize, label: usize, target: TransitionTarget) {
        assert!(state < self.num_states && label < self.num_labels);
        match target {
            TransitionTarget::Leaf => {}
            TransitionTarget::Unary(q) => assert!(q < self.num_states),
            TransitionTarget::Binary(q1, q2) => {
                assert!(q1 < self.num_states && q2 < self.num_states)
            }
        }
        self.index = std::sync::OnceLock::new();
        self.transitions.push((state, label, target));
    }

    /// All transitions.
    pub fn transitions(&self) -> &[(usize, usize, TransitionTarget)] {
        &self.transitions
    }

    /// The targets available from `(state, label)`.
    pub fn targets(&self, state: usize, label: usize) -> Vec<TransitionTarget> {
        self.ensure_index()
            .by_state_label
            .get(&(state, label))
            .cloned()
            .unwrap_or_default()
    }

    /// All `(state, target)` transitions reading `label`.
    pub fn transitions_with_label(&self, label: usize) -> Vec<(usize, TransitionTarget)> {
        self.ensure_index()
            .by_label
            .get(&label)
            .cloned()
            .unwrap_or_default()
    }

    /// All `(label, target)` transitions out of `state`.
    pub fn transitions_from(&self, state: usize) -> Vec<(usize, TransitionTarget)> {
        self.ensure_index()
            .by_state
            .get(&state)
            .cloned()
            .unwrap_or_default()
    }

    fn ensure_index(&self) -> &TransitionIndex {
        self.index.get_or_init(|| {
            let mut built = TransitionIndex::default();
            for &(s, l, t) in &self.transitions {
                built.by_state_label.entry((s, l)).or_default().push(t);
                built.by_label.entry(l).or_default().push((s, t));
                built.by_state.entry(s).or_default().push((l, t));
            }
            built
        })
    }

    /// The set of states `q` such that the subtree of `tree` rooted at `node`
    /// admits a run assigning `q` to `node` (bottom-up reachable states).
    pub fn reachable_states(&self, tree: &LabeledTree, node: usize) -> BTreeSet<usize> {
        let mut memo: HashMap<usize, BTreeSet<usize>> = HashMap::new();
        self.reachable_rec(tree, node, &mut memo)
    }

    fn reachable_rec(
        &self,
        tree: &LabeledTree,
        node: usize,
        memo: &mut HashMap<usize, BTreeSet<usize>>,
    ) -> BTreeSet<usize> {
        if let Some(s) = memo.get(&node) {
            return s.clone();
        }
        let label = tree.labels[node];
        let children = tree.shape.children(node);
        let child_sets: Vec<BTreeSet<usize>> = children
            .iter()
            .map(|&c| self.reachable_rec(tree, c, memo))
            .collect();
        let mut out = BTreeSet::new();
        for (q, target) in self.transitions_with_label(label) {
            if out.contains(&q) {
                continue;
            }
            let ok = match (target, children.len()) {
                (TransitionTarget::Leaf, 0) => true,
                (TransitionTarget::Unary(q1), 1) => child_sets[0].contains(&q1),
                (TransitionTarget::Binary(q1, q2), 2) => {
                    child_sets[0].contains(&q1) && child_sets[1].contains(&q2)
                }
                _ => false,
            };
            if ok {
                out.insert(q);
            }
        }
        memo.insert(node, out.clone());
        out
    }

    /// Does the automaton accept the labelled tree (some run assigns `s₀` to
    /// the root)?
    pub fn accepts(&self, tree: &LabeledTree) -> bool {
        self.reachable_states(tree, tree.shape.root())
            .contains(&self.initial)
    }

    /// Does the subtree of `tree` rooted at `node` admit a run starting from
    /// `state`? (Membership test `ψ|_subtree ∈ L(node, state)` used by the
    /// Karp–Luby union estimation of the approximate counter.)
    pub fn subtree_accepts_from(&self, tree: &LabeledTree, node: usize, state: usize) -> bool {
        self.reachable_states(tree, node).contains(&state)
    }

    /// A tiny deterministic example automaton used in tests and docs: accepts
    /// the labelled binary trees in which **every** node carries label 0.
    pub fn all_zero_labels() -> (Self, usize) {
        let mut a = TreeAutomaton::new(1, 2, 0);
        a.add_transition(0, 0, TransitionTarget::Leaf);
        a.add_transition(0, 0, TransitionTarget::Unary(0));
        a.add_transition(0, 0, TransitionTarget::Binary(0, 0));
        (a, 0)
    }
}

/// Enumerate all accepted labelled trees over a fixed shape by brute force
/// (testing helper; `num_labels^n` work).
pub fn accepted_labelings_bruteforce(a: &TreeAutomaton, shape: &TreeShape) -> Vec<LabeledTree> {
    let n = shape.num_nodes();
    let l = a.num_labels();
    let mut out = Vec::new();
    let mut labels = vec![0usize; n];
    loop {
        let t = LabeledTree::new(shape.clone(), labels.clone());
        if a.accepts(&t) {
            out.push(t);
        }
        // odometer
        let mut i = 0;
        loop {
            if i == n {
                return out;
            }
            labels[i] += 1;
            if labels[i] < l {
                break;
            }
            labels[i] = 0;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zero_automaton_accepts_only_zero_labelings() {
        let (a, _) = TreeAutomaton::all_zero_labels();
        let shape = TreeShape::new(vec![vec![1, 2], vec![], vec![]], 0);
        assert!(a.accepts(&LabeledTree::new(shape.clone(), vec![0, 0, 0])));
        assert!(!a.accepts(&LabeledTree::new(shape.clone(), vec![0, 1, 0])));
        let accepted = accepted_labelings_bruteforce(&a, &shape);
        assert_eq!(accepted.len(), 1);
    }

    #[test]
    fn nondeterministic_union_automaton() {
        // Accepts single-node trees labelled 0 or 1 via two different states
        // reachable from the initial state? A single-node tree: the run maps
        // the root to s0, so transitions must be from s0 directly.
        let mut a = TreeAutomaton::new(1, 3, 0);
        a.add_transition(0, 0, TransitionTarget::Leaf);
        a.add_transition(0, 1, TransitionTarget::Leaf);
        let shape = TreeShape::single();
        assert!(a.accepts(&LabeledTree::new(shape.clone(), vec![0])));
        assert!(a.accepts(&LabeledTree::new(shape.clone(), vec![1])));
        assert!(!a.accepts(&LabeledTree::new(shape.clone(), vec![2])));
    }

    #[test]
    fn unary_chain_parity_automaton() {
        // Accepts label-0 chains of even length: state 0 = even remaining,
        // state 1 = odd remaining; leaf allowed only in state 1 (so total
        // number of nodes is even).
        let mut a = TreeAutomaton::new(2, 1, 0);
        a.add_transition(0, 0, TransitionTarget::Unary(1));
        a.add_transition(1, 0, TransitionTarget::Unary(0));
        a.add_transition(1, 0, TransitionTarget::Leaf);
        // chain with k nodes
        let chain = |k: usize| {
            let children: Vec<Vec<usize>> = (0..k)
                .map(|i| if i + 1 < k { vec![i + 1] } else { vec![] })
                .collect();
            LabeledTree::new(TreeShape::new(children, 0), vec![0; k])
        };
        assert!(a.accepts(&chain(2)));
        assert!(a.accepts(&chain(4)));
        assert!(!a.accepts(&chain(1)));
        assert!(!a.accepts(&chain(3)));
    }

    #[test]
    fn reachable_states_and_subtree_membership() {
        let (a, _) = TreeAutomaton::all_zero_labels();
        let shape = TreeShape::new(vec![vec![1], vec![]], 0);
        let good = LabeledTree::new(shape.clone(), vec![0, 0]);
        let bad = LabeledTree::new(shape, vec![0, 1]);
        assert!(a.subtree_accepts_from(&good, 1, 0));
        assert!(!a.subtree_accepts_from(&bad, 1, 0));
        assert_eq!(a.reachable_states(&bad, 0).len(), 0);
    }

    #[test]
    fn targets_lookup() {
        let (a, _) = TreeAutomaton::all_zero_labels();
        assert_eq!(a.targets(0, 0).len(), 3);
        assert_eq!(a.targets(0, 1).len(), 0);
        assert_eq!(a.num_states(), 1);
        assert_eq!(a.num_labels(), 2);
        assert_eq!(a.initial(), 0);
        assert_eq!(a.transitions().len(), 3);
    }
}
