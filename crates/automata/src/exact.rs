//! Exact #TA counting: brute force over the `N`-slice, and a fixed-shape
//! counter via a dynamic program over reachable state sets.

use crate::automaton::TreeAutomaton;
use crate::tree::{LabeledTree, TreeShape};
use std::collections::{BTreeSet, HashMap};

/// `|L_N(A)|` by brute force: enumerate every tree shape with `N` nodes and
/// every labelling, and check acceptance. Exponential; intended only for tiny
/// `N` (ground truth for the approximate counter and for the fixed-shape DP).
pub fn count_slice_bruteforce(a: &TreeAutomaton, n: usize) -> u128 {
    let mut total = 0u128;
    for shape in TreeShape::enumerate(n) {
        total += count_labelings_bruteforce(a, &shape);
    }
    total
}

fn count_labelings_bruteforce(a: &TreeAutomaton, shape: &TreeShape) -> u128 {
    let n = shape.num_nodes();
    let l = a.num_labels();
    let mut labels = vec![0usize; n];
    let mut count = 0u128;
    loop {
        if a.accepts(&LabeledTree::new(shape.clone(), labels.clone())) {
            count += 1;
        }
        let mut i = 0;
        loop {
            if i == n {
                return count;
            }
            labels[i] += 1;
            if labels[i] < l {
                break;
            }
            labels[i] = 0;
            i += 1;
        }
    }
}

/// Count the labellings of a **fixed** shape that the automaton accepts,
/// exactly, by a bottom-up dynamic program whose per-node table maps each
/// *reachable state set* to the number of subtree labellings realising it.
///
/// The table size is bounded by the number of distinct reachable state sets,
/// which is small for the automata produced by the Lemma 52 reduction on
/// moderate instances but can be exponential in general — this function is a
/// ground-truth tool, not the FPRAS (see [`crate::approx_count_fixed_shape`]).
pub fn count_labelings_fixed_shape(a: &TreeAutomaton, shape: &TreeShape) -> u128 {
    let order = shape.postorder();
    // tables[t]: reachable state set (sorted) → number of labellings of the
    // subtree rooted at t inducing exactly that set.
    let mut tables: Vec<Option<HashMap<Vec<usize>, u128>>> = vec![None; shape.num_nodes()];
    for &t in &order {
        let children = shape.children(t);
        let mut table: HashMap<Vec<usize>, u128> = HashMap::new();
        match children.len() {
            0 => {
                for label in 0..a.num_labels() {
                    let set: Vec<usize> = (0..a.num_states())
                        .filter(|&q| {
                            a.targets(q, label)
                                .iter()
                                .any(|t| matches!(t, crate::TransitionTarget::Leaf))
                        })
                        .collect();
                    *table.entry(set).or_insert(0) += 1;
                }
            }
            1 => {
                let child_table = tables[children[0]].as_ref().expect("postorder");
                // cqc-audit: allow(hash-iter) — every visit only does a commutative u128 `+=` into `table`; the final table is order-independent
                for (child_set, &count) in child_table {
                    let child: BTreeSet<usize> = child_set.iter().copied().collect();
                    for label in 0..a.num_labels() {
                        let set: Vec<usize> = (0..a.num_states())
                            .filter(|&q| {
                                a.targets(q, label).iter().any(|t| match t {
                                    crate::TransitionTarget::Unary(q1) => child.contains(q1),
                                    _ => false,
                                })
                            })
                            .collect();
                        *table.entry(set).or_insert(0) += count;
                    }
                }
            }
            _ => {
                let left_table = tables[children[0]].as_ref().expect("postorder").clone();
                let right_table = tables[children[1]].as_ref().expect("postorder").clone();
                // cqc-audit: allow(hash-iter) — every visit only does a commutative u128 `+=` into `table`; the final table is order-independent
                for (lset, &lc) in &left_table {
                    let left: BTreeSet<usize> = lset.iter().copied().collect();
                    // cqc-audit: allow(hash-iter) — every visit only does a commutative u128 `+=` into `table`; the final table is order-independent
                    for (rset, &rc) in &right_table {
                        let right: BTreeSet<usize> = rset.iter().copied().collect();
                        for label in 0..a.num_labels() {
                            let set: Vec<usize> = (0..a.num_states())
                                .filter(|&q| {
                                    a.targets(q, label).iter().any(|t| match t {
                                        crate::TransitionTarget::Binary(q1, q2) => {
                                            left.contains(q1) && right.contains(q2)
                                        }
                                        _ => false,
                                    })
                                })
                                .collect();
                            *table.entry(set).or_insert(0) += lc * rc;
                        }
                    }
                }
            }
        }
        tables[t] = Some(table);
    }
    tables[shape.root()]
        .as_ref()
        .expect("root processed")
        // cqc-audit: allow(hash-iter) — u128 sum of the surviving counts; addition is commutative, so hash order cannot change the total
        .iter()
        .filter(|(set, _)| set.binary_search(&a.initial()).is_ok())
        .map(|(_, &c)| c)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::accepted_labelings_bruteforce;
    use crate::TransitionTarget;

    #[test]
    fn all_zero_automaton_slice_counts() {
        // exactly one accepted labelling per shape, so |L_N| = #shapes(N)
        let (a, _) = TreeAutomaton::all_zero_labels();
        assert_eq!(count_slice_bruteforce(&a, 1), 1);
        assert_eq!(count_slice_bruteforce(&a, 3), 2);
        assert_eq!(count_slice_bruteforce(&a, 4), 4);
        assert_eq!(count_slice_bruteforce(&a, 5), 9);
    }

    #[test]
    fn fixed_shape_dp_matches_bruteforce() {
        // A small nondeterministic automaton with overlapping transitions:
        // labels {0,1}; states {0 = init, 1, 2}; the root must read label 0
        // and may delegate to state 1 or 2; state 1 accepts leaves labelled 0,
        // state 2 accepts leaves labelled 0 or 1 — overlap on label 0.
        let mut a = TreeAutomaton::new(3, 2, 0);
        a.add_transition(0, 0, TransitionTarget::Unary(1));
        a.add_transition(0, 0, TransitionTarget::Unary(2));
        a.add_transition(1, 0, TransitionTarget::Leaf);
        a.add_transition(2, 0, TransitionTarget::Leaf);
        a.add_transition(2, 1, TransitionTarget::Leaf);
        a.add_transition(0, 1, TransitionTarget::Binary(1, 2));
        for shape in [
            TreeShape::new(vec![vec![1], vec![]], 0),
            TreeShape::new(vec![vec![1, 2], vec![], vec![]], 0),
            TreeShape::new(vec![vec![1], vec![2], vec![]], 0),
            TreeShape::new(vec![vec![1, 2], vec![3], vec![], vec![]], 0),
        ] {
            let expected = accepted_labelings_bruteforce(&a, &shape).len() as u128;
            assert_eq!(count_labelings_fixed_shape(&a, &shape), expected);
        }
    }

    #[test]
    fn projection_style_overlap_is_not_double_counted() {
        // Two states both accept the same leaf labelling — the count must be
        // of *labellings*, not of runs.
        let mut a = TreeAutomaton::new(3, 1, 0);
        a.add_transition(0, 0, TransitionTarget::Unary(1));
        a.add_transition(0, 0, TransitionTarget::Unary(2));
        a.add_transition(1, 0, TransitionTarget::Leaf);
        a.add_transition(2, 0, TransitionTarget::Leaf);
        let shape = TreeShape::new(vec![vec![1], vec![]], 0);
        // single labelling (all label 0), two runs
        assert_eq!(count_labelings_fixed_shape(&a, &shape), 1);
    }

    #[test]
    fn empty_language() {
        let a = TreeAutomaton::new(2, 2, 0);
        assert_eq!(count_slice_bruteforce(&a, 3), 0);
        let shape = TreeShape::new(vec![vec![1], vec![]], 0);
        assert_eq!(count_labelings_fixed_shape(&a, &shape), 0);
    }

    #[test]
    fn label_rich_single_node() {
        let mut a = TreeAutomaton::new(1, 5, 0);
        for label in [0, 2, 4] {
            a.add_transition(0, label, TransitionTarget::Leaf);
        }
        assert_eq!(count_slice_bruteforce(&a, 1), 3);
        assert_eq!(count_labelings_fixed_shape(&a, &TreeShape::single()), 3);
    }
}
