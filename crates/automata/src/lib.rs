//! # cqc-automata — tree automata over binary trees and #TA counting
//!
//! Implements the machinery of Section 5.2.3 of the paper:
//!
//! * [`TreeAutomaton`] — nondeterministic tree automata `(S, Σ, Δ, s₀)` over
//!   `Trees₂[Σ]` (Definitions 49–50), with transitions to zero, one or two
//!   children.
//! * [`LabeledTree`] / [`TreeShape`] — labelled binary trees and bare shapes.
//! * Acceptance checking (bottom-up reachable-state computation).
//! * Exact `N`-slice counting: brute force over all shapes and labelings for
//!   tiny `N` (the specification of the #TA problem), and an exact
//!   fixed-shape counter via a dynamic program over reachable state sets
//!   (used as ground truth for the Theorem 16 pipeline, whose Lemma 52
//!   automata force the tree shape).
//! * [`approx_count_fixed_shape`] — a sampling-based approximate counter in
//!   the style of Arenas–Croquevielle–Jayaram–Riveros (Lemma 51): bottom-up
//!   per-(node, state) estimates with Karp–Luby union estimation and
//!   self-reducible sampling. See DESIGN.md (substitutions) for how this
//!   relates to the original ACJR algorithm.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod automaton;
pub mod exact;
pub mod tree;

pub use approx::{approx_count_fixed_shape, approx_count_fixed_shape_seeded, TaApproxConfig};
pub use automaton::{TransitionTarget, TreeAutomaton};
pub use exact::{count_labelings_fixed_shape, count_slice_bruteforce};
pub use tree::{LabeledTree, TreeShape};
