//! Binary tree shapes and labelled trees (`Trees₂[Σ]`, Definition 49).

use serde::{Deserialize, Serialize};

/// A rooted tree in which every node has at most two (ordered) children.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TreeShape {
    children: Vec<Vec<usize>>,
    root: usize,
}

impl TreeShape {
    /// Build a shape from per-node child lists and a root.
    ///
    /// # Panics
    /// Panics if a node has more than two children or the structure is not a
    /// tree rooted at `root`.
    pub fn new(children: Vec<Vec<usize>>, root: usize) -> Self {
        let n = children.len();
        assert!(root < n);
        let mut indeg = vec![0usize; n];
        for (t, ch) in children.iter().enumerate() {
            assert!(ch.len() <= 2, "node {t} has more than two children");
            for &c in ch {
                assert!(c < n);
                indeg[c] += 1;
            }
        }
        assert_eq!(indeg[root], 0, "root has a parent");
        assert!(
            indeg.iter().enumerate().all(|(t, &d)| d == 1 || t == root),
            "not a tree"
        );
        TreeShape { children, root }
    }

    /// A single-node shape.
    pub fn single() -> Self {
        TreeShape {
            children: vec![vec![]],
            root: 0,
        }
    }

    /// The number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.children.len()
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// The children of a node (0, 1 or 2 of them, ordered).
    pub fn children(&self, t: usize) -> &[usize] {
        &self.children[t]
    }

    /// Nodes in post-order (children before parents).
    pub fn postorder(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.num_nodes());
        let mut stack = vec![(self.root, false)];
        while let Some((t, expanded)) = stack.pop() {
            if expanded {
                order.push(t);
            } else {
                stack.push((t, true));
                for &c in &self.children[t] {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// The nodes of the subtree rooted at `t` (including `t`).
    pub fn subtree(&self, t: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![t];
        while let Some(u) = stack.pop() {
            out.push(u);
            for &c in &self.children[u] {
                stack.push(c);
            }
        }
        out
    }

    /// Enumerate all tree shapes with exactly `n` nodes (used by the
    /// brute-force #TA counter; exponential, intended for tiny `n`).
    ///
    /// Nodes are numbered in a canonical preorder, so two structurally
    /// distinct shapes are never identified.
    pub fn enumerate(n: usize) -> Vec<TreeShape> {
        fn build(n: usize) -> Vec<Vec<Vec<usize>>> {
            // returns child-lists using local numbering 0..n with 0 as root (preorder)
            if n == 0 {
                return vec![];
            }
            if n == 1 {
                return vec![vec![vec![]]];
            }
            let mut out = Vec::new();
            // one child consuming n-1 nodes
            for sub in build(n - 1) {
                let mut children = vec![vec![1usize]];
                children.extend(shift(&sub, 1));
                out.push(children);
            }
            // two children consuming k and n-1-k nodes (both ≥ 1, ordered)
            for k in 1..(n - 1) {
                for left in build(k) {
                    for right in build(n - 1 - k) {
                        let mut children = vec![vec![1usize, 1 + k]];
                        children.extend(shift(&left, 1));
                        children.extend(shift(&right, 1 + k));
                        out.push(children);
                    }
                }
            }
            out
        }
        fn shift(children: &[Vec<usize>], offset: usize) -> Vec<Vec<usize>> {
            children
                .iter()
                .map(|ch| ch.iter().map(|c| c + offset).collect())
                .collect()
        }
        build(n)
            .into_iter()
            .map(|children| TreeShape::new(children, 0))
            .collect()
    }
}

/// A labelled binary tree `(T, ψ) ∈ Trees₂[Σ]`: a shape plus one label per
/// node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabeledTree {
    /// The underlying shape `T`.
    pub shape: TreeShape,
    /// The labelling `ψ : V(T) → Σ` (labels are dense indices).
    pub labels: Vec<usize>,
}

impl LabeledTree {
    /// Create a labelled tree.
    pub fn new(shape: TreeShape, labels: Vec<usize>) -> Self {
        assert_eq!(labels.len(), shape.num_nodes());
        LabeledTree { shape, labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_accessors() {
        let s = TreeShape::new(vec![vec![1, 2], vec![], vec![3], vec![]], 0);
        assert_eq!(s.num_nodes(), 4);
        assert_eq!(s.root(), 0);
        assert_eq!(s.children(0), &[1, 2]);
        let post = s.postorder();
        assert_eq!(post.len(), 4);
        assert_eq!(*post.last().unwrap(), 0);
        assert_eq!(s.subtree(2), vec![2, 3]);
        assert_eq!(s.subtree(0).len(), 4);
    }

    #[test]
    #[should_panic(expected = "more than two children")]
    fn three_children_rejected() {
        TreeShape::new(vec![vec![1, 2, 3], vec![], vec![], vec![]], 0);
    }

    #[test]
    #[should_panic(expected = "not a tree")]
    fn non_tree_rejected() {
        // node 2 has two parents
        TreeShape::new(vec![vec![1, 2], vec![2], vec![]], 0);
    }

    #[test]
    #[should_panic(expected = "root has a parent")]
    fn cycle_rejected() {
        TreeShape::new(vec![vec![1], vec![0]], 0);
    }

    #[test]
    fn enumerate_counts_motzkin_like_shapes() {
        // Number of rooted trees with ≤ 2 ordered children per node and n
        // nodes: 1, 1, 2, 4, 9, 21 (Motzkin numbers).
        assert_eq!(TreeShape::enumerate(1).len(), 1);
        assert_eq!(TreeShape::enumerate(2).len(), 1);
        assert_eq!(TreeShape::enumerate(3).len(), 2);
        assert_eq!(TreeShape::enumerate(4).len(), 4);
        assert_eq!(TreeShape::enumerate(5).len(), 9);
        assert_eq!(TreeShape::enumerate(6).len(), 21);
        // every enumerated shape is valid and has the right size
        for s in TreeShape::enumerate(5) {
            assert_eq!(s.num_nodes(), 5);
            assert_eq!(s.postorder().len(), 5);
        }
    }

    #[test]
    fn labelled_tree_construction() {
        let s = TreeShape::new(vec![vec![1], vec![]], 0);
        let t = LabeledTree::new(s, vec![0, 1]);
        assert_eq!(t.labels.len(), 2);
    }

    #[test]
    #[should_panic]
    fn labelled_tree_wrong_label_count() {
        let s = TreeShape::single();
        LabeledTree::new(s, vec![0, 1]);
    }
}
