//! Property-based tests for the tree-automaton machinery of Section 5.2.3:
//! acceptance, exact fixed-shape counting, the brute-force N-slice
//! specification and the sampling-based approximate counter (our stand-in
//! for the ACJR FPRAS, Lemma 51).

use cqc_automata::automaton::accepted_labelings_bruteforce;
use cqc_automata::{
    approx_count_fixed_shape, count_labelings_fixed_shape, count_slice_bruteforce, LabeledTree,
    TaApproxConfig, TransitionTarget, TreeAutomaton, TreeShape,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A raw random automaton over `num_states` states and `num_labels` labels.
#[derive(Debug, Clone)]
struct RawAutomaton {
    num_states: usize,
    num_labels: usize,
    /// (state, label, kind, q1, q2) with kind 0 = leaf, 1 = unary, 2 = binary.
    transitions: Vec<(usize, usize, u8, usize, usize)>,
}

fn raw_automaton() -> impl Strategy<Value = RawAutomaton> {
    (1usize..=3, 1usize..=3).prop_flat_map(|(num_states, num_labels)| {
        let t = (
            0..num_states,
            0..num_labels,
            0u8..3,
            0..num_states,
            0..num_states,
        );
        proptest::collection::vec(t, 1..10).prop_map(move |transitions| RawAutomaton {
            num_states,
            num_labels,
            transitions,
        })
    })
}

fn build_automaton(raw: &RawAutomaton) -> TreeAutomaton {
    let mut a = TreeAutomaton::new(raw.num_states, raw.num_labels, 0);
    for &(q, sigma, kind, q1, q2) in &raw.transitions {
        let target = match kind {
            0 => TransitionTarget::Leaf,
            1 => TransitionTarget::Unary(q1),
            _ => TransitionTarget::Binary(q1, q2),
        };
        a.add_transition(q, sigma, target);
    }
    a
}

/// A random small tree shape with at most 5 nodes, drawn from the full
/// enumeration (so every shape is reachable).
fn small_shape() -> impl Strategy<Value = TreeShape> {
    (1usize..=5).prop_flat_map(|n| {
        let shapes = TreeShape::enumerate(n);
        let count = shapes.len();
        (0..count).prop_map(move |i| shapes[i].clone())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The exact fixed-shape counter agrees with brute-force enumeration of
    /// all labelings, and every labelling it counts is indeed accepted.
    #[test]
    fn fixed_shape_counter_matches_bruteforce(raw in raw_automaton(), shape in small_shape()) {
        let a = build_automaton(&raw);
        let accepted = accepted_labelings_bruteforce(&a, &shape);
        for t in &accepted {
            prop_assert!(a.accepts(t));
        }
        prop_assert_eq!(
            count_labelings_fixed_shape(&a, &shape),
            accepted.len() as u128
        );
    }

    /// The N-slice brute-force counter is the sum of the fixed-shape counts
    /// over all shapes with N nodes (Definition 50: the N-slice ranges over
    /// all pairs (T, ψ) with |V(T)| = N).
    #[test]
    fn slice_count_sums_over_shapes(raw in raw_automaton(), n in 1usize..=4) {
        let a = build_automaton(&raw);
        let total: u128 = TreeShape::enumerate(n)
            .iter()
            .map(|s| count_labelings_fixed_shape(&a, s))
            .sum();
        prop_assert_eq!(count_slice_bruteforce(&a, n), total);
    }

    /// Acceptance is label-monotone in the transition relation: adding a
    /// transition can only accept more labelled trees.
    #[test]
    fn adding_transitions_is_monotone(raw in raw_automaton(), shape in small_shape(), extra in (0usize..3, 0usize..3, 0u8..3, 0usize..3, 0usize..3)) {
        let a = build_automaton(&raw);
        let before = count_labelings_fixed_shape(&a, &shape);
        let mut raw2 = raw.clone();
        let (q, sigma, kind, q1, q2) = extra;
        raw2.transitions.push((
            q % raw.num_states,
            sigma % raw.num_labels,
            kind,
            q1 % raw.num_states,
            q2 % raw.num_states,
        ));
        let a2 = build_automaton(&raw2);
        let after = count_labelings_fixed_shape(&a2, &shape);
        prop_assert!(after >= before);
    }

    /// The sampling-based approximate counter is nonnegative, is zero when
    /// the exact count is zero, and is within a generous factor of the exact
    /// count on these tiny instances.
    #[test]
    fn approx_counter_tracks_exact(raw in raw_automaton(), shape in small_shape(), seed in any::<u64>()) {
        let a = build_automaton(&raw);
        let exact = count_labelings_fixed_shape(&a, &shape) as f64;
        let cfg = TaApproxConfig::new(0.1, 0.01);
        let mut rng = StdRng::seed_from_u64(seed);
        let est = approx_count_fixed_shape(&a, &shape, &cfg, &mut rng);
        prop_assert!(est >= 0.0);
        if exact == 0.0 {
            prop_assert!(est < 0.5, "estimate {} for an empty slice", est);
        } else {
            prop_assert!(
                (est - exact).abs() <= 0.5 * exact,
                "estimate {} vs exact {}",
                est,
                exact
            );
        }
    }

    /// The all-zero-labels automaton accepts exactly one labelling per shape
    /// (every node labelled 0), so its N-slice is the number of shapes.
    #[test]
    fn all_zero_labels_counts_shapes(n in 1usize..=4) {
        let (a, _label) = TreeAutomaton::all_zero_labels();
        let shapes = TreeShape::enumerate(n);
        prop_assert_eq!(count_slice_bruteforce(&a, n), shapes.len() as u128);
        for s in shapes {
            prop_assert_eq!(count_labelings_fixed_shape(&a, &s), 1);
        }
    }

    /// Acceptance requires a transition compatible with the degree of every
    /// node: an automaton with only leaf transitions accepts no tree with
    /// more than one node.
    #[test]
    fn leaf_only_automata_reject_internal_nodes(num_labels in 1usize..=3, shape in small_shape()) {
        let mut a = TreeAutomaton::new(1, num_labels, 0);
        for sigma in 0..num_labels {
            a.add_transition(0, sigma, TransitionTarget::Leaf);
        }
        let count = count_labelings_fixed_shape(&a, &shape);
        if shape.num_nodes() == 1 {
            prop_assert_eq!(count, num_labels as u128);
        } else {
            prop_assert_eq!(count, 0);
        }
    }

    /// `accepts` is consistent with `reachable_states`: a tree is accepted
    /// iff the initial state is reachable at the root.
    #[test]
    fn accepts_matches_reachable_states(raw in raw_automaton(), shape in small_shape(), label_seed in any::<u64>()) {
        let a = build_automaton(&raw);
        let mut s = label_seed;
        let labels: Vec<usize> = (0..shape.num_nodes())
            .map(|_| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                (s >> 33) as usize % raw.num_labels
            })
            .collect();
        let tree = LabeledTree::new(shape.clone(), labels);
        let root_states = a.reachable_states(&tree, tree.shape.root());
        prop_assert_eq!(a.accepts(&tree), root_states.contains(&a.initial()));
    }
}
