//! Building queries, including the equality-elimination rewriting.

use crate::ast::{Atom, Literal, Query, QueryError, Var};
use std::collections::BTreeMap;

/// A builder for [`Query`] values.
///
/// Equalities added with [`QueryBuilder::equality`] are eliminated before the
/// query is produced, by merging the equated variables into a single variable
/// (the paper's "without loss of generality ECQs have no equalities").
///
/// ```
/// use cqc_query::QueryBuilder;
/// let mut b = QueryBuilder::new();
/// let x = b.var("x");
/// let y = b.var("y");
/// let z = b.var("z");
/// b.free(&[x]);
/// b.atom("F", &[x, y]);
/// b.atom("F", &[x, z]);
/// b.disequality(y, z);
/// let q = b.build().unwrap();
/// assert_eq!(q.num_vars(), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    names: Vec<String>,
    // Sorted maps throughout the builder: variable numbering and arity
    // checks must never depend on hash-iteration order (cqc-audit
    // `hash-iter` rule — the query plan feeds every estimate).
    by_name: BTreeMap<String, Var>,
    free: Vec<Var>,
    literals: Vec<Literal>,
    disequalities: Vec<(Var, Var)>,
    equalities: Vec<(Var, Var)>,
}

impl QueryBuilder {
    /// A fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Introduce (or look up) a variable by name.
    pub fn var(&mut self, name: &str) -> Var {
        if let Some(&v) = self.by_name.get(name) {
            return v;
        }
        let v = Var(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), v);
        v
    }

    /// Introduce a fresh variable with an auto-generated name.
    pub fn fresh_var(&mut self) -> Var {
        let name = format!("_v{}", self.names.len());
        self.var(&name)
    }

    /// Declare the free (output) variables, in head order.
    pub fn free(&mut self, vars: &[Var]) -> &mut Self {
        self.free = vars.to_vec();
        self
    }

    /// Add a positive atom `R(vars…)`.
    pub fn atom(&mut self, relation: &str, vars: &[Var]) -> &mut Self {
        self.literals
            .push(Literal::Positive(Atom::new(relation, vars)));
        self
    }

    /// Add a negated atom `¬R(vars…)`.
    pub fn negated_atom(&mut self, relation: &str, vars: &[Var]) -> &mut Self {
        self.literals
            .push(Literal::Negated(Atom::new(relation, vars)));
        self
    }

    /// Add a disequality `u ≠ v`.
    pub fn disequality(&mut self, u: Var, v: Var) -> &mut Self {
        self.disequalities.push((u, v));
        self
    }

    /// Add an equality `u = v` (eliminated by variable merging at build time).
    pub fn equality(&mut self, u: Var, v: Var) -> &mut Self {
        self.equalities.push((u, v));
        self
    }

    /// Finish building, performing validation and equality elimination.
    pub fn build(&self) -> Result<Query, QueryError> {
        // Reject reflexive comparisons.
        for (u, v) in self.equalities.iter().chain(self.disequalities.iter()) {
            if u == v {
                return Err(QueryError::ReflexiveComparison(
                    self.names[u.index()].clone(),
                ));
            }
        }
        // Union-find over variables to eliminate equalities.
        let n = self.names.len();
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut Vec<usize>, i: usize) -> usize {
            if parent[i] != i {
                let r = find(parent, parent[i]);
                parent[i] = r;
            }
            parent[i]
        }
        for (u, v) in &self.equalities {
            let ru = find(&mut parent, u.index());
            let rv = find(&mut parent, v.index());
            if ru != rv {
                // keep the smaller index as representative (stable naming)
                let (keep, drop) = if ru < rv { (ru, rv) } else { (rv, ru) };
                parent[drop] = keep;
            }
        }
        // Renumber representatives densely, in original order.
        let mut new_index: BTreeMap<usize, u32> = BTreeMap::new();
        let mut new_names: Vec<String> = Vec::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            if let std::collections::btree_map::Entry::Vacant(e) = new_index.entry(r) {
                e.insert(new_names.len() as u32);
                new_names.push(self.names[r].clone());
            }
        }
        let remap = |v: Var, parent: &mut Vec<usize>| -> Var {
            let r = find(parent, v.index());
            Var(new_index[&r])
        };

        // Free variables: remap, reject duplicates (two equated free variables
        // would collapse, changing the answer arity silently — surface it).
        let mut free = Vec::with_capacity(self.free.len());
        for v in &self.free {
            let nv = remap(*v, &mut parent);
            if free.contains(&nv) {
                return Err(QueryError::DuplicateFreeVariable(
                    self.names[v.index()].clone(),
                ));
            }
            free.push(nv);
        }

        // Literals: remap; check arity consistency per relation name.
        let mut arities: BTreeMap<String, usize> = BTreeMap::new();
        let mut literals = Vec::with_capacity(self.literals.len());
        for l in &self.literals {
            let a = l.atom();
            if let Some(&prev) = arities.get(&a.relation) {
                if prev != a.arity() {
                    return Err(QueryError::InconsistentArity {
                        relation: a.relation.clone(),
                        first: prev,
                        second: a.arity(),
                    });
                }
            } else {
                arities.insert(a.relation.clone(), a.arity());
            }
            let vars: Vec<Var> = a.vars.iter().map(|v| remap(*v, &mut parent)).collect();
            let atom = Atom::new(&a.relation, &vars);
            literals.push(match l {
                Literal::Positive(_) => Literal::Positive(atom),
                Literal::Negated(_) => Literal::Negated(atom),
            });
        }

        // Disequalities: remap, normalise order, drop duplicates. A
        // disequality that became reflexive through equality merging makes the
        // query unsatisfiable, which is legitimate; we keep it as a reflexive
        // marker is not possible, so instead reject (the caller asked for a
        // contradictory query).
        let mut disequalities = Vec::with_capacity(self.disequalities.len());
        for (u, v) in &self.disequalities {
            let nu = remap(*u, &mut parent);
            let nv = remap(*v, &mut parent);
            if nu == nv {
                return Err(QueryError::ReflexiveComparison(
                    self.names[u.index()].clone(),
                ));
            }
            let pair = if nu < nv { (nu, nv) } else { (nv, nu) };
            if !disequalities.contains(&pair) {
                disequalities.push(pair);
            }
        }

        // Every variable must occur in at least one atom or disequality.
        let mut occurs = vec![false; new_names.len()];
        for l in &literals {
            for v in &l.atom().vars {
                occurs[v.index()] = true;
            }
        }
        for (u, v) in &disequalities {
            occurs[u.index()] = true;
            occurs[v.index()] = true;
        }
        if let Some(i) = occurs.iter().position(|o| !o) {
            return Err(QueryError::UnconstrainedVariable(new_names[i].clone()));
        }

        Ok(Query {
            variable_names: new_names,
            free_vars: free,
            literals,
            disequalities,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QueryClass;

    #[test]
    fn equality_elimination_merges_variables() {
        // ϕ(x) = ∃y,z E(x,y) ∧ E(z, x) ∧ y = z  →  merged into a single variable
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.free(&[x]);
        b.atom("E", &[x, y]);
        b.atom("E", &[z, x]);
        b.equality(y, z);
        let q = b.build().unwrap();
        assert_eq!(q.num_vars(), 2);
        assert_eq!(q.class(), QueryClass::CQ);
        // both atoms now use the merged variable
        let atoms: Vec<_> = q.positive_atoms().collect();
        assert_eq!(atoms[0].vars[1], atoms[1].vars[0]);
    }

    #[test]
    fn chained_equalities() {
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        let w = b.var("w");
        b.free(&[x]);
        b.atom("E", &[x, y]);
        b.atom("E", &[z, w]);
        b.equality(y, z);
        b.equality(z, w);
        let q = b.build().unwrap();
        assert_eq!(q.num_vars(), 2);
    }

    #[test]
    fn free_variable_merging_is_rejected() {
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.free(&[x, y]);
        b.atom("E", &[x, y]);
        b.equality(x, y);
        assert!(matches!(
            b.build().unwrap_err(),
            QueryError::DuplicateFreeVariable(_)
        ));
    }

    #[test]
    fn unconstrained_variable_rejected() {
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let _y = b.var("y");
        b.free(&[x]);
        b.atom("E", &[x, x]);
        assert!(matches!(
            b.build().unwrap_err(),
            QueryError::UnconstrainedVariable(_)
        ));
    }

    #[test]
    fn variable_constrained_only_by_disequality_is_allowed() {
        // H(ϕ) has no hyperedge for disequalities, but the variable still
        // occurs in an "atom" in the paper's sense.
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.free(&[x, y]);
        b.atom("V", &[x]);
        b.disequality(x, y);
        assert!(b.build().is_ok());
    }

    #[test]
    fn inconsistent_arity_rejected() {
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.free(&[x]);
        b.atom("E", &[x, y]);
        b.atom("E", &[x, y, y]);
        assert!(matches!(
            b.build().unwrap_err(),
            QueryError::InconsistentArity { .. }
        ));
    }

    #[test]
    fn reflexive_disequality_rejected() {
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        b.free(&[x]);
        b.atom("V", &[x]);
        b.disequality(x, x);
        assert!(matches!(
            b.build().unwrap_err(),
            QueryError::ReflexiveComparison(_)
        ));
    }

    #[test]
    fn disequality_made_reflexive_by_equality_rejected() {
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.free(&[x]);
        b.atom("E", &[x, y]);
        b.equality(x, y);
        b.disequality(x, y);
        assert!(matches!(
            b.build().unwrap_err(),
            QueryError::ReflexiveComparison(_)
        ));
    }

    #[test]
    fn duplicate_disequalities_are_collapsed() {
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.free(&[x, y]);
        b.atom("E", &[x, y]);
        b.disequality(x, y);
        b.disequality(y, x);
        let q = b.build().unwrap();
        assert_eq!(q.disequalities().len(), 1);
    }

    #[test]
    fn fresh_variables_have_unique_names() {
        let mut b = QueryBuilder::new();
        let v1 = b.fresh_var();
        let v2 = b.fresh_var();
        assert_ne!(v1, v2);
        b.free(&[v1]);
        b.atom("E", &[v1, v2]);
        let q = b.build().unwrap();
        assert_eq!(q.num_vars(), 2);
    }

    #[test]
    fn renumbering_is_reproducible_across_builds() {
        // Regression for the cqc-audit `hash-iter` conversion: dense
        // renumbering walks a sorted map, so two independent builds of the
        // same query agree exactly — whatever the process hash state.
        let build = || {
            let mut b = QueryBuilder::new();
            let vars: Vec<Var> = (0..32).map(|i| b.var(&format!("v{i}"))).collect();
            for w in vars.windows(2) {
                b.atom("E", &[w[0], w[1]]);
            }
            for i in (0..30).step_by(3) {
                b.equality(vars[i], vars[i + 1]);
            }
            b.free(&[vars[0]]);
            b.build().unwrap()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn var_lookup_is_idempotent() {
        let mut b = QueryBuilder::new();
        let x1 = b.var("x");
        let x2 = b.var("x");
        assert_eq!(x1, x2);
    }
}
