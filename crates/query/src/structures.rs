//! The associated structures `A(ϕ)` (Definition 18) and `B(ϕ, D)`
//! (Definition 20).
//!
//! These recast query answering as homomorphism finding: by Equation (2) of
//! the paper,
//!
//! ```text
//! Sol(ϕ, D) = { h ∈ Hom(A(ϕ) → B(ϕ, D)) : h satisfies all disequalities }
//! Ans(ϕ, D) = projections of Sol(ϕ, D) onto free(ϕ)
//! ```

use crate::ast::{Literal, Query};
use cqc_data::{Signature, Structure, Val};

/// The relation-symbol name used for the negated copy `R̄` of a relation `R`
/// in `sig(A(ϕ))` (Definition 18).
pub fn negated_symbol_name(relation: &str) -> String {
    format!("~{relation}")
}

/// Both associated structures of a query/database pair, sharing a signature.
#[derive(Debug, Clone)]
pub struct QueryStructures {
    /// The query structure `A(ϕ)` (universe = variables of `ϕ`).
    pub a: Structure,
    /// The database structure `B(ϕ, D)` (universe = `U(D)`, negated
    /// relations materialised as complements).
    pub b: Structure,
}

/// Build the shared signature `sig(A(ϕ))`: a symbol `R` for every relation
/// appearing in a positive atom and a symbol `~R` for every relation
/// appearing in a negated atom.
fn a_signature(q: &Query) -> Signature {
    let mut sig = Signature::new();
    for lit in q.literals() {
        let atom = lit.atom();
        let name = match lit {
            Literal::Positive(_) => atom.relation.clone(),
            Literal::Negated(_) => negated_symbol_name(&atom.relation),
        };
        sig.declare(&name, atom.arity())
            .expect("query builder enforces consistent arities");
    }
    sig
}

/// Build `A(ϕ)` (Definition 18): the universe is `vars(ϕ)`, `R^{A(ϕ)}`
/// contains the argument tuples of the positive `R`-atoms and `~R^{A(ϕ)}`
/// those of the negated `R`-atoms.
pub fn build_a_structure(q: &Query) -> Structure {
    let sig = a_signature(q);
    let mut a = Structure::empty(sig, q.num_vars());
    a.set_element_names(q.variable_names().to_vec());
    for lit in q.literals() {
        let atom = lit.atom();
        let name = match lit {
            Literal::Positive(_) => atom.relation.clone(),
            Literal::Negated(_) => negated_symbol_name(&atom.relation),
        };
        let sym = a.signature().symbol(&name).expect("declared above");
        let tuple: Vec<Val> = atom.vars.iter().map(|v| Val(v.0)).collect();
        a.insert_fact(sym, &tuple).expect("arities match");
    }
    a
}

/// Build `B(ϕ, D)` (Definition 20) over the signature of `A(ϕ)`:
/// positive symbols copy the database relation, negated symbols are
/// materialised as complements `U(D)^{ar(R)} ∖ R^D`.
///
/// Returns an error if `sig(ϕ) ⊄ sig(D)` (a relation of the query is missing
/// from the database or has the wrong arity).
///
/// The size of the result is bounded as in Observation 21:
/// `‖B(ϕ,D)‖ ≤ ‖D‖ + ν + ν·a·|U(D)|^a` for `ν` negated predicates of arity
/// ≤ `a`, i.e. complement materialisation is the dominating cost.
pub fn build_b_structure(q: &Query, db: &Structure) -> Result<Structure, String> {
    if !q.compatible_with(db.signature()) {
        return Err(format!(
            "query relations {:?} are not contained in the database signature",
            q.signature()
                .iter()
                .map(|(_, n, a)| format!("{n}/{a}"))
                .collect::<Vec<_>>()
        ));
    }
    let sig = a_signature(q);
    let n = db.universe_size();
    let mut b = Structure::empty(sig.clone(), n);
    for (sym, name, _arity) in sig.iter() {
        if let Some(base) = name.strip_prefix('~') {
            // negated copy: complement of the database relation
            let dbsym = db
                .signature()
                .symbol(base)
                .ok_or_else(|| format!("relation `{base}` missing from database"))?;
            let complement = db.relation(dbsym).complement(n);
            for t in complement.iter() {
                b.insert_fact(sym, t.values()).expect("in range");
            }
        } else {
            let dbsym = db
                .signature()
                .symbol(name)
                .ok_or_else(|| format!("relation `{name}` missing from database"))?;
            for t in db.relation(dbsym).iter() {
                b.insert_fact(sym, t.values()).expect("in range");
            }
        }
    }
    Ok(b)
}

/// Build both structures at once.
pub fn query_structures(q: &Query, db: &Structure) -> Result<QueryStructures, String> {
    Ok(QueryStructures {
        a: build_a_structure(q),
        b: build_b_structure(q, db)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use cqc_data::StructureBuilder;

    fn triangle_db() -> Structure {
        // directed triangle 0→1→2→0 plus a self-loop-free F relation
        let mut b = StructureBuilder::new(3);
        b.relation("E", 2);
        b.relation("F", 2);
        b.fact("E", &[0, 1]).unwrap();
        b.fact("E", &[1, 2]).unwrap();
        b.fact("E", &[2, 0]).unwrap();
        b.fact("F", &[0, 1]).unwrap();
        b.build()
    }

    #[test]
    fn a_structure_of_friends_query() {
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let a = build_a_structure(&q);
        assert_eq!(a.universe_size(), 3);
        let f = a.signature().symbol("F").unwrap();
        assert_eq!(a.relation(f).len(), 2);
        // Observation 19: ‖A(ϕ)‖ ≤ 3‖ϕ‖
        assert!(a.size() <= 3 * q.size());
    }

    #[test]
    fn a_structure_with_negation_has_negated_symbol() {
        let q = parse_query("ans(x, y) :- E(x, y), !F(x, y)").unwrap();
        let a = build_a_structure(&q);
        assert!(a.signature().symbol("E").is_some());
        assert!(a.signature().symbol("~F").is_some());
        assert!(a.signature().symbol("F").is_none());
        let nf = a.signature().symbol("~F").unwrap();
        assert_eq!(a.relation(nf).len(), 1);
    }

    #[test]
    fn b_structure_copies_positive_relations() {
        let q = parse_query("ans(x) :- E(x, y)").unwrap();
        let db = triangle_db();
        let b = build_b_structure(&q, &db).unwrap();
        let e = b.signature().symbol("E").unwrap();
        assert_eq!(b.relation(e).len(), 3);
        assert_eq!(b.universe_size(), 3);
        // F is not used by the query, so it is absent from B(ϕ, D)
        assert!(b.signature().symbol("F").is_none());
    }

    #[test]
    fn b_structure_complements_negated_relations() {
        let q = parse_query("ans(x, y) :- E(x, y), !F(x, y)").unwrap();
        let db = triangle_db();
        let b = build_b_structure(&q, &db).unwrap();
        let nf = b.signature().symbol("~F").unwrap();
        // |U|^2 - |F| = 9 - 1 = 8
        assert_eq!(b.relation(nf).len(), 8);
        assert!(!b.holds(nf, &[Val(0), Val(1)]));
        assert!(b.holds(nf, &[Val(1), Val(0)]));
        // Observation 21-style size bound
        let nu = q.num_negated();
        let a_max = q.max_arity();
        assert!(b.size() <= 2 * q.size() * (db.size() + nu * db.universe_size().pow(a_max as u32)));
    }

    #[test]
    fn relation_used_both_positively_and_negatively() {
        let q = parse_query("ans(x, y) :- E(x, y), !E(y, x)").unwrap();
        let db = triangle_db();
        let a = build_a_structure(&q);
        assert!(a.signature().symbol("E").is_some());
        assert!(a.signature().symbol("~E").is_some());
        let b = build_b_structure(&q, &db).unwrap();
        let e = b.signature().symbol("E").unwrap();
        let ne = b.signature().symbol("~E").unwrap();
        assert_eq!(b.relation(e).len() + b.relation(ne).len(), 9);
    }

    #[test]
    fn shared_signature_allows_homomorphism_semantics() {
        let q = parse_query("ans(x) :- E(x, y)").unwrap();
        let db = triangle_db();
        let s = query_structures(&q, &db).unwrap();
        assert!(s.a.signature_contained_in(&s.b));
        assert_eq!(s.a.signature(), s.b.signature());
    }

    #[test]
    fn incompatible_database_is_rejected() {
        let q = parse_query("ans(x) :- Missing(x, y)").unwrap();
        let db = triangle_db();
        assert!(build_b_structure(&q, &db).is_err());
        // wrong arity
        let q = parse_query("ans(x) :- E(x, y, z)").unwrap();
        assert!(build_b_structure(&q, &db).is_err());
    }

    #[test]
    fn unary_negated_relation() {
        let mut builder = StructureBuilder::new(4);
        builder.relation("V", 1);
        builder.relation("E", 2);
        builder.fact("V", &[0]).unwrap();
        builder.fact("E", &[0, 1]).unwrap();
        let db = builder.build();
        let q = parse_query("ans(x) :- E(x, y), !V(y)").unwrap();
        let b = build_b_structure(&q, &db).unwrap();
        let nv = b.signature().symbol("~V").unwrap();
        assert_eq!(b.relation(nv).len(), 3);
    }
}
