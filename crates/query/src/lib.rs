//! # cqc-query — conjunctive queries with disequalities and negations
//!
//! Implements the query language of the paper *Approximately Counting Answers
//! to Conjunctive Queries with Disequalities and Negations* (PODS 2022):
//!
//! * [`Query`] — extended conjunctive queries (ECQs, Section 1.1): positive
//!   atoms, negated atoms, disequalities; equalities are eliminated at build
//!   time by merging variables, exactly as the paper assumes.
//! * [`QueryClass`] — the CQ / DCQ / ECQ classification used by the
//!   dichotomies of Figure 1.
//! * [`parse_query`] — a small textual syntax
//!   (`ans(x, y) :- E(x, z), E(z, y), x != y, !F(x, y)`).
//! * [`query_hypergraph`] — the hypergraph `H(ϕ)` of Definition 3
//!   (no hyperedges for disequalities).
//! * [`build_a_structure`] / [`build_b_structure`] — the associated
//!   structures `A(ϕ)` (Definition 18) and `B(ϕ, D)` (Definition 20) that
//!   recast answers as homomorphisms (Equation (2)).
//! * [`build_a_hat`] / [`build_b_hat`] — the coloured structures `Â(ϕ)`
//!   (Definition 26) and `B̂(ϕ, D, V₁..V_ℓ, f)` (Definition 28) used by the
//!   colour-coding oracle simulation of Lemma 22 / Lemma 30.
//! * [`answers`] — brute-force solutions, answers, and partial solutions
//!   `Sol(ϕ, D, B)` (Definitions 1, 2, 44–47) used as ground truth in tests
//!   and as the baseline of the experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answers;
pub mod ast;
pub mod builder;
pub mod colored;
pub mod hypergraph;
pub mod parser;
pub mod structures;

pub use answers::{
    count_answers_bruteforce, count_answers_via_solutions, enumerate_answers, enumerate_solutions,
    is_answer, is_solution, partial_solutions, Assignment,
};
pub use ast::{Atom, Literal, Query, QueryClass, QueryError, Var};
pub use builder::QueryBuilder;
pub use colored::{build_a_hat, build_b_hat, ColouringFamily, PartiteSets};
pub use hypergraph::query_hypergraph;
pub use parser::parse_query;
pub use structures::{build_a_structure, build_b_structure, negated_symbol_name, QueryStructures};
