//! The hypergraph `H(ϕ)` of a query (Definition 3).

use crate::ast::Query;
use cqc_hypergraph::Hypergraph;

/// Build the hypergraph `H(ϕ)` of an ECQ (Definition 3): one vertex per
/// variable and one hyperedge per positive or negated predicate.
///
/// Crucially, **no hyperedges are added for disequalities** — this is what
/// makes the positive results of the paper (Theorems 5 and 13) stronger, and
/// it is also why variables occurring only in disequalities appear as
/// isolated vertices here.
pub fn query_hypergraph(q: &Query) -> Hypergraph {
    let mut h = Hypergraph::new(q.num_vars());
    for lit in q.literals() {
        let vars: Vec<usize> = lit.atom().vars.iter().map(|v| v.index()).collect();
        h.add_edge(&vars);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use cqc_hypergraph::treewidth::treewidth_exact;

    #[test]
    fn friends_query_hypergraph() {
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let h = query_hypergraph(&q);
        assert_eq!(h.num_vertices(), 3);
        // two hyperedges {x,y}, {x,z}; the disequality contributes nothing
        assert_eq!(h.num_edges(), 2);
        let (tw, _) = treewidth_exact(&h);
        assert_eq!(tw, 1);
    }

    #[test]
    fn hamilton_path_query_has_treewidth_one() {
        // Observation 10: H(ϕ) is the path x1, ..., xn despite the n(n-1)/2
        // disequalities.
        let q = parse_query(
            "ans(x1, x2, x3, x4) :- E(x1, x2), E(x2, x3), E(x3, x4), \
             x1 != x2, x1 != x3, x1 != x4, x2 != x3, x2 != x4, x3 != x4",
        )
        .unwrap();
        let h = query_hypergraph(&q);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(h.arity(), 2);
        let (tw, _) = treewidth_exact(&h);
        assert_eq!(tw, 1);
    }

    #[test]
    fn negated_atoms_contribute_hyperedges() {
        let q = parse_query("ans(x, y) :- E(x, y), !F(y, z)").unwrap();
        let h = query_hypergraph(&q);
        assert_eq!(h.num_edges(), 2);
    }

    #[test]
    fn duplicate_atom_scopes_collapse() {
        let q = parse_query("ans(x) :- E(x, y), F(x, y)").unwrap();
        let h = query_hypergraph(&q);
        // both atoms have scope {x,y}; the hypergraph has a single edge
        assert_eq!(h.num_edges(), 1);
    }

    #[test]
    fn higher_arity_atoms() {
        let q = parse_query("ans(x) :- R(x, y, z), S(z, w)").unwrap();
        let h = query_hypergraph(&q);
        assert_eq!(h.arity(), 3);
        assert_eq!(h.num_vertices(), 4);
    }

    #[test]
    fn variable_only_in_disequality_is_isolated() {
        let q = parse_query("ans(x, y) :- V(x), x != y").unwrap();
        let h = query_hypergraph(&q);
        let yi = q.variable("y").unwrap().index();
        assert!(h.is_isolated(yi));
    }
}
