//! Query abstract syntax: extended conjunctive queries (ECQs).

use cqc_data::Signature;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A query variable, identified by a dense index into
/// [`Query::variable_names`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Var(pub u32);

impl Var {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A relational atom `R(y₁, …, y_j)` appearing (positively or negated) in a
/// query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Atom {
    /// The relation symbol name (resolved against the database signature by
    /// name).
    pub relation: String,
    /// The argument variables, in order. The arity is `vars.len()`.
    pub vars: Vec<Var>,
}

impl Atom {
    /// Create an atom.
    pub fn new(relation: &str, vars: &[Var]) -> Self {
        Atom {
            relation: relation.to_string(),
            vars: vars.to_vec(),
        }
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.vars.len()
    }
}

/// A literal of an ECQ: a positive or negated relational atom.
/// (Equalities are rewritten away at build time; disequalities are stored
/// separately because the hypergraph `H(ϕ)` of Definition 3 must not contain
/// hyperedges for them.)
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Literal {
    /// A predicate `R(ȳ)`.
    Positive(Atom),
    /// A negated predicate `¬R(ȳ)`.
    Negated(Atom),
}

impl Literal {
    /// The underlying atom.
    pub fn atom(&self) -> &Atom {
        match self {
            Literal::Positive(a) | Literal::Negated(a) => a,
        }
    }

    /// Whether the literal is negated.
    pub fn is_negated(&self) -> bool {
        matches!(self, Literal::Negated(_))
    }
}

/// The syntactic class of a query, matching the problem names of the paper
/// (#CQ, #DCQ, #ECQ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QueryClass {
    /// A conjunctive query: no disequalities, no negated atoms.
    CQ,
    /// A conjunctive query with disequalities but no negated atoms.
    DCQ,
    /// A conjunctive query with disequalities and/or negated atoms.
    ECQ,
}

/// Errors produced while building queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// A variable does not occur in any atom (the paper requires every
    /// variable of `vars(ϕ)` to occur in at least one atom).
    UnconstrainedVariable(String),
    /// The same relation name was used with two different arities.
    InconsistentArity {
        /// Relation name.
        relation: String,
        /// First arity seen.
        first: usize,
        /// Conflicting arity.
        second: usize,
    },
    /// A free variable was listed twice in the head.
    DuplicateFreeVariable(String),
    /// Parse error with a human-readable message.
    Parse(String),
    /// A disequality or equality relates a variable with itself
    /// (`x ≠ x` is unsatisfiable; `x = x` is trivial but we reject it to
    /// surface likely mistakes).
    ReflexiveComparison(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnconstrainedVariable(v) => {
                write!(f, "variable `{v}` does not occur in any atom")
            }
            QueryError::InconsistentArity {
                relation,
                first,
                second,
            } => write!(
                f,
                "relation `{relation}` used with arities {first} and {second}"
            ),
            QueryError::DuplicateFreeVariable(v) => {
                write!(f, "free variable `{v}` listed twice")
            }
            QueryError::Parse(msg) => write!(f, "parse error: {msg}"),
            QueryError::ReflexiveComparison(v) => {
                write!(f, "comparison of variable `{v}` with itself")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// An extended conjunctive query (ECQ) with free (output) and existential
/// variables (Section 1.1 of the paper).
///
/// Invariants (enforced by [`crate::QueryBuilder`]):
/// * there are no equalities (they have been rewritten away),
/// * every variable occurs in at least one atom or disequality,
/// * free variables are pairwise distinct,
/// * every relation name is used with a single arity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    pub(crate) variable_names: Vec<String>,
    pub(crate) free_vars: Vec<Var>,
    pub(crate) literals: Vec<Literal>,
    pub(crate) disequalities: Vec<(Var, Var)>,
}

impl Query {
    /// Number of variables `|vars(ϕ)|`.
    pub fn num_vars(&self) -> usize {
        self.variable_names.len()
    }

    /// All variables of the query.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.variable_names.len() as u32).map(Var)
    }

    /// The free (output) variables, in head order.
    pub fn free_vars(&self) -> &[Var] {
        &self.free_vars
    }

    /// The number of free variables `ℓ = |free(ϕ)|`.
    pub fn num_free_vars(&self) -> usize {
        self.free_vars.len()
    }

    /// The existential (quantified) variables, in index order.
    pub fn existential_vars(&self) -> Vec<Var> {
        let free: BTreeSet<Var> = self.free_vars.iter().copied().collect();
        self.vars().filter(|v| !free.contains(v)).collect()
    }

    /// Whether `v` is free.
    pub fn is_free(&self, v: Var) -> bool {
        self.free_vars.contains(&v)
    }

    /// The positive and negated atoms (no disequalities).
    pub fn literals(&self) -> &[Literal] {
        &self.literals
    }

    /// The positive atoms only.
    pub fn positive_atoms(&self) -> impl Iterator<Item = &Atom> + '_ {
        self.literals.iter().filter_map(|l| match l {
            Literal::Positive(a) => Some(a),
            Literal::Negated(_) => None,
        })
    }

    /// The negated atoms only.
    pub fn negated_atoms(&self) -> impl Iterator<Item = &Atom> + '_ {
        self.literals.iter().filter_map(|l| match l {
            Literal::Negated(a) => Some(a),
            Literal::Positive(_) => None,
        })
    }

    /// The number of negated atoms `ν` (Observation 19 / Lemma 22).
    pub fn num_negated(&self) -> usize {
        self.negated_atoms().count()
    }

    /// The set of disequalities `Δ(ϕ)` as ordered pairs `(min, max)`.
    pub fn disequalities(&self) -> &[(Var, Var)] {
        &self.disequalities
    }

    /// The display name of a variable.
    pub fn variable_name(&self, v: Var) -> &str {
        &self.variable_names[v.index()]
    }

    /// All variable names.
    pub fn variable_names(&self) -> &[String] {
        &self.variable_names
    }

    /// Find a variable by name.
    pub fn variable(&self, name: &str) -> Option<Var> {
        self.variable_names
            .iter()
            .position(|n| n == name)
            .map(|i| Var(i as u32))
    }

    /// The query size `‖ϕ‖`: `|vars(ϕ)|` plus the sum of the arities of all
    /// atoms, counting disequalities as arity-2 atoms (Section 1.1).
    pub fn size(&self) -> usize {
        self.num_vars()
            + self
                .literals
                .iter()
                .map(|l| l.atom().arity())
                .sum::<usize>()
            + 2 * self.disequalities.len()
    }

    /// The maximum arity `ar(sig(ϕ))` over the relational atoms
    /// (0 when there are none).
    pub fn max_arity(&self) -> usize {
        self.literals
            .iter()
            .map(|l| l.atom().arity())
            .max()
            .unwrap_or(0)
    }

    /// The syntactic class of the query (CQ / DCQ / ECQ).
    pub fn class(&self) -> QueryClass {
        let has_neg = self.literals.iter().any(Literal::is_negated);
        let has_diseq = !self.disequalities.is_empty();
        if has_neg {
            QueryClass::ECQ
        } else if has_diseq {
            QueryClass::DCQ
        } else {
            QueryClass::CQ
        }
    }

    /// The signature `sig(ϕ)` of the query: every relation name used in a
    /// positive or negated atom, with its arity.
    pub fn signature(&self) -> Signature {
        let mut sig = Signature::new();
        for l in &self.literals {
            let a = l.atom();
            sig.declare(&a.relation, a.arity())
                .expect("builder enforces consistent arities");
        }
        sig
    }

    /// Check that the query's relations all appear in the database signature
    /// `sig_d` with matching arities (i.e. `sig(ϕ) ⊆ sig(D)`).
    pub fn compatible_with(&self, sig_d: &Signature) -> bool {
        self.literals.iter().all(|l| {
            let a = l.atom();
            sig_d
                .symbol(&a.relation)
                .map(|id| sig_d.arity(id) == a.arity())
                .unwrap_or(false)
        })
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ans(")?;
        for (i, v) in self.free_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.variable_name(*v))?;
        }
        write!(f, ") :- ")?;
        let mut first = true;
        for l in &self.literals {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            let a = l.atom();
            if l.is_negated() {
                write!(f, "!")?;
            }
            write!(f, "{}(", a.relation)?;
            for (i, v) in a.vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", self.variable_name(*v))?;
            }
            write!(f, ")")?;
        }
        for (u, v) in &self.disequalities {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(
                f,
                "{} != {}",
                self.variable_name(*u),
                self.variable_name(*v)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryBuilder;

    fn friends_query() -> Query {
        // ϕ(x) = ∃y ∃z F(x,y) ∧ F(x,z) ∧ y ≠ z   (paper, equation (1))
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.free(&[x]);
        b.atom("F", &[x, y]);
        b.atom("F", &[x, z]);
        b.disequality(y, z);
        b.build().unwrap()
    }

    #[test]
    fn friends_query_shape() {
        let q = friends_query();
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.num_free_vars(), 1);
        assert_eq!(q.existential_vars().len(), 2);
        assert_eq!(q.class(), QueryClass::DCQ);
        assert_eq!(q.num_negated(), 0);
        // ‖ϕ‖ = 3 vars + 2 + 2 (atoms) + 2 (disequality) = 9
        assert_eq!(q.size(), 9);
        assert_eq!(q.max_arity(), 2);
        assert!(q.is_free(Var(0)));
        assert!(!q.is_free(Var(1)));
    }

    #[test]
    fn class_detection() {
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.free(&[x, y]);
        b.atom("E", &[x, y]);
        let q = b.build().unwrap();
        assert_eq!(q.class(), QueryClass::CQ);

        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.free(&[x, y]);
        b.atom("E", &[x, y]);
        b.negated_atom("F", &[x, y]);
        let q = b.build().unwrap();
        assert_eq!(q.class(), QueryClass::ECQ);
        assert_eq!(q.num_negated(), 1);
    }

    #[test]
    fn signature_and_compatibility() {
        let q = friends_query();
        let sig = q.signature();
        assert_eq!(sig.len(), 1);
        let f = sig.symbol("F").unwrap();
        assert_eq!(sig.arity(f), 2);

        let mut dbsig = Signature::new();
        dbsig.declare("F", 2).unwrap();
        dbsig.declare("G", 3).unwrap();
        assert!(q.compatible_with(&dbsig));
        let mut badsig = Signature::new();
        badsig.declare("F", 3).unwrap();
        assert!(!q.compatible_with(&badsig));
        assert!(!q.compatible_with(&Signature::new()));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let q = friends_query();
        let s = format!("{q}");
        assert!(s.contains("F(x, y)"));
        assert!(s.contains("y != z"));
        let reparsed = crate::parse_query(&s).unwrap();
        assert_eq!(reparsed.num_vars(), 3);
        assert_eq!(reparsed.disequalities().len(), 1);
    }

    #[test]
    fn variable_lookup() {
        let q = friends_query();
        assert_eq!(q.variable("x"), Some(Var(0)));
        assert_eq!(q.variable("nope"), None);
        assert_eq!(q.variable_name(Var(2)), "z");
        assert_eq!(q.variable_names().len(), 3);
        assert_eq!(q.vars().count(), 3);
    }

    #[test]
    fn atoms_iterators() {
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        b.free(&[x]);
        b.atom("E", &[x, y]);
        b.negated_atom("F", &[y, x]);
        let q = b.build().unwrap();
        assert_eq!(q.positive_atoms().count(), 1);
        assert_eq!(q.negated_atoms().count(), 1);
        assert_eq!(q.literals().len(), 2);
        assert!(q.literals()[1].is_negated());
        assert_eq!(q.literals()[1].atom().relation, "F");
    }
}
