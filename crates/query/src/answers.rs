//! Brute-force semantics: solutions (Definition 1), answers (Definition 2)
//! and partial solutions `Sol(ϕ, D, B)` (Definition 47).
//!
//! Everything in this module is *exact* and exponential in the query size;
//! it serves as the ground truth for tests and as the brute-force baseline
//! (`‖D‖^{O(‖ϕ‖)}`, Section 1.1) in the experiments.

use crate::ast::{Literal, Query, Var};
use cqc_data::{Structure, Val};
use std::collections::BTreeSet;

/// A (partial) assignment of database values to query variables, indexed by
/// variable index; `None` means unassigned.
pub type Assignment = Vec<Option<Val>>;

/// Check whether a *full* assignment (one value per variable, in variable
/// index order) is a solution of `(ϕ, D)` (Definition 1).
pub fn is_solution(q: &Query, db: &Structure, assignment: &[Val]) -> bool {
    assert_eq!(assignment.len(), q.num_vars());
    for lit in q.literals() {
        let atom = lit.atom();
        let sym = match db.signature().symbol(&atom.relation) {
            Some(s) => s,
            None => return false,
        };
        let image: Vec<Val> = atom.vars.iter().map(|v| assignment[v.index()]).collect();
        let holds = db.holds(sym, &image);
        match lit {
            Literal::Positive(_) if !holds => return false,
            Literal::Negated(_) if holds => return false,
            _ => {}
        }
    }
    for &(u, v) in q.disequalities() {
        if assignment[u.index()] == assignment[v.index()] {
            return false;
        }
    }
    true
}

/// Enumerate all solutions of `(ϕ, D)` (full assignments, Definition 1) by
/// backtracking with constraint propagation on fully-assigned literals.
pub fn enumerate_solutions(q: &Query, db: &Structure) -> Vec<Vec<Val>> {
    let mut out = Vec::new();
    let mut assignment: Assignment = vec![None; q.num_vars()];
    let order: Vec<Var> = q.vars().collect();
    backtrack_all(q, db, &order, 0, &mut assignment, &mut |a| {
        out.push(a.iter().map(|v| v.expect("full")).collect());
        true
    });
    out
}

/// Enumerate the set of answers `Ans(ϕ, D)` (Definition 2): the projections
/// of solutions onto the free variables, in head order.
pub fn enumerate_answers(q: &Query, db: &Structure) -> BTreeSet<Vec<Val>> {
    let mut out = BTreeSet::new();
    let mut assignment: Assignment = vec![None; q.num_vars()];
    let order: Vec<Var> = q.vars().collect();
    backtrack_all(q, db, &order, 0, &mut assignment, &mut |a| {
        let tau: Vec<Val> = q
            .free_vars()
            .iter()
            .map(|v| a[v.index()].expect("full"))
            .collect();
        out.insert(tau);
        true
    });
    out
}

/// Check whether `tau` (values for the free variables, in head order) is an
/// answer of `(ϕ, D)`, i.e. extends to a solution (Definition 2). Uses
/// backtracking over the existential variables.
pub fn is_answer(q: &Query, db: &Structure, tau: &[Val]) -> bool {
    assert_eq!(tau.len(), q.num_free_vars());
    let mut assignment: Assignment = vec![None; q.num_vars()];
    for (v, &val) in q.free_vars().iter().zip(tau) {
        assignment[v.index()] = Some(val);
    }
    // quick reject: constraints already violated by tau alone
    if violates_partial(q, db, &assignment) {
        return false;
    }
    let order: Vec<Var> = q.existential_vars();
    let mut found = false;
    backtrack_all(q, db, &order, 0, &mut assignment, &mut |_| {
        found = true;
        false // stop at the first witness
    });
    found
}

/// The paper's brute-force algorithm (Section 1.1): iterate over all
/// `|U(D)|^ℓ` assignments of the free variables and test extendability.
/// Exact but exponential in the number of free variables.
pub fn count_answers_bruteforce(q: &Query, db: &Structure) -> u64 {
    let ell = q.num_free_vars();
    let n = db.universe_size();
    if ell == 0 {
        return if is_answer(q, db, &[]) { 1 } else { 0 };
    }
    let mut tau = vec![Val(0); ell];
    let mut count = 0u64;
    loop {
        if is_answer(q, db, &tau) {
            count += 1;
        }
        // advance odometer
        let mut i = 0;
        loop {
            if i == ell {
                return count;
            }
            tau[i] = Val(tau[i].0 + 1);
            if (tau[i].0 as usize) < n {
                break;
            }
            tau[i] = Val(0);
            i += 1;
        }
    }
}

/// Exact answer count computed by enumerating solutions and projecting
/// (faster than [`count_answers_bruteforce`] when solutions are sparse).
pub fn count_answers_via_solutions(q: &Query, db: &Structure) -> u64 {
    enumerate_answers(q, db).len() as u64
}

/// Partial solutions `Sol(ϕ, D, B)` (Definition 47): assignments `α : B →
/// U(D)` such that **for every atom individually** there is an extension of
/// `α` to all variables placing the atom's image in the corresponding
/// relation. Used by the Theorem 16 pipeline (per-bag solution sets of the
/// tree decomposition); defined for CQs (positive atoms only) — negated atoms
/// and disequalities of the query are ignored here, matching the paper's use.
pub fn partial_solutions(q: &Query, db: &Structure, bag: &[Var]) -> BTreeSet<Vec<Val>> {
    let mut out = BTreeSet::new();
    let k = bag.len();
    if k == 0 {
        // the empty assignment is a partial solution iff every atom has at
        // least one matching tuple
        let ok = q.positive_atoms().all(|atom| {
            db.signature()
                .symbol(&atom.relation)
                .map(|sym| !db.relation(sym).is_empty())
                .unwrap_or(false)
        });
        if ok {
            out.insert(vec![]);
        }
        return out;
    }
    let n = db.universe_size();
    let mut values = vec![Val(0); k];
    'outer: loop {
        if bag_assignment_locally_consistent(q, db, bag, &values) {
            out.insert(values.clone());
        }
        let mut i = 0;
        loop {
            if i == k {
                break 'outer;
            }
            values[i] = Val(values[i].0 + 1);
            if (values[i].0 as usize) < n {
                break;
            }
            values[i] = Val(0);
            i += 1;
        }
    }
    out
}

/// Is the assignment `bag ↦ values` consistent with every positive atom in
/// the per-atom (semijoin) sense of Definition 47?
pub fn bag_assignment_locally_consistent(
    q: &Query,
    db: &Structure,
    bag: &[Var],
    values: &[Val],
) -> bool {
    let lookup = |v: Var| -> Option<Val> { bag.iter().position(|&b| b == v).map(|i| values[i]) };
    for atom in q.positive_atoms() {
        let sym = match db.signature().symbol(&atom.relation) {
            Some(s) => s,
            None => return false,
        };
        let constrained: Vec<(usize, Val)> = atom
            .vars
            .iter()
            .enumerate()
            .filter_map(|(pos, v)| lookup(*v).map(|val| (pos, val)))
            .collect();
        let witness = db
            .relation(sym)
            .iter()
            .any(|t| constrained.iter().all(|&(pos, val)| t.get(pos) == val));
        if !witness {
            return false;
        }
    }
    true
}

/// Backtracking over `order[level..]`, invoking `on_solution` for every full
/// solution; `on_solution` returns `false` to stop the search early.
fn backtrack_all(
    q: &Query,
    db: &Structure,
    order: &[Var],
    level: usize,
    assignment: &mut Assignment,
    on_solution: &mut dyn FnMut(&Assignment) -> bool,
) -> bool {
    if level == order.len() {
        // all variables in `order` assigned; if `order` covers all variables,
        // the constraint checks below have already validated everything.
        return on_solution(assignment);
    }
    let var = order[level];
    let n = db.universe_size();
    for val in 0..n as u32 {
        assignment[var.index()] = Some(Val(val));
        if !violates_partial(q, db, assignment)
            && !backtrack_all(q, db, order, level + 1, assignment, on_solution)
        {
            assignment[var.index()] = None;
            return false;
        }
    }
    assignment[var.index()] = None;
    true
}

/// Does the partial assignment already violate a fully-assigned constraint?
fn violates_partial(q: &Query, db: &Structure, assignment: &Assignment) -> bool {
    for lit in q.literals() {
        let atom = lit.atom();
        let mut image = Vec::with_capacity(atom.vars.len());
        let mut complete = true;
        for v in &atom.vars {
            match assignment[v.index()] {
                Some(val) => image.push(val),
                None => {
                    complete = false;
                    break;
                }
            }
        }
        if !complete {
            continue;
        }
        let sym = match db.signature().symbol(&atom.relation) {
            Some(s) => s,
            None => return true,
        };
        let holds = db.holds(sym, &image);
        match lit {
            Literal::Positive(_) if !holds => return true,
            Literal::Negated(_) if holds => return true,
            _ => {}
        }
    }
    for &(u, v) in q.disequalities() {
        if let (Some(a), Some(b)) = (assignment[u.index()], assignment[v.index()]) {
            if a == b {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_query;
    use cqc_data::StructureBuilder;

    fn friends_db() -> Structure {
        // 0 is friends with 1, 2; 3 is friends with 0 only; 4 isolated
        let mut b = StructureBuilder::new(5);
        b.relation("F", 2);
        b.fact("F", &[0, 1]).unwrap();
        b.fact("F", &[0, 2]).unwrap();
        b.fact("F", &[3, 0]).unwrap();
        b.build()
    }

    fn path_graph(n: usize) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("E", 2);
        for i in 0..n - 1 {
            b.fact("E", &[i as u32, (i + 1) as u32]).unwrap();
        }
        b.build()
    }

    #[test]
    fn friends_query_answers() {
        // paper equation (1): people with at least two distinct friends
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let db = friends_db();
        let ans = enumerate_answers(&q, &db);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![Val(0)]));
        assert_eq!(count_answers_bruteforce(&q, &db), 1);
        assert_eq!(count_answers_via_solutions(&q, &db), 1);
    }

    #[test]
    fn without_disequality_more_answers() {
        let q = parse_query("ans(x) :- F(x, y), F(x, z)").unwrap();
        let db = friends_db();
        // now a single friend suffices (y = z allowed): answers {0, 3}
        assert_eq!(count_answers_bruteforce(&q, &db), 2);
    }

    #[test]
    fn solutions_vs_answers() {
        let q = parse_query("ans(x) :- F(x, y), F(x, z)").unwrap();
        let db = friends_db();
        let sols = enumerate_solutions(&q, &db);
        // solutions: (0,1,1), (0,1,2), (0,2,1), (0,2,2), (3,0,0) = 5
        assert_eq!(sols.len(), 5);
        assert!(sols.iter().all(|s| is_solution(&q, &db, s)));
        assert_eq!(enumerate_answers(&q, &db).len(), 2);
    }

    #[test]
    fn negation_semantics() {
        // pairs (x, y) with an F-edge x→y but no F-edge y→x
        let q = parse_query("ans(x, y) :- F(x, y), !F(y, x)").unwrap();
        let db = friends_db();
        let ans = enumerate_answers(&q, &db);
        assert_eq!(ans.len(), 3);
        assert!(ans.contains(&vec![Val(0), Val(1)]));
        assert!(ans.contains(&vec![Val(0), Val(2)]));
        assert!(ans.contains(&vec![Val(3), Val(0)]));
    }

    #[test]
    fn boolean_query() {
        let q = parse_query("ans() :- F(x, y), F(y, z)").unwrap();
        let db = friends_db();
        // 3 → 0 → 1 exists
        assert_eq!(count_answers_bruteforce(&q, &db), 1);
        assert!(is_answer(&q, &db, &[]));
        // a query that cannot be satisfied
        let q = parse_query("ans() :- F(x, x)").unwrap();
        assert_eq!(count_answers_bruteforce(&q, &db), 0);
    }

    #[test]
    fn hamiltonian_paths_on_path_graph() {
        // Observation 10 construction on an (undirected-as-directed) path of
        // 4 vertices: the directed path graph has exactly one Hamiltonian
        // path 0→1→2→3.
        let q = parse_query(
            "ans(x1, x2, x3, x4) :- E(x1, x2), E(x2, x3), E(x3, x4), \
             x1 != x2, x1 != x3, x1 != x4, x2 != x3, x2 != x4, x3 != x4",
        )
        .unwrap();
        let db = path_graph(4);
        assert_eq!(count_answers_via_solutions(&q, &db), 1);
    }

    #[test]
    fn footnote_4_star_query() {
        // ϕ(x1, x2) = ∃y E(y,x1) ∧ E(y,x2): pairs with a common in-neighbour
        let q = parse_query("ans(x1, x2) :- E(y, x1), E(y, x2)").unwrap();
        let db = path_graph(4);
        // each vertex y has out-neighbourhood {y+1}: only pairs (y+1, y+1)
        assert_eq!(count_answers_bruteforce(&q, &db), 3);
    }

    #[test]
    fn is_answer_matches_enumeration() {
        let q = parse_query("ans(x, y) :- F(x, y), F(x, z), y != z").unwrap();
        let db = friends_db();
        let ans = enumerate_answers(&q, &db);
        for a in 0..db.universe_size() as u32 {
            for b in 0..db.universe_size() as u32 {
                let tau = vec![Val(a), Val(b)];
                assert_eq!(is_answer(&q, &db, &tau), ans.contains(&tau));
            }
        }
    }

    #[test]
    fn partial_solutions_of_a_bag() {
        let q = parse_query("ans(x) :- E(x, y), E(y, z)").unwrap();
        let db = path_graph(4);
        let x = q.variable("x").unwrap();
        let y = q.variable("y").unwrap();
        // Sol(ϕ, D, {x, y}): pairs (a, b) with E(a,b) and b having an out-edge
        let sols = partial_solutions(&q, &db, &[x, y]);
        assert_eq!(sols.len(), 2); // (0,1), (1,2) — (2,3) fails because 3 has no out-edge
        assert!(sols.contains(&vec![Val(0), Val(1)]));
        assert!(sols.contains(&vec![Val(1), Val(2)]));
        // Sol(ϕ, D, ∅) is the singleton empty assignment (both atoms non-empty)
        let sols = partial_solutions(&q, &db, &[]);
        assert_eq!(sols.len(), 1);
    }

    #[test]
    fn partial_solutions_empty_when_some_relation_is_empty() {
        let q = parse_query("ans(x) :- E(x, y), Z(y)").unwrap();
        let mut b = StructureBuilder::new(3);
        b.relation("E", 2);
        b.relation("Z", 1);
        b.fact("E", &[0, 1]).unwrap();
        let db = b.build();
        let x = q.variable("x").unwrap();
        assert!(partial_solutions(&q, &db, &[x]).is_empty());
        assert!(partial_solutions(&q, &db, &[]).is_empty());
    }

    #[test]
    fn is_solution_rejects_violations() {
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let db = friends_db();
        assert!(is_solution(&q, &db, &[Val(0), Val(1), Val(2)]));
        assert!(!is_solution(&q, &db, &[Val(0), Val(1), Val(1)])); // disequality
        assert!(!is_solution(&q, &db, &[Val(1), Val(0), Val(2)])); // F(1,0) missing
    }

    #[test]
    fn larger_database_counts_agree() {
        // cross-check the two exact counters on a slightly larger instance
        let q = parse_query("ans(x, y) :- E(x, z), E(z, y)").unwrap();
        let mut b = StructureBuilder::new(6);
        b.relation("E", 2);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)] {
            b.fact("E", &[u, v]).unwrap();
        }
        let db = b.build();
        assert_eq!(
            count_answers_bruteforce(&q, &db),
            count_answers_via_solutions(&q, &db)
        );
    }
}
