//! The coloured structures `Â(ϕ)` (Definition 26) and
//! `B̂(ϕ, D, V₁..V_ℓ, f)` (Definition 28).
//!
//! These are the structures used by the colour-coding simulation of the
//! `EdgeFree` oracle (Lemma 22 / Lemma 30): for an ℓ-partite subset
//! `(V₁, …, V_ℓ)` of the answer hypergraph's vertex set and a family `f` of
//! colouring functions (one per disequality), the induced subhypergraph
//! `H(ϕ, D)[V₁..V_ℓ]` has a hyperedge **iff** there exists a colouring `f`
//! and a homomorphism `Â(ϕ) → B̂(ϕ, D, V₁..V_ℓ, f)`.

use crate::ast::{Literal, Query, Var};
use crate::structures::negated_symbol_name;
use cqc_data::{Signature, Structure, Val};
use std::collections::{BTreeSet, HashMap};

/// The variable enumeration `x₁, …, x_{ℓ+k}` used by Definitions 24–28: the
/// free variables first (in head order), then the existential variables (in
/// index order).
pub fn variable_enumeration(q: &Query) -> Vec<Var> {
    let mut order: Vec<Var> = q.free_vars().to_vec();
    order.extend(q.existential_vars());
    order
}

/// An ℓ-partite subset `(V₁, …, V_ℓ)` of `V(H(ϕ, D)) = ⋃ U_i(D)`
/// (Definition 24). `sets[i]` is the set of database values allowed for the
/// `i`-th free variable (0-based position in [`variable_enumeration`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartiteSets {
    /// One value set per free variable position.
    pub sets: Vec<BTreeSet<Val>>,
}

impl PartiteSets {
    /// The full ℓ-partite set `V_i = U(D)` for every free variable, i.e. no
    /// restriction.
    pub fn full(num_free: usize, universe_size: usize) -> Self {
        let all: BTreeSet<Val> = (0..universe_size as u32).map(Val).collect();
        PartiteSets {
            sets: vec![all; num_free],
        }
    }

    /// Number of free-variable classes `ℓ`.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether there are no classes (a Boolean query).
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }
}

/// A collection `f = {f_η}` of colouring functions, one per disequality
/// `η ∈ Δ(ϕ)`, each mapping `U(D) → {red, blue}` (Definition 28).
///
/// `red[d][u]` is `true` when `f_{η_d}(u) = red`, where `η_d` is the `d`-th
/// disequality of the query (in [`Query::disequalities`] order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColouringFamily {
    /// Per-disequality, per-universe-element colour flags (`true` = red).
    pub red: Vec<Vec<bool>>,
}

impl ColouringFamily {
    /// The empty family (for queries without disequalities).
    pub fn empty() -> Self {
        ColouringFamily { red: vec![] }
    }

    /// Build a family by drawing each colour from the provided closure
    /// (the FPTRAS uses a fair coin, Lemma 22's simulation).
    pub fn from_fn<F: FnMut(usize, usize) -> bool>(
        num_disequalities: usize,
        universe_size: usize,
        mut is_red: F,
    ) -> Self {
        let red = (0..num_disequalities)
            .map(|d| (0..universe_size).map(|u| is_red(d, u)).collect())
            .collect();
        ColouringFamily { red }
    }

    /// Is element `u` red under the colouring of disequality `d`?
    pub fn is_red(&self, d: usize, u: Val) -> bool {
        self.red[d][u.index()]
    }
}

/// The additional unary relation symbols of `Â(ϕ)` / `B̂(ϕ, D, …)` relative
/// to `A(ϕ)` / `B(ϕ, D)`: one `P_i` per variable position and a pair
/// `(Rd_d, Bd_d)` per disequality (Definition 26). Deterministic order so the
/// two structures end up with identical signatures.
fn hat_signature_extension(q: &Query) -> Vec<(String, usize)> {
    let mut extra = Vec::new();
    for i in 0..q.num_vars() {
        extra.push((format!("P{i}"), 1));
    }
    for d in 0..q.disequalities().len() {
        extra.push((format!("Rd{d}"), 1));
        extra.push((format!("Bd{d}"), 1));
    }
    extra
}

/// The shared signature of `Â(ϕ)` and `B̂(ϕ, D, …)`.
fn hat_signature(q: &Query) -> Signature {
    let mut sig = Signature::new();
    for lit in q.literals() {
        let atom = lit.atom();
        let name = match lit {
            Literal::Positive(_) => atom.relation.clone(),
            Literal::Negated(_) => negated_symbol_name(&atom.relation),
        };
        sig.declare(&name, atom.arity())
            .expect("consistent arities");
    }
    for (name, ar) in hat_signature_extension(q) {
        sig.declare(&name, ar).expect("fresh names");
    }
    sig
}

/// Build `Â(ϕ)` (Definition 26): `A(ϕ)` plus
/// * a unary relation `P_i = {x_i}` for every variable position `i`, and
/// * unary relations `Rd_d = {x_i}`, `Bd_d = {x_j}` for every disequality
///   `η_d = {x_i, x_j}` with `i < j` in enumeration order.
///
/// By Observation 27, `‖Â(ϕ)‖ ≤ 5‖ϕ‖²`.
pub fn build_a_hat(q: &Query) -> Structure {
    let order = variable_enumeration(q);
    let position: HashMap<Var, usize> = order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let sig = hat_signature(q);
    let mut a = Structure::empty(sig, q.num_vars());
    a.set_element_names(q.variable_names().to_vec());
    // Relational atoms, exactly as in A(ϕ). Universe elements of Â are the
    // variables indexed by their *original* Var index (not enumeration
    // position); the P_i relations are keyed by enumeration position.
    for lit in q.literals() {
        let atom = lit.atom();
        let name = match lit {
            Literal::Positive(_) => atom.relation.clone(),
            Literal::Negated(_) => negated_symbol_name(&atom.relation),
        };
        let sym = a.signature().symbol(&name).expect("declared");
        let tuple: Vec<Val> = atom.vars.iter().map(|v| Val(v.0)).collect();
        a.insert_fact(sym, &tuple).expect("arities match");
    }
    // P_i = {x_i} where i is the enumeration position of the variable.
    for (i, v) in order.iter().enumerate() {
        let sym = a.signature().symbol(&format!("P{i}")).expect("declared");
        a.insert_fact(sym, &[Val(v.0)]).expect("unary");
    }
    // Per-disequality colour markers; the paper orders each disequality by
    // enumeration position (i < j).
    for (d, &(u, v)) in q.disequalities().iter().enumerate() {
        let (first, second) = if position[&u] < position[&v] {
            (u, v)
        } else {
            (v, u)
        };
        let r = a.signature().symbol(&format!("Rd{d}")).expect("declared");
        let b = a.signature().symbol(&format!("Bd{d}")).expect("declared");
        a.insert_fact(r, &[Val(first.0)]).expect("unary");
        a.insert_fact(b, &[Val(second.0)]).expect("unary");
    }
    a
}

/// Build `B̂(ϕ, D, V₁..V_ℓ, f)` (Definition 28) from the already-constructed
/// `B(ϕ, D)` structure (see [`crate::build_b_structure`]).
///
/// The universe consists of pairs `(w, i)` where `i` is a variable position
/// in enumeration order and `w ∈ S_i` with `S_i = V_i` for free positions and
/// `S_i = U(D)` for existential positions. The returned decode table maps the
/// dense universe ids of the new structure back to `(position, value)` pairs.
///
/// One deliberate optimisation relative to the verbatim Definition 28: for a
/// relation symbol `R`, tuples are only materialised for the index patterns
/// `(i₁, …, i_a)` that actually occur as argument-position patterns of an
/// `R`-atom of `ϕ`. Tuples with other index patterns can never be the image
/// of an `R`-tuple of `Â(ϕ)` (the `P_i` relations pin every variable to its
/// own class), so `Hom(Â(ϕ) → B̂)` is unaffected while the structure stays
/// small (`|R^B| · #atoms` instead of `|R^B| · (ℓ+k)^a`).
pub fn build_b_hat(
    q: &Query,
    b: &Structure,
    parts: &PartiteSets,
    colouring: &ColouringFamily,
) -> (Structure, Vec<(usize, Val)>) {
    let order = variable_enumeration(q);
    let position: HashMap<Var, usize> = order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let ell = q.num_free_vars();
    assert_eq!(parts.len(), ell, "one partite set per free variable");
    assert_eq!(
        colouring.red.len(),
        q.disequalities().len(),
        "one colouring per disequality"
    );
    let n = b.universe_size();

    // S_i per position.
    let full: BTreeSet<Val> = (0..n as u32).map(Val).collect();
    let s: Vec<BTreeSet<Val>> = (0..order.len())
        .map(|i| {
            if i < ell {
                parts.sets[i].clone()
            } else {
                full.clone()
            }
        })
        .collect();

    // Dense universe: (position, value) pairs.
    let mut decode: Vec<(usize, Val)> = Vec::new();
    let mut encode: HashMap<(usize, Val), u32> = HashMap::new();
    for (i, si) in s.iter().enumerate() {
        for &w in si {
            encode.insert((i, w), decode.len() as u32);
            decode.push((i, w));
        }
    }

    let sig = hat_signature(q);
    let mut bh = Structure::empty(sig, decode.len());

    // Relational tuples, restricted to the index patterns of actual atoms.
    for lit in q.literals() {
        let atom = lit.atom();
        let name = match lit {
            Literal::Positive(_) => atom.relation.clone(),
            Literal::Negated(_) => negated_symbol_name(&atom.relation),
        };
        let sym_hat = bh.signature().symbol(&name).expect("declared");
        let sym_b = b.signature().symbol(&name).expect("same symbols as B(ϕ,D)");
        let pattern: Vec<usize> = atom.vars.iter().map(|v| position[v]).collect();
        for t in b.relation(sym_b).iter() {
            // map each value through its class; skip if any value is not in S_i
            let mut mapped = Vec::with_capacity(pattern.len());
            let mut ok = true;
            for (pos, &w) in pattern.iter().zip(t.values()) {
                match encode.get(&(*pos, w)) {
                    Some(&id) => mapped.push(Val(id)),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                bh.insert_fact(sym_hat, &mapped).expect("in range");
            }
        }
    }

    // P_i = S_i.
    for (i, si) in s.iter().enumerate() {
        let sym = bh.signature().symbol(&format!("P{i}")).expect("declared");
        for &w in si {
            let id = encode[&(i, w)];
            bh.insert_fact(sym, &[Val(id)]).expect("unary");
        }
    }

    // Colour relations: Rd_d = {(w, j) | f_d(w) = red}, Bd_d likewise for blue.
    for d in 0..q.disequalities().len() {
        let r = bh.signature().symbol(&format!("Rd{d}")).expect("declared");
        let bl = bh.signature().symbol(&format!("Bd{d}")).expect("declared");
        for (id, &(_, w)) in decode.iter().enumerate() {
            if colouring.is_red(d, w) {
                bh.insert_fact(r, &[Val(id as u32)]).expect("unary");
            } else {
                bh.insert_fact(bl, &[Val(id as u32)]).expect("unary");
            }
        }
    }

    (bh, decode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::enumerate_answers;
    use crate::parse_query;
    use crate::structures::build_b_structure;
    use cqc_data::StructureBuilder;

    /// Brute-force homomorphism existence check (test oracle only).
    fn hom_exists(a: &Structure, b: &Structure) -> bool {
        let n = a.universe_size();
        let m = b.universe_size();
        if n == 0 {
            return true;
        }
        if m == 0 {
            return false;
        }
        let mut assignment = vec![0u32; n];
        loop {
            let ok = a.signature().iter().all(|(sym, _, ar)| {
                a.relation(sym).iter().all(|t| {
                    let image: Vec<Val> = t
                        .values()
                        .iter()
                        .map(|v| Val(assignment[v.index()]))
                        .collect();
                    debug_assert_eq!(image.len(), ar);
                    b.holds(sym, &image)
                })
            });
            if ok {
                return true;
            }
            // next assignment
            let mut i = 0;
            loop {
                if i == n {
                    return false;
                }
                assignment[i] += 1;
                if (assignment[i] as usize) < m {
                    break;
                }
                assignment[i] = 0;
                i += 1;
            }
        }
    }

    fn friends_db() -> Structure {
        // person 0 has friends 1 and 2; person 3 has only friend 0
        let mut b = StructureBuilder::new(4);
        b.relation("F", 2);
        b.fact("F", &[0, 1]).unwrap();
        b.fact("F", &[0, 2]).unwrap();
        b.fact("F", &[3, 0]).unwrap();
        b.build()
    }

    #[test]
    fn a_hat_size_bound_observation_27() {
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let a_hat = build_a_hat(&q);
        assert!(a_hat.size() <= 5 * q.size() * q.size());
        // P relations: one per variable; colour relations: two per disequality
        assert!(a_hat.signature().symbol("P0").is_some());
        assert!(a_hat.signature().symbol("P2").is_some());
        assert!(a_hat.signature().symbol("Rd0").is_some());
        assert!(a_hat.signature().symbol("Bd0").is_some());
    }

    #[test]
    fn enumeration_puts_free_variables_first() {
        let q = parse_query("ans(z) :- F(x, z), F(z, y)").unwrap();
        let order = variable_enumeration(&q);
        assert_eq!(order[0], q.variable("z").unwrap());
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn lemma_30_forward_direction() {
        // If the restricted answer hypergraph has an edge, some colouring
        // admits a homomorphism Â → B̂.
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let db = friends_db();
        let b = build_b_structure(&q, &db).unwrap();
        let a_hat = build_a_hat(&q);

        // answers: x = 0 only (needs two distinct friends)
        let answers = enumerate_answers(&q, &db);
        assert_eq!(answers.len(), 1);

        // V_1 = {0}: contains the answer, so an edge exists.
        let parts = PartiteSets {
            sets: vec![[Val(0)].into_iter().collect()],
        };
        // Find some colouring admitting a homomorphism: colour 1 red, 2 blue.
        let col = ColouringFamily::from_fn(1, db.universe_size(), |_, u| u == 1);
        let (b_hat, _) = build_b_hat(&q, &b, &parts, &col);
        assert!(hom_exists(&a_hat, &b_hat));
    }

    #[test]
    fn lemma_30_reverse_direction() {
        // If the restricted hypergraph has no edge, *no* colouring admits a
        // homomorphism.
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let db = friends_db();
        let b = build_b_structure(&q, &db).unwrap();
        let a_hat = build_a_hat(&q);

        // V_1 = {3}: person 3 has only one friend, so no answer in there.
        let parts = PartiteSets {
            sets: vec![[Val(3)].into_iter().collect()],
        };
        // exhaust all 2^4 colourings of the single disequality
        for mask in 0u32..16 {
            let col = ColouringFamily::from_fn(1, 4, |_, u| (mask >> u) & 1 == 1);
            let (b_hat, _) = build_b_hat(&q, &b, &parts, &col);
            assert!(
                !hom_exists(&a_hat, &b_hat),
                "unexpected homomorphism for colouring mask {mask}"
            );
        }
    }

    #[test]
    fn colouring_must_separate_disequal_values() {
        // With both friends coloured the same, the disequality relations make
        // the homomorphism impossible even though an answer exists.
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let db = friends_db();
        let b = build_b_structure(&q, &db).unwrap();
        let a_hat = build_a_hat(&q);
        let parts = PartiteSets {
            sets: vec![[Val(0)].into_iter().collect()],
        };
        // all-red colouring: y and z would both need to be red and blue — impossible
        let col = ColouringFamily::from_fn(1, 4, |_, _| true);
        let (b_hat, _) = build_b_hat(&q, &b, &parts, &col);
        assert!(!hom_exists(&a_hat, &b_hat));
    }

    #[test]
    fn empty_partite_set_blocks_homomorphism() {
        let q = parse_query("ans(x) :- F(x, y)").unwrap();
        let db = friends_db();
        let b = build_b_structure(&q, &db).unwrap();
        let a_hat = build_a_hat(&q);
        let parts = PartiteSets {
            sets: vec![BTreeSet::new()],
        };
        let (b_hat, _) = build_b_hat(&q, &b, &parts, &ColouringFamily::empty());
        assert!(!hom_exists(&a_hat, &b_hat));
    }

    #[test]
    fn full_partite_sets_and_no_disequalities() {
        let q = parse_query("ans(x) :- F(x, y)").unwrap();
        let db = friends_db();
        let b = build_b_structure(&q, &db).unwrap();
        let a_hat = build_a_hat(&q);
        let parts = PartiteSets::full(1, db.universe_size());
        let (b_hat, decode) = build_b_hat(&q, &b, &parts, &ColouringFamily::empty());
        assert!(hom_exists(&a_hat, &b_hat));
        // decode table covers position 0 (free, 4 values) and position 1 (existential, 4 values)
        assert_eq!(decode.len(), 8);
        assert!(decode.iter().any(|&(p, _)| p == 1));
    }

    #[test]
    fn negated_atoms_are_respected_in_b_hat() {
        let q = parse_query("ans(x, y) :- F(x, y), !F(y, x)").unwrap();
        let db = friends_db();
        let b = build_b_structure(&q, &db).unwrap();
        let a_hat = build_a_hat(&q);
        let parts = PartiteSets::full(2, db.universe_size());
        let (b_hat, _) = build_b_hat(&q, &b, &parts, &ColouringFamily::empty());
        // (0,1) is an answer because F(0,1) holds and F(1,0) does not
        assert!(hom_exists(&a_hat, &b_hat));
    }
}
