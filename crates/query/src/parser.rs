//! A small textual syntax for extended conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query   ::= head ":-" body
//! head    ::= ident "(" [ident {"," ident}] ")"
//! body    ::= literal {"," literal}
//! literal ::= atom | "!" atom | "not" atom | ident "!=" ident | ident "=" ident
//! atom    ::= ident "(" ident {"," ident} ")"
//! ident   ::= [A-Za-z_][A-Za-z0-9_]*
//! ```
//!
//! The head predicate name is ignored (conventionally `ans`); its arguments
//! are the free variables. Example — the "two distinct friends" query (1)
//! from the paper's introduction:
//!
//! ```
//! use cqc_query::parse_query;
//! let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
//! assert_eq!(q.num_free_vars(), 1);
//! assert_eq!(q.disequalities().len(), 1);
//! ```

use crate::ast::{Query, QueryError};
use crate::builder::QueryBuilder;

/// Parse a query from its textual form.
pub fn parse_query(input: &str) -> Result<Query, QueryError> {
    let mut tokens = tokenize(input)?;
    tokens.reverse(); // use as a stack, pop from the end

    let mut builder = QueryBuilder::new();

    // head
    let _head_name = expect_ident(&mut tokens)?;
    expect(&mut tokens, Token::LParen)?;
    let mut free = Vec::new();
    if peek(&tokens) != Some(&Token::RParen) {
        loop {
            let name = expect_ident(&mut tokens)?;
            free.push(builder.var(&name));
            match tokens.pop() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => return Err(unexpected(other, "',' or ')'")),
            }
        }
    } else {
        tokens.pop();
    }
    builder.free(&free);
    expect(&mut tokens, Token::Turnstile)?;

    // body
    loop {
        let negated = match peek(&tokens) {
            Some(Token::Bang) => {
                tokens.pop();
                true
            }
            Some(Token::Ident(s))
                if s == "not"
                    && matches!(
                        tokens.get(tokens.len().wrapping_sub(2)),
                        Some(Token::Ident(_))
                    ) =>
            {
                tokens.pop();
                true
            }
            _ => false,
        };
        let first = expect_ident(&mut tokens)?;
        match tokens.pop() {
            Some(Token::LParen) => {
                // relational atom
                let mut vars = Vec::new();
                loop {
                    let name = expect_ident(&mut tokens)?;
                    vars.push(builder.var(&name));
                    match tokens.pop() {
                        Some(Token::Comma) => continue,
                        Some(Token::RParen) => break,
                        other => return Err(unexpected(other, "',' or ')'")),
                    }
                }
                if negated {
                    builder.negated_atom(&first, &vars);
                } else {
                    builder.atom(&first, &vars);
                }
            }
            Some(Token::NotEqual) => {
                if negated {
                    return Err(QueryError::Parse(
                        "'!' cannot be applied to a disequality".into(),
                    ));
                }
                let second = expect_ident(&mut tokens)?;
                let u = builder.var(&first);
                let v = builder.var(&second);
                builder.disequality(u, v);
            }
            Some(Token::Equal) => {
                if negated {
                    return Err(QueryError::Parse(
                        "'!' cannot be applied to an equality; use '!=' instead".into(),
                    ));
                }
                let second = expect_ident(&mut tokens)?;
                let u = builder.var(&first);
                let v = builder.var(&second);
                builder.equality(u, v);
            }
            other => return Err(unexpected(other, "'(' , '!=' or '='")),
        }
        match tokens.pop() {
            Some(Token::Comma) => continue,
            None => break,
            other => return Err(unexpected(other, "',' or end of input")),
        }
    }

    builder.build()
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Turnstile,
    Bang,
    NotEqual,
    Equal,
}

fn tokenize(input: &str) -> Result<Vec<Token>, QueryError> {
    let mut out = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            ':' => {
                if chars.get(i + 1) == Some(&'-') {
                    out.push(Token::Turnstile);
                    i += 2;
                } else {
                    return Err(QueryError::Parse(format!(
                        "unexpected ':' at position {i} (expected ':-')"
                    )));
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::NotEqual);
                    i += 2;
                } else {
                    out.push(Token::Bang);
                    i += 1;
                }
            }
            '¬' => {
                out.push(Token::Bang);
                i += 1;
            }
            '≠' => {
                out.push(Token::NotEqual);
                i += 1;
            }
            '=' => {
                out.push(Token::Equal);
                i += 1;
            }
            c if c.is_alphanumeric() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => {
                return Err(QueryError::Parse(format!(
                    "unexpected character '{other}' at position {i}"
                )))
            }
        }
    }
    if out.is_empty() {
        return Err(QueryError::Parse("empty query".into()));
    }
    Ok(out)
}

fn peek(tokens: &[Token]) -> Option<&Token> {
    tokens.last()
}

fn expect(tokens: &mut Vec<Token>, t: Token) -> Result<(), QueryError> {
    match tokens.pop() {
        Some(tok) if tok == t => Ok(()),
        other => Err(unexpected(other, &format!("{t:?}"))),
    }
}

fn expect_ident(tokens: &mut Vec<Token>) -> Result<String, QueryError> {
    match tokens.pop() {
        Some(Token::Ident(s)) => Ok(s),
        other => Err(unexpected(other, "identifier")),
    }
}

fn unexpected(got: Option<Token>, expected: &str) -> QueryError {
    match got {
        Some(t) => QueryError::Parse(format!("unexpected token {t:?}, expected {expected}")),
        None => QueryError::Parse(format!("unexpected end of input, expected {expected}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QueryClass;

    #[test]
    fn parse_friends_query() {
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.num_free_vars(), 1);
        assert_eq!(q.class(), QueryClass::DCQ);
        assert_eq!(q.disequalities().len(), 1);
    }

    #[test]
    fn parse_negation_with_bang_and_not() {
        let q = parse_query("ans(x, y) :- E(x, y), !F(x, y)").unwrap();
        assert_eq!(q.num_negated(), 1);
        assert_eq!(q.class(), QueryClass::ECQ);
        let q = parse_query("ans(x, y) :- E(x, y), not F(x, y)").unwrap();
        assert_eq!(q.num_negated(), 1);
    }

    #[test]
    fn parse_equality_is_eliminated() {
        let q = parse_query("ans(x) :- E(x, y), E(z, x), y = z").unwrap();
        assert_eq!(q.num_vars(), 2);
        assert_eq!(q.class(), QueryClass::CQ);
    }

    #[test]
    fn parse_boolean_query() {
        let q = parse_query("ans() :- E(x, y), E(y, z)").unwrap();
        assert_eq!(q.num_free_vars(), 0);
        assert_eq!(q.num_vars(), 3);
    }

    #[test]
    fn parse_unicode_operators() {
        let q = parse_query("ans(x) :- E(x, y), ¬F(x, y), x ≠ y").unwrap();
        assert_eq!(q.num_negated(), 1);
        assert_eq!(q.disequalities().len(), 1);
    }

    #[test]
    fn parse_ternary_atoms() {
        let q = parse_query("ans(x, y) :- R(x, y, z), S(z)").unwrap();
        assert_eq!(q.max_arity(), 3);
        assert_eq!(q.positive_atoms().count(), 2);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_query("").is_err());
        assert!(parse_query("ans(x)").is_err());
        assert!(parse_query("ans(x) : E(x, y)").is_err());
        assert!(parse_query("ans(x) :- E(x, y,, z)").is_err());
        assert!(parse_query("ans(x) :- E(x y)").is_err());
        assert!(parse_query("ans(x) :- !x != y").is_err());
        assert!(parse_query("ans(x) :- E(x, y) E(y, z)").is_err());
        assert!(parse_query("ans(x) :- #E(x, y)").is_err());
    }

    #[test]
    fn parse_rejects_semantic_errors() {
        // unconstrained variable in the head
        assert!(parse_query("ans(w) :- E(x, y)").is_err());
        // inconsistent arity
        assert!(parse_query("ans(x) :- E(x, y), E(x, y, z)").is_err());
        // reflexive disequality
        assert!(parse_query("ans(x) :- E(x, y), x != x").is_err());
    }

    #[test]
    fn hamilton_path_query_of_observation_10() {
        // n = 4: ϕ(x1..x4) = Λ E(xi, xi+1) ∧ Λ_{i<j} xi ≠ xj
        let q = parse_query(
            "ans(x1, x2, x3, x4) :- E(x1, x2), E(x2, x3), E(x3, x4), \
             x1 != x2, x1 != x3, x1 != x4, x2 != x3, x2 != x4, x3 != x4",
        )
        .unwrap();
        assert_eq!(q.num_vars(), 4);
        assert_eq!(q.num_free_vars(), 4);
        assert_eq!(q.disequalities().len(), 6);
        assert_eq!(q.class(), QueryClass::DCQ);
    }
}
