//! Property-based tests for the query layer: random ECQs over random
//! databases, checked against the definitions of Section 1.1 and Section 2.2
//! of the paper (solutions vs answers, the size measure ‖ϕ‖, the associated
//! structures A(ϕ) and B(ϕ, D) of Definitions 18/20 and Observations 19/21,
//! and the hypergraph H(ϕ) of Definition 3).

use cqc_data::{Structure, StructureBuilder, Val};
use cqc_query::{
    build_a_structure, build_b_structure, count_answers_bruteforce, count_answers_via_solutions,
    enumerate_answers, enumerate_solutions, is_answer, is_solution, parse_query, query_hypergraph,
    QueryBuilder, QueryClass,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Description of one random literal over `num_vars` variables.
#[derive(Debug, Clone)]
enum RawLiteral {
    Positive(Vec<usize>),
    Negated(Vec<usize>),
    Disequality(usize, usize),
}

/// A raw random ECQ: how many variables, how many of them are free, and the
/// list of literals (variable indices are taken modulo `num_vars`).
#[derive(Debug, Clone)]
struct RawQuery {
    num_vars: usize,
    num_free: usize,
    literals: Vec<RawLiteral>,
}

fn raw_literal(num_vars: usize) -> impl Strategy<Value = RawLiteral> {
    let positive = proptest::collection::vec(0..num_vars, 1..=2).prop_map(RawLiteral::Positive);
    let negated = proptest::collection::vec(0..num_vars, 1..=2).prop_map(RawLiteral::Negated);
    let diseq = (0..num_vars, 0..num_vars).prop_map(|(u, v)| RawLiteral::Disequality(u, v));
    prop_oneof![4 => positive, 1 => negated, 2 => diseq]
}

fn raw_query() -> impl Strategy<Value = RawQuery> {
    (2usize..=4).prop_flat_map(|num_vars| {
        (
            Just(num_vars),
            1usize..=num_vars,
            proptest::collection::vec(raw_literal(num_vars), 1..5),
        )
            .prop_map(|(num_vars, num_free, literals)| RawQuery {
                num_vars,
                num_free,
                literals,
            })
    })
}

/// Materialise a raw query through [`QueryBuilder`]. Returns `None` when the
/// raw description is degenerate (e.g. a variable occurs only in
/// disequalities, or a disequality relates a variable with itself).
fn build_query(raw: &RawQuery) -> Option<cqc_query::Query> {
    let mut b = QueryBuilder::new();
    let vars: Vec<_> = (0..raw.num_vars).map(|i| b.var(&format!("v{i}"))).collect();
    b.free(&vars[0..raw.num_free]);
    let mut used = vec![false; raw.num_vars];
    let mut has_atom = false;
    for lit in &raw.literals {
        match lit {
            RawLiteral::Positive(ixs) => {
                let vs: Vec<_> = ixs.iter().map(|&i| vars[i]).collect();
                let name = format!("R{}", ixs.len());
                b.atom(&name, &vs);
                ixs.iter().for_each(|&i| used[i] = true);
                has_atom = true;
            }
            RawLiteral::Negated(ixs) => {
                let vs: Vec<_> = ixs.iter().map(|&i| vars[i]).collect();
                let name = format!("N{}", ixs.len());
                b.negated_atom(&name, &vs);
                ixs.iter().for_each(|&i| used[i] = true);
                has_atom = true;
            }
            RawLiteral::Disequality(u, v) => {
                if u == v {
                    return None;
                }
                b.disequality(vars[*u], vars[*v]);
            }
        }
    }
    if !has_atom || used.iter().any(|u| !u) {
        // Ensure every variable occurs in at least one atom by adding a
        // harmless unary atom per unused variable.
        for (i, &u) in used.iter().enumerate() {
            if !u {
                b.atom("U1", &[vars[i]]);
            }
        }
        if !has_atom && raw.num_vars == 0 {
            return None;
        }
    }
    b.build().ok()
}

/// A random database over all the relation names the generator can emit.
fn random_db(universe: usize, seed: &[u8]) -> Structure {
    let mut b = StructureBuilder::new(universe);
    b.relation("R1", 1);
    b.relation("R2", 2);
    b.relation("N1", 1);
    b.relation("N2", 2);
    b.relation("U1", 1);
    // Deterministic pseudo-random fill derived from the seed bytes.
    let mut state = 0x9E3779B97F4A7C15u64;
    for &byte in seed {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(byte as u64 + 1);
    }
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let n = universe as u64;
    for _ in 0..(2 * universe) {
        let u = (next() % n) as u32;
        let v = (next() % n) as u32;
        if next() % 2 == 0 {
            b.fact("R2", &[u, v]).unwrap();
        }
        if next() % 3 == 0 {
            b.fact("N2", &[v, u]).unwrap();
        }
        if next() % 3 == 0 {
            b.fact("R1", &[u]).unwrap();
        }
        if next() % 4 == 0 {
            b.fact("N1", &[v]).unwrap();
        }
        if next() % 2 == 0 {
            b.fact("U1", &[u]).unwrap();
        }
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The two exact counters (brute force over free-variable assignments and
    /// projection of the enumerated solution set) agree, and both agree with
    /// the size of the enumerated answer set.
    #[test]
    fn exact_counters_agree(raw in raw_query(), universe in 2usize..5, seed in proptest::collection::vec(any::<u8>(), 4)) {
        let Some(q) = build_query(&raw) else { return Ok(()); };
        let db = random_db(universe, &seed);
        let brute = count_answers_bruteforce(&q, &db);
        let via_sol = count_answers_via_solutions(&q, &db);
        let enumerated = enumerate_answers(&q, &db);
        prop_assert_eq!(brute, via_sol);
        prop_assert_eq!(brute as usize, enumerated.len());
    }

    /// Definition 2: τ is an answer iff some solution projects onto it, and
    /// every enumerated solution satisfies every literal (Definition 1).
    #[test]
    fn answers_are_projections_of_solutions(raw in raw_query(), universe in 2usize..4, seed in proptest::collection::vec(any::<u8>(), 4)) {
        let Some(q) = build_query(&raw) else { return Ok(()); };
        let db = random_db(universe, &seed);
        let solutions = enumerate_solutions(&q, &db);
        for s in &solutions {
            prop_assert!(is_solution(&q, &db, s));
        }
        let projected: BTreeSet<Vec<Val>> = solutions
            .iter()
            .map(|s| q.free_vars().iter().map(|v| s[v.index()]).collect())
            .collect();
        let answers = enumerate_answers(&q, &db);
        prop_assert_eq!(&projected, &answers);
        for a in &answers {
            prop_assert!(is_answer(&q, &db, a));
        }
    }

    /// ‖ϕ‖ (Section 1.1) is |vars(ϕ)| plus the summed arities of all atoms
    /// (counting disequalities as arity-2 atoms), and the class of the query
    /// reflects exactly which extensions it uses.
    #[test]
    fn size_and_class(raw in raw_query()) {
        let Some(q) = build_query(&raw) else { return Ok(()); };
        let atom_arities: usize = q.literals().iter().map(|l| l.atom().arity()).sum();
        let expected = q.num_vars() + atom_arities + 2 * q.disequalities().len();
        prop_assert_eq!(q.size(), expected);

        let has_neg = q.num_negated() > 0;
        let has_diseq = !q.disequalities().is_empty();
        let class = q.class();
        match (has_neg, has_diseq) {
            (true, _) => prop_assert_eq!(class, QueryClass::ECQ),
            (false, true) => prop_assert_eq!(class, QueryClass::DCQ),
            (false, false) => prop_assert_eq!(class, QueryClass::CQ),
        }
    }

    /// Observation 19: ‖A(ϕ)‖ ≤ |sig(ϕ)| + ν + ‖ϕ‖ ≤ 3‖ϕ‖.
    #[test]
    fn observation_19_size_of_a(raw in raw_query()) {
        let Some(q) = build_query(&raw) else { return Ok(()); };
        let a = build_a_structure(&q);
        let nu = q.num_negated();
        let sig_size = q.signature().len();
        prop_assert!(a.size() <= sig_size + nu + q.size());
        prop_assert!(a.size() <= 3 * q.size());
        // A(ϕ)'s universe is vars(ϕ).
        prop_assert_eq!(a.universe_size(), q.num_vars());
    }

    /// Observation 21: ‖B(ϕ, D)‖ ≤ 2‖ϕ‖(‖D‖ + ν·|U(D)|^a), and B's universe
    /// is the universe of D.
    #[test]
    fn observation_21_size_of_b(raw in raw_query(), universe in 2usize..4, seed in proptest::collection::vec(any::<u8>(), 4)) {
        let Some(q) = build_query(&raw) else { return Ok(()); };
        let db = random_db(universe, &seed);
        let b = build_b_structure(&q, &db).unwrap();
        prop_assert_eq!(b.universe_size(), db.universe_size());
        let nu = q.num_negated();
        let a = q.max_arity().max(1);
        let bound = 2 * q.size() * (db.size() + nu * universe.pow(a as u32));
        prop_assert!(b.size() <= bound, "‖B‖ = {} > bound {}", b.size(), bound);
    }

    /// Definition 3: H(ϕ) has one vertex per variable, a hyperedge per
    /// (negated) atom, and *no* hyperedges for disequalities.
    #[test]
    fn query_hypergraph_definition_3(raw in raw_query()) {
        let Some(q) = build_query(&raw) else { return Ok(()); };
        let h = query_hypergraph(&q);
        prop_assert_eq!(h.num_vertices(), q.num_vars());
        // every hyperedge corresponds to the variable set of some literal
        for e in h.edges() {
            let found = q.literals().iter().any(|l| {
                let vs: BTreeSet<usize> = l.atom().vars.iter().map(|v| v.index()).collect();
                &vs == e
            });
            prop_assert!(found, "hyperedge {:?} comes from no literal", e);
        }
        // every literal's variable set is inside some hyperedge (it may be a
        // strict subset only if another literal has the same variable set —
        // hyperedges are deduplicated)
        for l in q.literals() {
            let vs: BTreeSet<usize> = l.atom().vars.iter().map(|v| v.index()).collect();
            prop_assert!(h.edges().iter().any(|e| e == &vs));
        }
        // arity of the hypergraph ≤ max arity of the query
        prop_assert!(h.arity() <= q.max_arity().max(1));
    }

    /// Adding a disequality can only remove answers; dropping all
    /// disequalities can only add them (monotonicity used implicitly
    /// throughout Section 1.2's examples).
    #[test]
    fn disequalities_shrink_answer_sets(universe in 2usize..5, seed in proptest::collection::vec(any::<u8>(), 4)) {
        let db = random_db(universe, &seed);
        let with = parse_query("ans(x, y) :- R2(x, z), R2(z, y), x != y").unwrap();
        let without = parse_query("ans(x, y) :- R2(x, z), R2(z, y)").unwrap();
        let a_with = enumerate_answers(&with, &db);
        let a_without = enumerate_answers(&without, &db);
        prop_assert!(a_with.is_subset(&a_without));
        for a in &a_with {
            prop_assert!(a[0] != a[1]);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The textual parser and the programmatic builder produce the same
    /// query for star-shaped DCQs of every size.
    #[test]
    fn parser_matches_builder_on_stars(k in 1usize..5, universe in 2usize..5, seed in proptest::collection::vec(any::<u8>(), 4)) {
        // parse "ans(x1, ..) :- R2(x1, y), .., xi != xj .."
        let mut text = String::from("ans(");
        let free: Vec<String> = (0..k).map(|i| format!("x{i}")).collect();
        text.push_str(&free.join(", "));
        text.push_str(") :- ");
        let mut parts: Vec<String> = (0..k).map(|i| format!("R2(y, x{i})")).collect();
        for i in 0..k {
            for j in (i + 1)..k {
                parts.push(format!("x{i} != x{j}"));
            }
        }
        text.push_str(&parts.join(", "));
        let parsed = parse_query(&text).unwrap();

        let mut b = QueryBuilder::new();
        let y = b.var("y");
        let xs: Vec<_> = (0..k).map(|i| b.var(&format!("x{i}"))).collect();
        b.free(&xs);
        for &x in &xs {
            b.atom("R2", &[y, x]);
        }
        for i in 0..k {
            for j in (i + 1)..k {
                b.disequality(xs[i], xs[j]);
            }
        }
        let built = b.build().unwrap();

        prop_assert_eq!(parsed.num_vars(), built.num_vars());
        prop_assert_eq!(parsed.num_free_vars(), built.num_free_vars());
        prop_assert_eq!(parsed.disequalities().len(), built.disequalities().len());
        prop_assert_eq!(parsed.class(), built.class());
        prop_assert_eq!(parsed.size(), built.size());

        // and they have the same answers on a random database
        let db = random_db(universe, &seed);
        prop_assert_eq!(
            count_answers_via_solutions(&parsed, &db),
            count_answers_via_solutions(&built, &db)
        );
    }

    /// Equalities are rewritten away at build time (Section 1.1): a query
    /// with `y = x` behaves exactly like the query with `y` substituted by
    /// `x`, the merged query has one variable fewer, and equating two *free*
    /// variables is rejected (it would silently change the answer arity).
    #[test]
    fn equalities_are_rewritten_away(universe in 2usize..5, seed in proptest::collection::vec(any::<u8>(), 4)) {
        let db = random_db(universe, &seed);

        // Equate the free variable x with the existential variable y.
        let mut b = QueryBuilder::new();
        let x = b.var("x");
        let y = b.var("y");
        let z = b.var("z");
        b.free(&[x]);
        b.atom("R2", &[x, z]);
        b.atom("R2", &[z, y]);
        b.equality(x, y);
        let with_eq = b.build().unwrap();
        prop_assert_eq!(with_eq.num_vars(), 2); // y merged into x

        // the paper's rewriting: replace y by x everywhere
        let reference = {
            let q = parse_query("ans(x) :- R2(x, z), R2(z, x)").unwrap();
            count_answers_via_solutions(&q, &db)
        };
        prop_assert_eq!(count_answers_via_solutions(&with_eq, &db), reference);

        // Equating two free variables must be rejected.
        let mut b2 = QueryBuilder::new();
        let x2 = b2.var("x");
        let y2 = b2.var("y");
        b2.free(&[x2, y2]);
        b2.atom("R2", &[x2, y2]);
        b2.equality(x2, y2);
        prop_assert!(b2.build().is_err());
    }
}
