//! The detector pins: every rule must fire on a seeded violation with the
//! right `file:line`, stay silent where it does not apply, and honour
//! waivers, `#[cfg(test)]` exclusion, and the golden `unsafe` inventory.

use cqc_audit::rules::Rule;
use cqc_audit::{audit, audit_source, Violation};
use std::path::PathBuf;

fn hits(violations: &[Violation], rule: Rule) -> Vec<&Violation> {
    violations.iter().filter(|v| v.rule == rule).collect()
}

// ---- hash-iter --------------------------------------------------------

#[test]
fn hash_iter_fires_on_for_loop_with_correct_line() {
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    for (_k, v) in m {
        acc += v;
    }
    acc
}
";
    let report = audit_source("crates/data/src/bad.rs", "data", src);
    let found = hits(&report.violations, Rule::HashIter);
    assert_eq!(found.len(), 1, "{:?}", report.violations);
    assert_eq!(found[0].file, "crates/data/src/bad.rs");
    assert_eq!(found[0].line, 4);
}

#[test]
fn hash_iter_fires_on_iter_methods() {
    let src = "\
use std::collections::HashSet;
fn f(s: &HashSet<u32>) -> Vec<u32> {
    s.iter().copied().collect()
}
";
    let report = audit_source("crates/query/src/bad.rs", "query", src);
    let found = hits(&report.violations, Rule::HashIter);
    assert_eq!(found.len(), 1, "{:?}", report.violations);
    assert_eq!(found[0].line, 3);
}

#[test]
fn hash_iter_tracks_let_chains() {
    let src = "\
use std::collections::HashMap;
fn f(tables: &[Option<HashMap<u32, u32>>]) -> u32 {
    let t = tables[0].as_ref().unwrap();
    t.values().sum()
}
";
    let report = audit_source("crates/hom/src/bad.rs", "hom", src);
    let found = hits(&report.violations, Rule::HashIter);
    assert_eq!(found.len(), 1, "{:?}", report.violations);
    assert_eq!(found[0].line, 4);
}

#[test]
fn hash_iter_ignores_sorted_maps_and_lookups() {
    let src = "\
use std::collections::{BTreeMap, HashMap};
fn f(b: &BTreeMap<u32, u32>, h: &HashMap<u32, u32>) -> u32 {
    let hit = h.get(&1).copied().unwrap_or(0);
    b.values().sum::<u32>() + hit
}
";
    let report = audit_source("crates/data/src/ok.rs", "data", src);
    assert!(hits(&report.violations, Rule::HashIter).is_empty());
}

#[test]
fn hash_iter_does_not_apply_outside_estimate_path() {
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> u32 {
    m.values().sum()
}
";
    let report = audit_source("crates/cli/src/anything.rs", "cli", src);
    assert!(hits(&report.violations, Rule::HashIter).is_empty());
}

// ---- ambient-rng ------------------------------------------------------

#[test]
fn ambient_rng_fires_everywhere() {
    let src = "\
fn f() -> u64 {
    let mut rng = rand::thread_rng();
    rand::random()
}
";
    let report = audit_source("crates/cli/src/bad.rs", "cli", src);
    let found = hits(&report.violations, Rule::AmbientRng);
    assert_eq!(found.len(), 2, "{:?}", report.violations);
    assert_eq!(found[0].line, 2);
    assert_eq!(found[1].line, 3);
}

#[test]
fn seeded_rng_is_fine() {
    let src = "\
fn f(seed: u64) -> u64 {
    let mut rng = StdRng::seed_from_u64(seed);
    rng.next_u64()
}
";
    let report = audit_source("crates/core/src/ok.rs", "core", src);
    assert!(hits(&report.violations, Rule::AmbientRng).is_empty());
}

// ---- wall-clock -------------------------------------------------------

#[test]
fn wall_clock_fires_in_estimate_path() {
    let src = "\
use std::time::Instant;
fn f() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
";
    let report = audit_source("crates/dlm/src/bad.rs", "dlm", src);
    let found = hits(&report.violations, Rule::WallClock);
    assert_eq!(found.len(), 1, "{:?}", report.violations);
    assert_eq!(found[0].line, 3);
}

#[test]
fn wall_clock_fires_in_every_crate_except_obs() {
    let src = "\
use std::time::Instant;
fn f() -> std::time::Duration {
    Instant::now().elapsed()
}
";
    for (rel, krate) in [
        ("crates/net/src/timing.rs", "net"),
        ("crates/cli/src/timing.rs", "cli"),
    ] {
        let report = audit_source(rel, krate, src);
        assert_eq!(
            hits(&report.violations, Rule::WallClock).len(),
            1,
            "{:?}",
            report.violations
        );
    }
    // `cqc-obs::clock` is the one sanctioned wall-clock site
    let report = audit_source("crates/obs/src/clock.rs", "obs", src);
    assert!(hits(&report.violations, Rule::WallClock).is_empty());
}

// ---- raw-spawn --------------------------------------------------------

#[test]
fn raw_spawn_fires_outside_runtime_and_net() {
    let src = "\
fn f() {
    std::thread::spawn(|| {});
}
";
    let report = audit_source("crates/data/src/bad.rs", "data", src);
    let found = hits(&report.violations, Rule::RawSpawn);
    assert_eq!(found.len(), 1, "{:?}", report.violations);
    assert_eq!(found[0].line, 2);
}

#[test]
fn raw_spawn_is_exempt_in_runtime_and_net() {
    let src = "\
fn f() {
    std::thread::spawn(|| {});
}
";
    for krate in ["runtime", "net"] {
        let rel = format!("crates/{krate}/src/ok.rs");
        let report = audit_source(&rel, krate, src);
        assert!(hits(&report.violations, Rule::RawSpawn).is_empty());
    }
}

// ---- serve-panic ------------------------------------------------------

#[test]
fn serve_panic_fires_on_the_serve_path_with_correct_line() {
    let src = "\
fn handle(line: &str) -> String {
    let n: u64 = line.trim().parse().unwrap();
    format!(\"{n}\")
}
";
    let report = audit_source("crates/net/src/server.rs", "net", src);
    let found = hits(&report.violations, Rule::ServePanic);
    assert_eq!(found.len(), 1, "{:?}", report.violations);
    assert_eq!(found[0].file, "crates/net/src/server.rs");
    assert_eq!(found[0].line, 2);
    assert!(found[0].message.contains("unwrap"));
}

#[test]
fn serve_panic_catches_panic_macros() {
    let src = "\
fn handle() {
    panic!(\"boom\");
}
";
    let report = audit_source("crates/serve/src/server.rs", "serve", src);
    let found = hits(&report.violations, Rule::ServePanic);
    assert_eq!(found.len(), 1, "{:?}", report.violations);
    assert_eq!(found[0].line, 2);
}

#[test]
fn unwrap_is_fine_off_the_serve_path() {
    let src = "\
fn f(line: &str) -> u64 {
    line.trim().parse().unwrap()
}
";
    let report = audit_source("crates/net/src/loadgen.rs", "net", src);
    assert!(hits(&report.violations, Rule::ServePanic).is_empty());
}

// ---- cfg(test) exclusion ---------------------------------------------

#[test]
fn test_modules_are_out_of_scope() {
    let src = "\
fn production() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    #[test]
    fn t() {
        let m: HashMap<u32, u32> = HashMap::new();
        for (_k, _v) in &m {}
        let _ = std::time::Instant::now();
    }
}
";
    let report = audit_source("crates/data/src/ok.rs", "data", src);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn cfg_not_test_is_not_stripped() {
    let src = "\
#[cfg(not(test))]
mod production {
    use std::collections::HashMap;
    pub fn f(m: &HashMap<u32, u32>) -> u32 {
        m.values().sum()
    }
}
";
    let report = audit_source("crates/data/src/bad.rs", "data", src);
    assert_eq!(hits(&report.violations, Rule::HashIter).len(), 1);
}

// ---- waivers ----------------------------------------------------------

#[test]
fn waiver_on_previous_line_silences_and_is_recorded() {
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> u32 {
    let mut acc = 0;
    // cqc-audit: allow(hash-iter) — commutative sum
    for (_k, v) in m {
        acc += v;
    }
    acc
}
";
    let report = audit_source("crates/data/src/waived.rs", "data", src);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.waived[0].line, 5);
    assert_eq!(report.waived[0].reason, "commutative sum");
}

#[test]
fn waiver_does_not_reach_past_the_next_line() {
    let src = "\
use std::collections::HashMap;
fn f(m: &HashMap<u32, u32>) -> u32 {
    // cqc-audit: allow(hash-iter) — too far away
    let mut acc = 0;
    for (_k, v) in m {
        acc += v;
    }
    acc
}
";
    let report = audit_source("crates/data/src/bad.rs", "data", src);
    // The violation survives, and the waiver itself is flagged as stale.
    assert_eq!(hits(&report.violations, Rule::HashIter).len(), 1);
    assert_eq!(hits(&report.violations, Rule::Waiver).len(), 1);
}

#[test]
fn waiver_without_reason_is_a_violation() {
    let src = "\
fn f() {
    // cqc-audit: allow(hash-iter)
}
";
    let report = audit_source("crates/data/src/bad.rs", "data", src);
    let found = hits(&report.violations, Rule::Waiver);
    assert_eq!(found.len(), 1, "{:?}", report.violations);
    assert_eq!(found[0].line, 2);
}

#[test]
fn waiver_only_silences_the_named_rule() {
    let src = "\
fn handle(line: &str) -> u64 {
    // cqc-audit: allow(hash-iter) — wrong rule
    line.trim().parse().unwrap()
}
";
    let report = audit_source("crates/net/src/server.rs", "net", src);
    assert_eq!(hits(&report.violations, Rule::ServePanic).len(), 1);
    assert_eq!(hits(&report.violations, Rule::Waiver).len(), 1);
}

// ---- unsafe containment (temp-tree, full `audit()` walk) -------------

/// Lay out a minimal workspace under a unique temp dir.
fn scratch_tree(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = std::env::temp_dir().join(format!("cqc-audit-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    for (rel, contents) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, contents).unwrap();
    }
    root
}

const RUNTIME_ROOT: &str = "#![deny(unsafe_code)]\npub mod pool;\n";

#[test]
fn a_second_unsafe_region_is_caught_by_the_inventory() {
    let pool_two_regions = "\
#![allow(unsafe_code)]
pub fn a() {
    unsafe { std::ptr::null::<u8>().read_volatile() };
}
pub fn b() {
    unsafe { std::ptr::null::<u8>().read_volatile() };
}
";
    let root = scratch_tree(
        "second-unsafe",
        &[
            ("crates/runtime/src/lib.rs", RUNTIME_ROOT),
            ("crates/runtime/src/pool.rs", pool_two_regions),
            (
                "tests/golden/unsafe_inventory.txt",
                "crates/runtime/src/pool.rs unsafe_regions=1\n",
            ),
        ],
    );
    let report = audit(&root).unwrap();
    let found = hits(&report.violations, Rule::UnsafeCode);
    assert_eq!(found.len(), 1, "{:?}", report.violations);
    assert_eq!(found[0].file, "crates/runtime/src/pool.rs");
    assert!(found[0].message.contains("golden inventory says 1"));
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn unsafe_outside_the_inventory_is_caught() {
    let root = scratch_tree(
        "stray-unsafe",
        &[
            ("crates/runtime/src/lib.rs", RUNTIME_ROOT),
            (
                "crates/runtime/src/pool.rs",
                "#![allow(unsafe_code)]\npub fn a() {\n    unsafe { std::ptr::null::<u8>().read_volatile() };\n}\n",
            ),
            (
                "crates/data/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f() {\n    unsafe { std::ptr::null::<u8>().read_volatile() };\n}\n",
            ),
            (
                "tests/golden/unsafe_inventory.txt",
                "crates/runtime/src/pool.rs unsafe_regions=1\n",
            ),
        ],
    );
    let report = audit(&root).unwrap();
    let found = hits(&report.violations, Rule::UnsafeCode);
    assert_eq!(found.len(), 1, "{:?}", report.violations);
    assert_eq!(found[0].file, "crates/data/src/lib.rs");
    assert!(found[0].message.contains("golden inventory does not list"));
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn missing_root_attribute_is_a_violation() {
    let root = scratch_tree(
        "no-forbid",
        &[
            ("crates/data/src/lib.rs", "pub fn f() {}\n"),
            ("tests/golden/unsafe_inventory.txt", "\n"),
        ],
    );
    let report = audit(&root).unwrap();
    let found = hits(&report.violations, Rule::UnsafeCode);
    assert_eq!(found.len(), 1, "{:?}", report.violations);
    assert_eq!(found[0].file, "crates/data/src/lib.rs");
    assert!(found[0].message.contains("forbid(unsafe_code)"));
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn allow_unsafe_outside_runtime_is_a_violation() {
    let root = scratch_tree(
        "allow-escape",
        &[
            (
                "crates/data/src/lib.rs",
                "#![forbid(unsafe_code)]\npub mod esc;\n",
            ),
            (
                "crates/data/src/esc.rs",
                "#![allow(unsafe_code)]\npub fn f() {}\n",
            ),
            ("tests/golden/unsafe_inventory.txt", "\n"),
        ],
    );
    let report = audit(&root).unwrap();
    let found = hits(&report.violations, Rule::UnsafeCode);
    assert_eq!(found.len(), 1, "{:?}", report.violations);
    assert_eq!(found[0].file, "crates/data/src/esc.rs");
    assert_eq!(found[0].line, 1);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn clean_scratch_tree_is_clean() {
    let root = scratch_tree(
        "clean",
        &[
            (
                "crates/data/src/lib.rs",
                "#![forbid(unsafe_code)]\npub fn f(b: &std::collections::BTreeMap<u32, u32>) -> u32 {\n    b.values().sum()\n}\n",
            ),
            ("tests/golden/unsafe_inventory.txt", "\n"),
        ],
    );
    let report = audit(&root).unwrap();
    assert!(report.is_clean(), "{:?}", report.violations);
    assert_eq!(report.files_scanned, 1);
    std::fs::remove_dir_all(&root).unwrap();
}
