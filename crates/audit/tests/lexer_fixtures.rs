//! Lexer fixtures: the rule scans must never fire on text that lives
//! inside comments, strings, or char literals, and the waiver grammar
//! must round-trip through the comment stream.

use cqc_audit::lexer::{lex, TokKind};
use cqc_audit::rules::{parse_waiver, Rule, WaiverParse};
use cqc_audit::{audit_source, ALL_RULES};

/// Identifier texts of the lexed token stream.
fn idents(src: &str) -> Vec<String> {
    lex(src)
        .tokens
        .into_iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text)
        .collect()
}

#[test]
fn nested_block_comments_are_stripped() {
    let src = "/* outer /* unsafe HashMap */ still comment */ fn ok() {}\n";
    let ids = idents(src);
    assert_eq!(ids, ["fn", "ok"]);
}

#[test]
fn block_comment_spanning_lines_keeps_line_numbers() {
    let src = "/* line1\nline2\nline3 */\nfn after() {}\n";
    let lexed = lex(src);
    let f = lexed.tokens.iter().find(|t| t.text == "fn").unwrap();
    assert_eq!(f.line, 4);
}

#[test]
fn raw_strings_hide_their_contents() {
    // A raw string containing would-be violations: the scanner must see a
    // single literal token, not `unsafe` / `HashMap` identifiers.
    let src = r####"fn f() -> &'static str { r#"unsafe { HashMap::new() } thread_rng()"# }"####;
    let ids = idents(src);
    assert!(!ids.contains(&"unsafe".to_string()), "ids = {ids:?}");
    assert!(!ids.contains(&"HashMap".to_string()), "ids = {ids:?}");
    // And no rule fires on it, in any crate.
    let report = audit_source("crates/data/src/x.rs", "data", src);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

#[test]
fn cooked_strings_with_comment_markers_are_literals() {
    // `//` inside a string is not a comment: the `fn after` must survive,
    // and no waiver comment must be parsed out of the string.
    let src =
        "fn f() -> &'static str { \"// cqc-audit: allow(hash-iter) — nope\" }\nfn after() {}\n";
    let lexed = lex(src);
    assert!(lexed.comments.is_empty(), "{:?}", lexed.comments);
    let ids = idents(src);
    assert!(ids.contains(&"after".to_string()));
}

#[test]
fn escaped_quotes_do_not_end_strings() {
    let src = "fn f() -> String { format!(\"a \\\" unsafe b\") }\n";
    let ids = idents(src);
    assert!(!ids.contains(&"unsafe".to_string()), "ids = {ids:?}");
}

#[test]
fn char_literals_and_lifetimes_are_distinguished() {
    let src = "fn f<'a>(x: &'a str) -> char { let c = 'x'; let q = '\\''; c }\n";
    let lexed = lex(src);
    // Lifetime names survive as tokens; char literal contents never do.
    let texts: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
    assert!(texts.contains(&"'a"), "lifetime ident lost: {texts:?}");
    let lits = lexed
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Literal)
        .count();
    assert!(lits >= 2, "expected the two char literals: {texts:?}");
}

#[test]
fn range_punctuation_is_not_a_float() {
    // `0..n` must lex as number, punct, ident — not swallow the dots.
    let src = "fn f(n: usize) { for i in 0..n { let _ = i; } }\n";
    let ids = idents(src);
    assert!(ids.contains(&"n".to_string()));
}

#[test]
fn line_comments_are_captured_with_lines() {
    let src = "fn a() {}\n// first\nfn b() {}\n// second\n";
    let lexed = lex(src);
    assert_eq!(lexed.comments.len(), 2);
    assert_eq!(lexed.comments[0].line, 2);
    assert_eq!(lexed.comments[1].line, 4);
}

// ---- waiver grammar ---------------------------------------------------

fn parse(text: &str) -> WaiverParse {
    let lexed = lex(&format!("{text}\nfn f() {{}}\n"));
    assert_eq!(lexed.comments.len(), 1, "fixture must be one comment");
    parse_waiver(&lexed.comments[0])
}

#[test]
fn waiver_with_em_dash_reason_parses() {
    match parse("// cqc-audit: allow(hash-iter) — commutative fold") {
        WaiverParse::Ok(w) => {
            assert_eq!(w.rules, vec![Rule::HashIter]);
            assert_eq!(w.reason, "commutative fold");
        }
        other => panic!("expected Ok, got {other:?}"),
    }
}

#[test]
fn waiver_with_ascii_separator_parses() {
    match parse("// cqc-audit: allow(wall-clock, serve-panic) -- init-time only") {
        WaiverParse::Ok(w) => {
            assert_eq!(w.rules, vec![Rule::WallClock, Rule::ServePanic]);
            assert_eq!(w.reason, "init-time only");
        }
        other => panic!("expected Ok, got {other:?}"),
    }
}

#[test]
fn waiver_without_reason_is_malformed() {
    assert!(matches!(
        parse("// cqc-audit: allow(hash-iter)"),
        WaiverParse::Malformed(_)
    ));
    assert!(matches!(
        parse("// cqc-audit: allow(hash-iter) — "),
        WaiverParse::Malformed(_)
    ));
}

#[test]
fn waiver_with_unknown_rule_is_malformed() {
    assert!(matches!(
        parse("// cqc-audit: allow(no-such-rule) — because"),
        WaiverParse::Malformed(_)
    ));
}

#[test]
fn ordinary_comments_are_not_waivers() {
    assert!(matches!(
        parse("// a perfectly ordinary comment"),
        WaiverParse::NotAWaiver
    ));
}

#[test]
fn rule_names_round_trip() {
    for rule in ALL_RULES {
        assert_eq!(Rule::from_name(rule.name()), Some(rule));
    }
    assert_eq!(Rule::from_name("no-such-rule"), None);
}
