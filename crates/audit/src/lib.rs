//! # cqc-audit — determinism & unsafety static analysis for this workspace
//!
//! The repository's value proposition is *bit-identical estimates* across
//! 1/2/N threads, shard counts, and wire protocols. Test matrices
//! (`tests/parallel_determinism.rs`, `crates/net/tests/wire_determinism.rs`)
//! observe the *consequences* of that contract; this crate enforces its
//! *preconditions* at the source level, so a regression is visible before
//! it ships rather than after it flakes.
//!
//! It is std-only (the workspace has no crates.io access, hence no
//! `syn`/`clippy`): a small hand-written [`lexer`] strips comments
//! (including nested block comments), string/char/raw-string literals and
//! numbers, and the [`engine`] token-scans what is left against six
//! [`rules`]:
//!
//! | rule | what it catches |
//! |------|-----------------|
//! | `hash-iter` | iteration over `HashMap`/`HashSet` in estimate-path crates |
//! | `ambient-rng` | `thread_rng`, `rand::random`, `RandomState`, `from_entropy` |
//! | `wall-clock` | `Instant::now` / `SystemTime` anywhere outside `cqc-obs::clock` |
//! | `unsafe-code` | missing `forbid(unsafe_code)` roots, un-blessed `unsafe` regions |
//! | `serve-panic` | `unwrap`/`expect`/`panic!` on the serve request path |
//! | `raw-spawn` | `thread::spawn`/`scope` outside `runtime` and `net` |
//!
//! A finding is silenced only by an in-source waiver carrying a written
//! reason (`// cqc-audit: allow(rule) — reason`); stale waivers are
//! themselves violations. The audit runs three ways: `cqc audit` (exit
//! codes 0 clean / 1 violations / 2 usage), the workspace test
//! `tests/audit_clean.rs` (so plain `cargo test` gates it), and a CI leg
//! that uploads `AUDIT_report.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod report;
pub mod rules;

pub use engine::{audit, audit_source, AuditReport, UnsafeSite, Violation, UNSAFE_INVENTORY_PATH};
pub use report::{render_json, render_text};
pub use rules::{Rule, ALL_RULES};
