//! A small Rust lexer sufficient for token-level static analysis.
//!
//! The workspace has no crates.io access, so there is no `syn` and no
//! `clippy` here; instead this module tokenises Rust source *correctly
//! enough* that rule scanning over the token stream can never be fooled by
//! token text appearing inside literals or comments. Concretely it strips:
//!
//! - line comments (`//`, `///`, `//!`) — kept aside for waiver parsing,
//! - block comments (`/* … */`), **including nesting**, which Rust allows,
//! - string literals (`"…"` with escapes) and byte strings (`b"…"`),
//! - raw strings (`r"…"`, `r#"…"#`, … any number of hashes, plus `br…`),
//! - char literals (`'a'`, `'\n'`, `'\''`) while still lexing lifetimes
//!   (`'static`) as ordinary tokens,
//! - numeric literals.
//!
//! Everything that survives is an [`Tok`] with a 1-based line number, so a
//! rule match can be reported as `file:line`. Identifiers keep their text;
//! punctuation is one token per character except `::`, which is glued into
//! a single token because every path-based rule pattern needs it.

/// What kind of token a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `for`, `unsafe`, `r#type`, …).
    Ident,
    /// A punctuation token: one character, except the glued `::`.
    Punct,
    /// A literal (string/char/number). The text is replaced by a
    /// placeholder so rule scans can never match literal *content*.
    Literal,
}

/// A single token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token kind.
    pub kind: TokKind,
    /// Token text (placeholder `"<lit>"` for literals).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: u32,
}

/// A comment (line or block) with the 1-based line on which it starts.
///
/// The text excludes the comment markers themselves (`//`, `/*`, `*/`).
/// Waiver comments (`// cqc-audit: allow(rule) — reason`) are recovered
/// from these by [`crate::rules::parse_waiver`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// 1-based line on which the comment starts.
    pub line: u32,
    /// Comment body without the `//` / `/* */` markers.
    pub text: String,
}

/// The result of lexing one source file.
#[derive(Debug, Clone, Default)]
pub struct Lexed {
    /// Code tokens in source order (literal contents already blanked).
    pub tokens: Vec<Tok>,
    /// Comments in source order (for waiver parsing).
    pub comments: Vec<Comment>,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenise `src`. Never panics: malformed input (an unterminated string,
/// say) simply ends the current token at end-of-file, which is the right
/// behaviour for an auditor that must keep scanning whatever it is fed.
pub fn lex(src: &str) -> Lexed {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    macro_rules! bump_line {
        ($c:expr) => {
            if $c == '\n' {
                line += 1;
            }
        };
    }

    while i < chars.len() {
        let c = chars[i];

        // Whitespace.
        if c.is_whitespace() {
            bump_line!(c);
            i += 1;
            continue;
        }

        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start_line = line;
            i += 2;
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                i += 1;
            }
            out.comments.push(Comment {
                line: start_line,
                text,
            });
            continue;
        }

        // Block comment, with nesting.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            i += 2;
            let mut depth = 1usize;
            let mut text = String::new();
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    text.push_str("/*");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    if depth > 0 {
                        text.push_str("*/");
                    }
                    i += 2;
                } else {
                    bump_line!(chars[i]);
                    text.push(chars[i]);
                    i += 1;
                }
            }
            out.comments.push(Comment {
                line: start_line,
                text,
            });
            continue;
        }

        // Raw strings / raw identifiers / byte strings, all starting with
        // an ident-looking prefix: r"…", r#"…"#, br#"…"#, b"…", b'…', and
        // the raw identifier r#ident.
        if is_ident_start(c) {
            // Possible literal prefixes.
            let (is_r, after_prefix) = match c {
                'r' => (true, i + 1),
                'b' if chars.get(i + 1) == Some(&'r') => (true, i + 2),
                'b' => (false, i + 1),
                _ => (false, i + 1),
            };
            if (c == 'r' || c == 'b') && after_prefix <= chars.len() {
                // Count hashes after the prefix.
                let mut j = after_prefix;
                let mut hashes = 0usize;
                while is_r && chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if is_r && hashes > 0 && chars.get(j).is_some_and(|&ch| is_ident_start(ch)) {
                    // Raw identifier r#type — lex the ident, keep its text.
                    let start_line = line;
                    let mut text = String::new();
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        text.push(chars[j]);
                        j += 1;
                    }
                    out.tokens.push(Tok {
                        kind: TokKind::Ident,
                        text,
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
                if chars.get(j) == Some(&'"') && (is_r || hashes == 0) {
                    if is_r {
                        // Raw (byte) string: runs to `"` followed by
                        // `hashes` hash marks; no escapes.
                        j += 1;
                        let start_line = line;
                        loop {
                            if j >= chars.len() {
                                break;
                            }
                            if chars[j] == '"' {
                                let mut k = j + 1;
                                let mut seen = 0usize;
                                while seen < hashes && chars.get(k) == Some(&'#') {
                                    seen += 1;
                                    k += 1;
                                }
                                if seen == hashes {
                                    j = k;
                                    break;
                                }
                            }
                            bump_line!(chars[j]);
                            j += 1;
                        }
                        out.tokens.push(Tok {
                            kind: TokKind::Literal,
                            text: "<lit>".to_string(),
                            line: start_line,
                        });
                        i = j;
                        continue;
                    } else {
                        // b"…" — fall through to the cooked-string lexer
                        // below by positioning on the quote.
                        let start_line = line;
                        i = lex_cooked_string(&chars, j, &mut line);
                        out.tokens.push(Tok {
                            kind: TokKind::Literal,
                            text: "<lit>".to_string(),
                            line: start_line,
                        });
                        continue;
                    }
                }
                if !is_r && c == 'b' && chars.get(j) == Some(&'\'') {
                    // Byte char b'x'.
                    let start_line = line;
                    i = lex_char_literal(&chars, j, &mut line);
                    out.tokens.push(Tok {
                        kind: TokKind::Literal,
                        text: "<lit>".to_string(),
                        line: start_line,
                    });
                    continue;
                }
            }
            // Ordinary identifier / keyword.
            let start_line = line;
            let mut text = String::new();
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                i += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text,
                line: start_line,
            });
            continue;
        }

        // Cooked string literal.
        if c == '"' {
            let start_line = line;
            i = lex_cooked_string(&chars, i, &mut line);
            out.tokens.push(Tok {
                kind: TokKind::Literal,
                text: "<lit>".to_string(),
                line: start_line,
            });
            continue;
        }

        // Char literal vs lifetime. After a quote: `\` means char literal;
        // a single char followed by a closing quote means char literal;
        // otherwise it is a lifetime (`'static`) — consume the identifier
        // with no closing quote.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_char_lit = match next {
                Some('\\') => true,
                Some(_) => chars.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char_lit {
                let start_line = line;
                i = lex_char_literal(&chars, i, &mut line);
                out.tokens.push(Tok {
                    kind: TokKind::Literal,
                    text: "<lit>".to_string(),
                    line: start_line,
                });
            } else {
                // Lifetime: skip the quote and the identifier.
                let start_line = line;
                let mut text = String::from("'");
                i += 1;
                while i < chars.len() && is_ident_continue(chars[i]) {
                    text.push(chars[i]);
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text,
                    line: start_line,
                });
            }
            continue;
        }

        // Numeric literal: digits plus any alphanumeric suffix (`0xFF`,
        // `1_000u64`, `1.5e-3`). A `.` is consumed only when followed by a
        // digit, so ranges (`0..n`) stay punctuation.
        if c.is_ascii_digit() {
            let start_line = line;
            while i < chars.len() {
                let d = chars[i];
                let part_of_number = d.is_ascii_alphanumeric()
                    || d == '_'
                    || (d == '.' && chars.get(i + 1).is_some_and(|n| n.is_ascii_digit()));
                if part_of_number {
                    i += 1;
                } else {
                    break;
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Literal,
                text: "<lit>".to_string(),
                line: start_line,
            });
            continue;
        }

        // Punctuation. Glue `::` into one token; everything else is single.
        if c == ':' && chars.get(i + 1) == Some(&':') {
            out.tokens.push(Tok {
                kind: TokKind::Punct,
                text: "::".to_string(),
                line,
            });
            i += 2;
            continue;
        }
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }

    out
}

/// Consume a cooked string starting at the opening quote at `chars[start]`;
/// returns the index just past the closing quote (or end of input).
fn lex_cooked_string(chars: &[char], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2, // skip the escaped character, whatever it is
            '"' => return i + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}

/// Consume a char (or byte-char) literal starting at the opening quote at
/// `chars[start]`; returns the index just past the closing quote.
fn lex_char_literal(chars: &[char], start: usize, line: &mut u32) -> usize {
    let mut i = start + 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\'' => return i + 1,
            c => {
                if c == '\n' {
                    *line += 1;
                }
                i += 1;
            }
        }
    }
    i
}
