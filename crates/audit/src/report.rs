//! Rendering an [`AuditReport`] as human-readable diagnostics or as the
//! machine-readable JSON written to `AUDIT_report.json`.
//!
//! The serde shim vendored in this workspace is inert, so the JSON here is
//! emitted by hand — the format is small, flat, and pinned by golden tests
//! (stable field order, arrays sorted by file/line/rule).

use crate::engine::AuditReport;
use crate::rules::ALL_RULES;

/// Render the human-readable diagnostics: one `file:line: [rule] message`
/// per finding, sorted, followed by a one-line summary.
pub fn render_text(report: &AuditReport) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!(
            "{}:{}: [{}] {}\n",
            v.file, v.line, v.rule, v.message
        ));
    }
    let verdict = if report.is_clean() { "clean" } else { "FAILED" };
    out.push_str(&format!(
        "cqc audit: {verdict} — {} violation(s), {} waiver(s), {} unsafe region file(s), \
         {} file(s) scanned\n",
        report.violations.len(),
        report.waived.len(),
        report.unsafe_inventory.len(),
        report.files_scanned,
    ));
    out
}

/// Render the machine-readable JSON report.
pub fn render_json(report: &AuditReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"tool\": \"cqc-audit\",\n");
    out.push_str(&format!(
        "  \"clean\": {},\n",
        if report.is_clean() { "true" } else { "false" }
    ));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str("  \"rules\": [");
    for (i, r) in ALL_RULES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{r}\""));
    }
    out.push_str("],\n");

    out.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"file\": {}, \"line\": {}, \"rule\": \"{}\", \"message\": {}}}",
            json_string(&v.file),
            v.line,
            v.rule,
            json_string(&v.message)
        ));
    }
    out.push_str(if report.violations.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    out.push_str("  \"waivers\": [");
    for (i, w) in report.waived.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"file\": {}, \"line\": {}, \"rule\": \"{}\", \"reason\": {}}}",
            json_string(&w.file),
            w.line,
            w.rule,
            json_string(&w.reason)
        ));
    }
    out.push_str(if report.waived.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    out.push_str("  \"unsafe_inventory\": [");
    for (i, s) in report.unsafe_inventory.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"file\": {}, \"regions\": {}}}",
            json_string(&s.file),
            s.regions
        ));
    }
    out.push_str("],\n");

    out.push_str(&format!(
        "  \"summary\": {{\"violations\": {}, \"waivers\": {}}}\n",
        report.violations.len(),
        report.waived.len()
    ));
    out.push_str("}\n");
    out
}

/// Escape a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
