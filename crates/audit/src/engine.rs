//! The audit engine: file walking, per-file rule scanning, waiver
//! matching, and the golden `unsafe` inventory.
//!
//! The engine is deliberately a *token-level* analysis (see
//! [`crate::lexer`]): it has no type information, so `hash-iter` tracks
//! `HashMap`/`HashSet` bindings by their declarations and propagates the
//! taint through `let` chains within a file. That heuristic is precise on
//! this codebase (every finding is pinned by tests) and errs on the side
//! of flagging — a false positive is silenced with a reviewed waiver, which
//! is exactly the audit trail we want.

use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{parse_waiver, Rule, Waiver, WaiverParse};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// One diagnostic produced by the engine.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// Path relative to the audited root, with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

/// A waiver that silenced at least one violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct AppliedWaiver {
    /// Path relative to the audited root.
    pub file: String,
    /// 1-based line of the waived violation.
    pub line: u32,
    /// The waived rule.
    pub rule: Rule,
    /// The reason given in the waiver comment.
    pub reason: String,
}

/// An entry of the `unsafe` inventory: a file and how many `unsafe`
/// keyword tokens it contains (in non-test code).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnsafeSite {
    /// Path relative to the audited root.
    pub file: String,
    /// Number of `unsafe` keyword occurrences.
    pub regions: usize,
}

/// The complete result of one audit run.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Unwaived violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Violations that were silenced by a waiver, with the reasons.
    pub waived: Vec<AppliedWaiver>,
    /// Every `unsafe` region found, sorted by file.
    pub unsafe_inventory: Vec<UnsafeSite>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl AuditReport {
    /// Whether the tree is clean (no unwaived violations).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Crates whose computations feed estimates: `hash-iter` applies here.
/// (`wall-clock` is stricter — it applies to **every** crate except `obs`,
/// whose `clock` module is the workspace's one sanctioned `Instant::now`
/// site; everything else times through `cqc_obs::Stopwatch`.) The facade
/// crate (`src/`) re-exports the same machinery and is held to the same
/// bar.
const ESTIMATE_PATH_CRATES: [&str; 8] = [
    "automata",
    "core",
    "cqcount",
    "data",
    "dlm",
    "hom",
    "hypergraph",
    "query",
];

/// Crates allowed to spawn raw threads: the deterministic pool lives in
/// `runtime`, and `net` owns the event/worker threads + loadgen connections.
const RAW_SPAWN_EXEMPT: [&str; 2] = ["net", "runtime"];

/// Crates allowed to contain fenced `unsafe` modules: the pool's lifetime
/// erasure in `runtime`, the `poll(2)` shim in `net`. Their roots carry
/// `#![deny(unsafe_code)]` with per-module `allow` escapes; every other
/// crate root must `#![forbid(unsafe_code)]` outright. Both are held to
/// the golden region inventory either way.
const UNSAFE_FENCED_CRATES: [&str; 2] = ["net", "runtime"];

/// Files making up the serve request path: panics here turn one bad
/// request into a dead worker or connection, so `unwrap`/`expect`/`panic!`
/// are waiver-only (init-time code).
const SERVE_PATH_FILES: [&str; 6] = [
    "crates/net/src/conn.rs",
    "crates/net/src/dispatch.rs",
    "crates/net/src/poll.rs",
    "crates/net/src/server.rs",
    "crates/serve/src/lib.rs",
    "crates/serve/src/server.rs",
];

/// Where the golden `unsafe` inventory lives, relative to the root.
pub const UNSAFE_INVENTORY_PATH: &str = "tests/golden/unsafe_inventory.txt";

/// Run the audit over the workspace at `root`.
///
/// Scans `src/` (the facade) and every `crates/*/src/` tree; `tests/`,
/// `benches/`, `examples/`, `shims/` and `target/` are out of scope, as
/// are inline `#[cfg(test)]` modules.
pub fn audit(root: &Path) -> std::io::Result<AuditReport> {
    let mut report = AuditReport::default();
    let mut all_violations: Vec<Violation> = Vec::new();

    for (path, crate_name) in collect_files(root)? {
        let src = std::fs::read_to_string(&path)?;
        let rel = relative_path(root, &path);
        report.files_scanned += 1;
        scan_file(&rel, &crate_name, &src, &mut all_violations, &mut report);
    }

    check_unsafe_inventory(root, &report.unsafe_inventory, &mut all_violations);

    all_violations.sort();
    all_violations.dedup();
    report.violations = all_violations;
    report.waived.sort();
    report.unsafe_inventory.sort();
    Ok(report)
}

/// Audit a single in-memory file (used by the engine's own tests).
pub fn audit_source(rel_path: &str, crate_name: &str, src: &str) -> AuditReport {
    let mut report = AuditReport::default();
    let mut violations = Vec::new();
    report.files_scanned = 1;
    scan_file(rel_path, crate_name, src, &mut violations, &mut report);
    violations.sort();
    violations.dedup();
    report.violations = violations;
    report.waived.sort();
    report.unsafe_inventory.sort();
    report
}

/// The tainted-identifier set for a source text (exposed for the engine's
/// own tests — the taint heuristic is pinned there).
#[doc(hidden)]
pub fn debug_tainted(src: &str) -> Vec<String> {
    let lexed = lex(src);
    let tokens = strip_test_modules(lexed.tokens);
    tainted_idents(&tokens).into_iter().collect()
}

fn relative_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// Collect the `.rs` files in scope, with the crate each belongs to.
/// Sorted by path so every run (and the report) is deterministic.
fn collect_files(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut files = Vec::new();
    let facade = root.join("src");
    if facade.is_dir() {
        walk_rs(&facade, &mut files, "cqcount")?;
    }
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for krate in entries {
            let src = krate.join("src");
            if !src.is_dir() {
                continue;
            }
            let name = krate
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            walk_rs(&src, &mut files, &name)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk_rs(dir: &Path, out: &mut Vec<(PathBuf, String)>, crate_name: &str) -> std::io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs(&path, out, crate_name)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((path.clone(), crate_name.to_string()));
        }
    }
    Ok(())
}

/// Scan one file: apply every applicable rule, collect waivers, and match
/// them. Waived violations land in `report.waived`; unwaived ones are
/// appended to `violations` (along with waiver-hygiene findings).
fn scan_file(
    rel: &str,
    crate_name: &str,
    src: &str,
    violations: &mut Vec<Violation>,
    report: &mut AuditReport,
) {
    let lexed = lex(src);
    let tokens = strip_test_modules(lexed.tokens);

    // Waivers (and malformed waiver attempts).
    let mut waivers: Vec<(Waiver, bool)> = Vec::new(); // (waiver, used)
    let mut raw: Vec<Violation> = Vec::new();
    for comment in &lexed.comments {
        match parse_waiver(comment) {
            WaiverParse::NotAWaiver => {}
            WaiverParse::Ok(w) => waivers.push((w, false)),
            WaiverParse::Malformed(msg) => raw.push(Violation {
                file: rel.to_string(),
                line: comment.line,
                rule: Rule::Waiver,
                message: msg,
            }),
        }
    }

    let is_estimate_path = ESTIMATE_PATH_CRATES.contains(&crate_name);
    let is_serve_path = SERVE_PATH_FILES.contains(&rel);

    if is_estimate_path {
        rule_hash_iter(rel, &tokens, &mut raw);
    }
    // Wall-clock reads are confined to `cqc-obs::clock` (the Stopwatch and
    // the trace epoch); every other crate must time through it.
    if crate_name != "obs" {
        rule_wall_clock(rel, &tokens, &mut raw);
    }
    rule_ambient_rng(rel, &tokens, &mut raw);
    if !RAW_SPAWN_EXEMPT.contains(&crate_name) {
        rule_raw_spawn(rel, &tokens, &mut raw);
    }
    if is_serve_path {
        rule_serve_panic(rel, &tokens, &mut raw);
    }
    rule_unsafe(rel, crate_name, &tokens, &mut raw, report);

    // Match violations against waivers: a waiver at line L covers lines L
    // and L+1 for the rules it names.
    for v in raw {
        let mut waived = false;
        for (w, used) in waivers.iter_mut() {
            if w.rules.contains(&v.rule) && (w.line == v.line || w.line + 1 == v.line) {
                *used = true;
                waived = true;
                report.waived.push(AppliedWaiver {
                    file: v.file.clone(),
                    line: v.line,
                    rule: v.rule,
                    reason: w.reason.clone(),
                });
                break;
            }
        }
        if !waived {
            violations.push(v);
        }
    }

    // Stale waivers are violations too: they claim a hazard that no longer
    // exists, so they must be removed (or the detector just regressed).
    for (w, used) in waivers {
        if !used {
            violations.push(Violation {
                file: rel.to_string(),
                line: w.line,
                rule: Rule::Waiver,
                message: format!(
                    "waiver for `{}` silences nothing — remove it",
                    w.rules
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// cfg(test) stripping
// ---------------------------------------------------------------------------

/// Remove the token ranges of inline `#[cfg(test)] mod … { … }` items.
/// Integration tests live under `tests/` (never walked); this removes the
/// unit-test modules so test-only code is out of audit scope.
fn strip_test_modules(tokens: Vec<Tok>) -> Vec<Tok> {
    let mut keep = vec![true; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some((attr_end, is_cfg_test)) = parse_attribute(&tokens, i) {
            if is_cfg_test {
                // Skip over any further attributes to the item they gate.
                let mut j = attr_end;
                while let Some((next_end, _)) = parse_attribute(&tokens, j) {
                    j = next_end;
                }
                if let Some(body_end) = test_mod_body_end(&tokens, j) {
                    for k in keep.iter_mut().take(body_end).skip(i) {
                        *k = false;
                    }
                    i = body_end;
                    continue;
                }
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    tokens
        .into_iter()
        .zip(keep)
        .filter_map(|(t, k)| k.then_some(t))
        .collect()
}

/// If `tokens[i]` starts an attribute `#[…]` (not the inner `#![…]` form),
/// return `(index just past it, attribute contains cfg(test))`.
fn parse_attribute(tokens: &[Tok], i: usize) -> Option<(usize, bool)> {
    if tokens.get(i)?.text != "#" || tokens.get(i + 1)?.text != "[" {
        return None;
    }
    let mut depth = 0usize;
    let mut j = i + 1;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut saw_not = false;
    while j < tokens.len() {
        match tokens[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some((j + 1, saw_cfg && saw_test && !saw_not));
                }
            }
            "cfg" => saw_cfg = true,
            "test" => saw_test = true,
            "not" => saw_not = true,
            _ => {}
        }
        j += 1;
    }
    None
}

/// If `tokens[i..]` is `(pub)? mod name { … }`, return the index just past
/// the closing brace.
fn test_mod_body_end(tokens: &[Tok], mut i: usize) -> Option<usize> {
    if tokens.get(i)?.text == "pub" {
        i += 1;
        // possible pub(crate)
        if tokens.get(i)?.text == "(" {
            while tokens.get(i)?.text != ")" {
                i += 1;
            }
            i += 1;
        }
    }
    if tokens.get(i)?.text != "mod" {
        return None;
    }
    i += 1; // mod name
    i += 1; // expect `{` (a `mod name;` declaration has no body to strip)
    if tokens.get(i)?.text != "{" {
        return None;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Rule: hash-iter
// ---------------------------------------------------------------------------

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];
const ITER_METHODS: [&str; 8] = [
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "iter",
    "iter_mut",
    "keys",
    "values",
];

fn is_hash_type(text: &str) -> bool {
    HASH_TYPES.contains(&text)
}

/// Identifiers bound (or propagated) to a `HashMap`/`HashSet` value.
///
/// Three sources of taint, run to a fixpoint:
/// - `name : <type mentioning HashMap/HashSet or a tainted ALIAS>` (lets,
///   fields, params). Only *type-looking* (capitalised) identifiers count
///   here, so a struct-literal field init `root: new_id[..]` mentioning a
///   tainted lowercase variable does not taint the field name.
/// - `type Alias = <type mentioning HashMap/HashSet>;`,
/// - `let name = <tainted-base receiver chain>;` — the chain's *base*
///   identifier must be tainted (`let t = tables[c].as_ref()…`); a
///   tainted ident merely passed as an argument does not propagate.
fn tainted_idents(tokens: &[Tok]) -> BTreeSet<String> {
    let mut tainted: BTreeSet<String> = BTreeSet::new();
    loop {
        let before = tainted.len();
        let mut i = 0;
        while i < tokens.len() {
            // `name : … HashMap …` up to a depth-0 terminator.
            if tokens[i].kind == TokKind::Ident
                && tokens.get(i + 1).is_some_and(|t| t.text == ":")
                && type_annotation_is_hashy(tokens, i + 2, &tainted)
            {
                tainted.insert(tokens[i].text.clone());
            }
            // `type Alias = … HashMap …;` taints the alias name, so
            // annotations written against the alias are caught too.
            if tokens[i].text == "type" {
                if let (Some(name), Some(eq)) = (tokens.get(i + 1), tokens.get(i + 2)) {
                    if name.kind == TokKind::Ident && eq.text == "=" {
                        if let Some(end) = expr_end(tokens, i + 3) {
                            let hashy = tokens[i + 3..end].iter().any(|t| {
                                t.kind == TokKind::Ident
                                    && (is_hash_type(&t.text) || is_tainted_type(&t.text, &tainted))
                            });
                            if hashy {
                                tainted.insert(name.text.clone());
                            }
                        }
                    }
                }
            }
            // `let (mut)? name = <base>…;` where the receiver base is
            // tainted (or a hash type, e.g. `HashMap::new()`).
            if tokens[i].text == "let" {
                let mut j = i + 1;
                if tokens.get(j).is_some_and(|t| t.text == "mut") {
                    j += 1;
                }
                if let (Some(name), Some(eq)) = (tokens.get(j), tokens.get(j + 1)) {
                    if name.kind == TokKind::Ident && eq.text == "=" {
                        let mut k = j + 2;
                        while tokens
                            .get(k)
                            .is_some_and(|t| matches!(t.text.as_str(), "&" | "mut" | "*" | "("))
                        {
                            k += 1;
                        }
                        if tokens.get(k).is_some_and(|t| {
                            t.kind == TokKind::Ident
                                && (is_hash_type(&t.text) || tainted.contains(&t.text))
                        }) {
                            tainted.insert(name.text.clone());
                        }
                    }
                }
            }
            i += 1;
        }
        if tainted.len() == before {
            return tainted;
        }
    }
}

/// Whether `text` is a tainted *type-looking* identifier (capitalised —
/// `ExtensionTable`, `PositionIndex`), as opposed to a tainted variable.
fn is_tainted_type(text: &str, tainted: &BTreeSet<String>) -> bool {
    text.starts_with(|c: char| c.is_ascii_uppercase()) && tainted.contains(text)
}

/// Whether the type annotation starting at `tokens[i]` mentions a hash
/// container (or a tainted alias) before its depth-0 terminator.
fn type_annotation_is_hashy(tokens: &[Tok], mut i: usize, tainted: &BTreeSet<String>) -> bool {
    let mut angle = 0i32;
    let mut paren = 0i32;
    while i < tokens.len() {
        let t = &tokens[i];
        match t.text.as_str() {
            "<" => angle += 1,
            ">" => {
                if angle == 0 {
                    return false; // comparison, not a generic
                }
                angle -= 1;
            }
            "(" | "[" => paren += 1,
            ")" | "]" => {
                if paren == 0 {
                    return false;
                }
                paren -= 1;
            }
            "=" | ";" | "{" => {
                if angle == 0 && paren == 0 {
                    return false;
                }
            }
            "," => {
                if angle == 0 && paren == 0 {
                    return false;
                }
            }
            _ => {
                if t.kind == TokKind::Ident
                    && (is_hash_type(&t.text) || is_tainted_type(&t.text, tainted))
                {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}

/// The end (exclusive) of the expression starting at `tokens[i]`: the
/// first `;` at brace/paren/bracket depth 0.
fn expr_end(tokens: &[Tok], mut i: usize) -> Option<usize> {
    let mut depth = 0i32;
    while i < tokens.len() {
        match tokens[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => depth -= 1,
            ";" if depth == 0 => return Some(i),
            _ => {}
        }
        if depth < 0 {
            return Some(i);
        }
        i += 1;
    }
    Some(tokens.len())
}

fn rule_hash_iter(rel: &str, tokens: &[Tok], out: &mut Vec<Violation>) {
    let tainted = tainted_idents(tokens);

    // `.iter()` / `.keys()` / … whose receiver chain mentions a tainted
    // identifier (or a hash type directly).
    let mut i = 1;
    while i + 1 < tokens.len() {
        if tokens[i].text == "."
            && tokens[i + 1].kind == TokKind::Ident
            && ITER_METHODS.contains(&tokens[i + 1].text.as_str())
            && tokens.get(i + 2).is_some_and(|t| t.text == "(")
        {
            if let Some(name) = receiver_mentions(tokens, i, &tainted) {
                out.push(Violation {
                    file: rel.to_string(),
                    line: tokens[i + 1].line,
                    rule: Rule::HashIter,
                    message: format!(
                        "`.{}()` on `HashMap`/`HashSet`-typed `{}` — hash iteration order is \
                         nondeterministic",
                        tokens[i + 1].text,
                        name
                    ),
                });
            }
        }
        i += 1;
    }

    // `for pat in <expr> {` where the expression mentions a tainted
    // identifier in receiver position (not behind a further `.method`).
    let mut i = 0;
    while i < tokens.len() {
        if tokens[i].text == "for" {
            if let Some(in_pos) = tokens[i..]
                .iter()
                .position(|t| t.text == "in")
                .map(|p| p + i)
            {
                let mut j = in_pos + 1;
                let mut depth = 0i32;
                while j < tokens.len() {
                    let t = &tokens[j];
                    match t.text.as_str() {
                        "(" | "[" => depth += 1,
                        ")" | "]" => depth -= 1,
                        "{" if depth == 0 => break,
                        _ => {}
                    }
                    let hashy = t.kind == TokKind::Ident
                        && (is_hash_type(&t.text) || tainted.contains(&t.text));
                    // A tainted ident immediately followed by `.` is a
                    // method call on the map (`.len()`, `.get()` …); only
                    // `.iter()`-style calls matter and the scan above
                    // catches those. Everything else (`&map`, `map[k]`,
                    // bare `map`) iterates the container itself.
                    if hashy && tokens.get(j + 1).is_some_and(|n| n.text != ".") {
                        out.push(Violation {
                            file: rel.to_string(),
                            line: tokens[i].line,
                            rule: Rule::HashIter,
                            message: format!(
                                "`for` loop over `HashMap`/`HashSet`-typed `{}` — hash iteration \
                                 order is nondeterministic",
                                t.text
                            ),
                        });
                        break;
                    }
                    j += 1;
                }
            }
        }
        i += 1;
    }
}

/// Walk the receiver chain backwards from the `.` at `tokens[dot]`;
/// return the first tainted identifier (or hash type name) mentioned.
fn receiver_mentions(tokens: &[Tok], dot: usize, tainted: &BTreeSet<String>) -> Option<String> {
    let mut i = dot;
    let mut depth = 0i32;
    while i > 0 {
        i -= 1;
        let t = &tokens[i];
        match t.text.as_str() {
            ")" | "]" => depth += 1,
            "(" | "[" => {
                if depth == 0 {
                    return None; // start of an enclosing call — chain ends
                }
                depth -= 1;
            }
            "." | "::" | "?" | "&" => {}
            // keywords end the receiver chain (`for x in map.iter()` must
            // not walk past `in` into the loop pattern)
            "in" | "let" | "return" | "if" | "else" | "match" | "while" | "for" | "loop"
            | "move" | "mut" | "await" => {
                if depth == 0 {
                    return None;
                }
            }
            _ => {
                if depth == 0 {
                    if t.kind == TokKind::Ident {
                        if is_hash_type(&t.text) || tainted.contains(&t.text) {
                            return Some(t.text.clone());
                        }
                        // identifiers inside the chain (field/method names)
                        // are fine to step over
                    } else if t.kind == TokKind::Punct {
                        return None; // `;`, `{`, `=` … — chain ends
                    }
                } else if t.kind == TokKind::Ident
                    && (is_hash_type(&t.text) || tainted.contains(&t.text))
                {
                    // tainted ident inside an index/call argument, e.g.
                    // `tables[children[0]]` — still the receiver
                    return Some(t.text.clone());
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Rule: ambient-rng
// ---------------------------------------------------------------------------

fn rule_ambient_rng(rel: &str, tokens: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "thread_rng" | "from_entropy" | "RandomState" => true,
            "random" => i >= 2 && tokens[i - 1].text == "::" && tokens[i - 2].text == "rand",
            _ => false,
        };
        if flagged {
            out.push(Violation {
                file: rel.to_string(),
                line: t.line,
                rule: Rule::AmbientRng,
                message: format!(
                    "ambient randomness `{}` — all RNG must derive from \
                     `cqc_runtime::split_seed`",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: wall-clock
// ---------------------------------------------------------------------------

fn rule_wall_clock(rel: &str, tokens: &[Tok], out: &mut Vec<Violation>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "SystemTime" => true,
            "Instant" => {
                tokens.get(i + 1).is_some_and(|a| a.text == "::")
                    && tokens.get(i + 2).is_some_and(|b| b.text == "now")
            }
            _ => false,
        };
        if flagged {
            out.push(Violation {
                file: rel.to_string(),
                line: t.line,
                rule: Rule::WallClock,
                message: format!(
                    "wall-clock read `{}` outside cqc-obs::clock — time through \
                     `cqc_obs::Stopwatch` so timing can never influence results",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: raw-spawn
// ---------------------------------------------------------------------------

fn rule_raw_spawn(rel: &str, tokens: &[Tok], out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        if tokens[i].text == "thread"
            && tokens.get(i + 1).is_some_and(|t| t.text == "::")
            && tokens
                .get(i + 2)
                .is_some_and(|t| t.text == "spawn" || t.text == "scope")
        {
            out.push(Violation {
                file: rel.to_string(),
                line: tokens[i].line,
                rule: Rule::RawSpawn,
                message: format!(
                    "raw `thread::{}` outside `runtime`/`net` — parallelism must go through \
                     the worker pool",
                    tokens[i + 2].text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: serve-panic
// ---------------------------------------------------------------------------

fn rule_serve_panic(rel: &str, tokens: &[Tok], out: &mut Vec<Violation>) {
    for i in 0..tokens.len() {
        let t = &tokens[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "unwrap" | "expect" => {
                i >= 1
                    && tokens[i - 1].text == "."
                    && tokens.get(i + 1).is_some_and(|n| n.text == "(")
            }
            "panic" | "unreachable" => tokens.get(i + 1).is_some_and(|n| n.text == "!"),
            _ => false,
        };
        if flagged {
            out.push(Violation {
                file: rel.to_string(),
                line: t.line,
                rule: Rule::ServePanic,
                message: format!(
                    "`{}` on the serve request path — one bad request must not kill a \
                     worker or connection",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Rule: unsafe-code (root attributes, allowances, inventory)
// ---------------------------------------------------------------------------

fn rule_unsafe(
    rel: &str,
    crate_name: &str,
    tokens: &[Tok],
    out: &mut Vec<Violation>,
    report: &mut AuditReport,
) {
    // Crate roots must pin their unsafe policy.
    let is_root = rel == "src/lib.rs" || rel == format!("crates/{crate_name}/src/lib.rs");
    if is_root {
        let has_forbid = has_inner_attr(tokens, "forbid");
        let has_deny = has_inner_attr(tokens, "deny");
        if UNSAFE_FENCED_CRATES.contains(&crate_name) {
            if !has_deny && !has_forbid {
                out.push(Violation {
                    file: rel.to_string(),
                    line: 1,
                    rule: Rule::UnsafeCode,
                    message: "crate root must carry `#![deny(unsafe_code)]`".to_string(),
                });
            }
        } else if !has_forbid {
            out.push(Violation {
                file: rel.to_string(),
                line: 1,
                rule: Rule::UnsafeCode,
                message: "crate root must carry `#![forbid(unsafe_code)]`".to_string(),
            });
        }
    }

    // `#[allow(unsafe_code)]` escapes are only legitimate inside the
    // fenced crates (`runtime`'s pool lifetime erasure, `net`'s poll shim).
    if !UNSAFE_FENCED_CRATES.contains(&crate_name) {
        for i in 0..tokens.len() {
            if tokens[i].text == "allow"
                && tokens.get(i + 1).is_some_and(|t| t.text == "(")
                && tokens.get(i + 2).is_some_and(|t| t.text == "unsafe_code")
            {
                out.push(Violation {
                    file: rel.to_string(),
                    line: tokens[i].line,
                    rule: Rule::UnsafeCode,
                    message: "`allow(unsafe_code)` outside `runtime`/`net` — unsafe stays \
                              contained in the fenced modules"
                        .to_string(),
                });
            }
        }
    }

    // Inventory: count `unsafe` keyword tokens.
    let regions = tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text == "unsafe")
        .count();
    if regions > 0 {
        report.unsafe_inventory.push(UnsafeSite {
            file: rel.to_string(),
            regions,
        });
    }
}

/// Whether the token stream contains `#![<which>(unsafe_code)]`.
fn has_inner_attr(tokens: &[Tok], which: &str) -> bool {
    tokens.windows(7).any(|w| {
        w[0].text == "#"
            && w[1].text == "!"
            && w[2].text == "["
            && w[3].text == which
            && w[4].text == "("
            && w[5].text == "unsafe_code"
            && w[6].text == ")"
    })
}

/// Compare the collected inventory against the golden file at
/// [`UNSAFE_INVENTORY_PATH`]. Any drift — a new `unsafe` region, a count
/// change, or a stale entry — is a violation; deliberate changes are
/// blessed with `UPDATE_GOLDEN=1 cargo test --test audit_clean`.
fn check_unsafe_inventory(root: &Path, actual: &[UnsafeSite], out: &mut Vec<Violation>) {
    let golden_path = root.join(UNSAFE_INVENTORY_PATH);
    let golden_text = match std::fs::read_to_string(&golden_path) {
        Ok(t) => t,
        Err(_) => {
            out.push(Violation {
                file: UNSAFE_INVENTORY_PATH.to_string(),
                line: 1,
                rule: Rule::UnsafeCode,
                message: "golden unsafe inventory is missing — bless it with \
                          `UPDATE_GOLDEN=1 cargo test --test audit_clean`"
                    .to_string(),
            });
            return;
        }
    };
    let golden = parse_unsafe_inventory(&golden_text);
    let actual_map: BTreeMap<&str, usize> = actual
        .iter()
        .map(|s| (s.file.as_str(), s.regions))
        .collect();
    for site in actual {
        match golden.get(site.file.as_str()) {
            Some(&n) if n == site.regions => {}
            Some(&n) => out.push(Violation {
                file: site.file.clone(),
                line: 1,
                rule: Rule::UnsafeCode,
                message: format!(
                    "{} `unsafe` region(s), golden inventory says {n} — a new unsafe region \
                     cannot appear silently (bless deliberate changes with UPDATE_GOLDEN=1)",
                    site.regions
                ),
            }),
            None => out.push(Violation {
                file: site.file.clone(),
                line: 1,
                rule: Rule::UnsafeCode,
                message: format!(
                    "{} `unsafe` region(s) in a file the golden inventory does not list \
                     (bless deliberate changes with UPDATE_GOLDEN=1)",
                    site.regions
                ),
            }),
        }
    }
    for (file, _) in golden {
        if !actual_map.contains_key(file.as_str()) {
            out.push(Violation {
                file,
                line: 1,
                rule: Rule::UnsafeCode,
                message: "listed in the golden unsafe inventory but contains no `unsafe` — \
                          re-bless with UPDATE_GOLDEN=1"
                    .to_string(),
            });
        }
    }
}

/// Parse the golden inventory format: one `path unsafe_regions=N` per
/// line, `#` comments and blank lines ignored.
pub fn parse_unsafe_inventory(text: &str) -> BTreeMap<String, usize> {
    let mut map = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((path, rest)) = line.split_once(' ') {
            if let Some(n) = rest.trim().strip_prefix("unsafe_regions=") {
                if let Ok(n) = n.trim().parse::<usize>() {
                    map.insert(path.to_string(), n);
                }
            }
        }
    }
    map
}

/// Render the inventory in the golden-file format.
pub fn render_unsafe_inventory(sites: &[UnsafeSite]) -> String {
    let mut out = String::from(
        "# Golden inventory of `unsafe` regions (cqc-audit).\n\
         # A second unsafe region cannot appear without re-blessing this file:\n\
         # UPDATE_GOLDEN=1 cargo test --test audit_clean\n",
    );
    for site in sites {
        out.push_str(&format!("{} unsafe_regions={}\n", site.file, site.regions));
    }
    out
}
