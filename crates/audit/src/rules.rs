//! The rule catalogue and the waiver-comment grammar.
//!
//! Each rule enforces one clause of the workspace's determinism / safety
//! contract (see `docs/ARCHITECTURE.md`, "Static analysis"). A violation
//! can be waived at the site with a comment:
//!
//! ```text
//! // cqc-audit: allow(hash-iter) — summed into a u128, order cannot escape
//! ```
//!
//! The waiver must name the rule(s) it silences and must carry a non-empty
//! reason after an `—`/`--`/`-` separator; it covers violations on its own
//! line (trailing comment) and on the line immediately below (comment
//! above the offending statement). A waiver that silences nothing is
//! itself reported, so stale waivers cannot accumulate.

use crate::lexer::Comment;
use std::fmt;

/// The audited rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Iteration over `HashMap`/`HashSet` in an estimate-path crate:
    /// hash-iteration order is nondeterministic and may reach estimates
    /// or output ordering.
    HashIter,
    /// Ambient randomness (`thread_rng`, `rand::random`, `RandomState`,
    /// `from_entropy`): all RNG must derive from `cqc_runtime::split_seed`.
    AmbientRng,
    /// Wall-clock reads (`Instant::now`, `SystemTime`) anywhere outside
    /// `cqc-obs::clock`: all timing flows through `cqc_obs::Stopwatch`.
    WallClock,
    /// `unsafe` containment: crate roots must carry
    /// `forbid`/`deny(unsafe_code)` and the golden inventory of `unsafe`
    /// regions must not grow.
    UnsafeCode,
    /// `unwrap()`/`expect()`/`panic!` on the serve request path.
    ServePanic,
    /// Raw `thread::spawn` / `thread::scope` outside `runtime` and `net`:
    /// parallelism must go through the worker pool so width bounds and
    /// determinism hold.
    RawSpawn,
    /// Problems with waivers themselves: unknown rule name, missing
    /// reason, or a waiver that silences nothing.
    Waiver,
}

/// Every rule, in the order they are reported in.
pub const ALL_RULES: [Rule; 7] = [
    Rule::HashIter,
    Rule::AmbientRng,
    Rule::WallClock,
    Rule::UnsafeCode,
    Rule::ServePanic,
    Rule::RawSpawn,
    Rule::Waiver,
];

impl Rule {
    /// The kebab-case name used in diagnostics and waiver comments.
    pub fn name(self) -> &'static str {
        match self {
            Rule::HashIter => "hash-iter",
            Rule::AmbientRng => "ambient-rng",
            Rule::WallClock => "wall-clock",
            Rule::UnsafeCode => "unsafe-code",
            Rule::ServePanic => "serve-panic",
            Rule::RawSpawn => "raw-spawn",
            Rule::Waiver => "waiver",
        }
    }

    /// Parse a rule name as written in a waiver comment.
    pub fn from_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parsed waiver comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// 1-based line of the comment. The waiver covers violations on this
    /// line and on `line + 1`.
    pub line: u32,
    /// The rules this waiver silences.
    pub rules: Vec<Rule>,
    /// The mandatory free-text justification.
    pub reason: String,
}

/// The outcome of looking at one comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaiverParse {
    /// Not a waiver comment at all.
    NotAWaiver,
    /// A well-formed waiver.
    Ok(Waiver),
    /// Something that starts like a waiver but is malformed; the string
    /// says what is wrong (reported as a `waiver` rule violation).
    Malformed(String),
}

/// The marker that introduces a waiver comment.
pub const WAIVER_MARKER: &str = "cqc-audit:";

/// Parse one comment. Waivers look like
/// `cqc-audit: allow(rule-a, rule-b) — reason text`.
pub fn parse_waiver(comment: &Comment) -> WaiverParse {
    let text = comment.text.trim();
    // Doc comments produce leading `/` or `!` in the captured text
    // (`/// x` lexes as a line comment with text `/ x`); strip them so a
    // waiver marker is recognised regardless of comment flavour.
    let text = text.trim_start_matches(['/', '!']).trim_start();
    let Some(rest) = text.strip_prefix(WAIVER_MARKER) else {
        return WaiverParse::NotAWaiver;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return WaiverParse::Malformed(format!(
            "waiver must use `{WAIVER_MARKER} allow(rule) — reason`"
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return WaiverParse::Malformed("waiver is missing `(` after `allow`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return WaiverParse::Malformed("waiver is missing `)` after the rule list".to_string());
    };
    let (rule_list, after) = rest.split_at(close);
    let mut rules = Vec::new();
    for name in rule_list.split(',') {
        let name = name.trim();
        if name.is_empty() {
            continue;
        }
        match Rule::from_name(name) {
            Some(r) => rules.push(r),
            None => {
                return WaiverParse::Malformed(format!("waiver names unknown rule `{name}`"));
            }
        }
    }
    if rules.is_empty() {
        return WaiverParse::Malformed("waiver allows no rules".to_string());
    }
    // Reason: everything after the `)`, once an `—` / `--` / `-` separator
    // is stripped. The separator is required — it keeps the rule list
    // visually distinct from the justification.
    let after = after[1..].trim_start();
    let reason = ["\u{2014}", "--", "-"]
        .iter()
        .find_map(|sep| after.strip_prefix(sep))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return WaiverParse::Malformed(
            "waiver has no reason (expected `— <why this is sound>`)".to_string(),
        );
    }
    WaiverParse::Ok(Waiver {
        line: comment.line,
        rules,
        reason: reason.to_string(),
    })
}
