//! Plan amortisation: `Engine::prepare` + repeated `PreparedQuery::count`
//! versus the legacy one-shot API that re-plans per call.
//!
//! Three benchmark axes per query class:
//! * `prepare`  — the query-side planning cost alone (paid once per query);
//! * `prepared` — data-side evaluation over 4 database snapshots with a
//!   cached plan (the hot path of a repeated-evaluation deployment);
//! * `oneshot`  — the legacy `approx_count_answers` over the same
//!   snapshots, which pays the planning cost on every call.

use cqc_core::{approx_count_answers, ApproxConfig, Engine};
use cqc_data::Structure;
use cqc_query::{parse_query, Query};
use cqc_workloads::{erdos_renyi, graph_database};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn dbs(n: usize) -> Vec<Structure> {
    (0..4u64)
        .map(|i| {
            let mut rng = StdRng::seed_from_u64(100 + i);
            let g = erdos_renyi(n, 3.0 / n as f64, &mut rng);
            graph_database(&g, "E", false)
        })
        .collect()
}

fn queries() -> Vec<(&'static str, Query)> {
    vec![
        (
            "cq_path",
            parse_query("ans(x, y) :- E(x, z), E(z, y)").unwrap(),
        ),
        (
            "dcq_friends",
            parse_query("ans(x) :- E(x, y), E(x, z), y != z").unwrap(),
        ),
        (
            "ecq_asym",
            parse_query("ans(x, y) :- E(x, y), !E(y, x)").unwrap(),
        ),
    ]
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("prepare_vs_oneshot");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));

    let engine = Engine::builder()
        .accuracy(0.25, 0.1)
        .seed(7)
        .build()
        .unwrap();
    let cfg: ApproxConfig = engine.config().clone();
    let snapshots = dbs(24);

    for (name, q) in queries() {
        // Planning cost alone (what amortisation eliminates per call).
        group.bench_with_input(BenchmarkId::new("prepare", name), &q, |b, q| {
            b.iter(|| engine.prepare(q).unwrap().plan_summary())
        });

        // Hot path: evaluation only, plan cached.
        let prepared = engine.prepare(&q).unwrap();
        group.bench_with_input(BenchmarkId::new("prepared", name), &q, |b, _| {
            b.iter(|| {
                snapshots
                    .iter()
                    .map(|db| prepared.count(db).unwrap().estimate)
                    .sum::<f64>()
            })
        });

        // Legacy: plan + evaluate on every call.
        group.bench_with_input(BenchmarkId::new("oneshot", name), &q, |b, q| {
            b.iter(|| {
                snapshots
                    .iter()
                    .map(|db| approx_count_answers(q, db, &cfg).unwrap().estimate)
                    .sum::<f64>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
