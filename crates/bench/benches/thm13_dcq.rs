//! E5 (Theorem 13): FPTRAS for DCQs over ternary relations (unbounded arity).

use cqc_core::{fptras_count, ApproxConfig};
use cqc_workloads::graphs::random_ternary_database;
use cqc_workloads::hyperchain_query;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm13_dcq");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    let spec = hyperchain_query(2, true);
    for (n, facts) in [(12usize, 50usize), (20, 90)] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let db = random_ternary_database(n, facts, &mut rng);
        let cfg = ApproxConfig::new(0.3, 0.1).with_seed(n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| fptras_count(&spec.query, &db, &cfg).unwrap().estimate)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
