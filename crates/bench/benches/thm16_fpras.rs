//! E6 (Theorem 16): FPRAS for CQs of bounded fractional hypertreewidth.

use cqc_core::{fpras_count, ApproxConfig};
use cqc_workloads::{erdos_renyi, footnote4_star_query, graph_database};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm16_fpras");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    let spec = footnote4_star_query(3, false);
    for n in [30usize, 60] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = erdos_renyi(n, 4.0 / n as f64, &mut rng);
        let db = graph_database(&g, "E", false);
        let cfg = ApproxConfig::new(0.25, 0.1).with_seed(n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| fpras_count(&spec.query, &db, &cfg).unwrap().estimate)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
