//! Engine-op cost over the enumerated workload suites: for each Figure-1
//! class, a seeded suite draw is prepared once and then driven through
//! the amortised evaluation surface (`count`, `count_batch`, `sample`)
//! against seeded suite databases — the same operations `cqc suite`
//! times into `BENCH_workloads.json`, here under criterion so per-class
//! regressions show up in `cargo bench` too.
//!
//! A fourth benchmark pins the cost of the enumeration itself (grammar
//! expansion → canonical dedup → class filter), which every fresh
//! process pays once per class.

use cqc_core::Engine;
use cqc_workloads::{class_name, enumerate_class, suite, suite_database, ALL_CLASSES};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    // pay the per-process enumeration before any timed region
    for class in ALL_CLASSES {
        let _ = enumerate_class(class);
    }
    let engine = Engine::builder()
        .accuracy(0.5, 0.25)
        .seed(11)
        .build()
        .expect("engine");
    let dbs = [suite_database(3, 24), suite_database(4, 24)];

    let mut group = c.benchmark_group("workload_suite");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    for class in ALL_CLASSES {
        let drawn = suite(class, 0xBE9C4, 4);
        let prepared: Vec<_> = drawn
            .queries
            .iter()
            .map(|sq| engine.prepare(&sq.query).expect("suite queries prepare"))
            .collect();
        group.bench_function(format!("{}_engine_ops", class_name(class)), |b| {
            b.iter(|| {
                for p in &prepared {
                    p.count(&dbs[0]).expect("count");
                    p.count_batch(&dbs).expect("batch");
                    p.sample(&dbs[0], 2).expect("sample");
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
