//! A1 — Ablation: cost of the colour-coding repetitions `Q` (Lemma 22).
//!
//! The FPTRAS simulates each `EdgeFree` oracle call by `Q` random colouring
//! collections; the paper's worst-case bound is `Q = ⌈log(2Tℓ!/δ)⌉·4^{|Δ|}`.
//! This bench measures how the FPTRAS cost scales with `Q` for the paper's
//! query (1) (one disequality), complementing the accuracy-vs-`Q` series of
//! `report ablation-colour`.

use cqc_core::{fptras_count, ApproxConfig};
use cqc_workloads::{erdos_renyi, graph_database, star_query};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_colour");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    let spec = star_query(2, true); // |Δ| = 1
    let n = 30usize;
    let mut rng = StdRng::seed_from_u64(17);
    let g = erdos_renyi(n, 3.0 / n as f64, &mut rng);
    let db = graph_database(&g, "E", false);
    for q in [1usize, 4, 16, 64] {
        let cfg = ApproxConfig {
            epsilon: 0.3,
            delta: 0.1,
            seed: q as u64,
            colour_repetitions: Some(q),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, _| {
            b.iter(|| fptras_count(&spec.query, &db, &cfg).unwrap().estimate)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
