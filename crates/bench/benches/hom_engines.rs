//! Ablation: homomorphism engines (backtracking vs tree-decomposition DP) —
//! the Hom oracle cost that dominates the FPTRAS inner loop.

use cqc_data::StructureBuilder;
use cqc_hom::{BacktrackingDecider, DecompositionDecider};
use cqc_workloads::erdos_renyi;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hom_engines");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    // pattern: a 6-cycle; target: random digraphs of growing size
    let mut pb = StructureBuilder::new(6);
    pb.relation("E", 2);
    for i in 0..6u32 {
        pb.fact("E", &[i, (i + 1) % 6]).unwrap();
    }
    let pattern = pb.build();
    for n in [20usize, 40, 80] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = erdos_renyi(n, 4.0 / n as f64, &mut rng);
        let mut tb = StructureBuilder::new(n);
        tb.relation("E", 2);
        for (u, v) in g.edges {
            tb.fact("E", &[u as u32, v as u32]).unwrap();
        }
        let target = tb.build();
        let dp = DecompositionDecider::new();
        let bt = BacktrackingDecider::new();
        group.bench_with_input(BenchmarkId::new("decomposition_dp", n), &n, |b, _| {
            b.iter(|| dp.decide(&pattern, &target))
        });
        group.bench_with_input(BenchmarkId::new("backtracking", n), &n, |b, _| {
            b.iter(|| bt.decide(&pattern, &target))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
