//! E3 (Observation 10): Hamiltonian-path DCQ — FPTRAS runtime vs query size
//! (exponential in ‖ϕ‖, polynomial in ‖D‖).

use cqc_core::{fptras_count, hamiltonian_path_query, undirected_graph_database, ApproxConfig};
use cqc_workloads::erdos_renyi;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs10_hampath");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    // a single, small instance: the Obs. 10 construction blows up fast
    {
        let n = 3usize;
        let q = hamiltonian_path_query(n);
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = erdos_renyi(n + 2, 0.6, &mut rng);
        let db = undirected_graph_database(n + 2, &g.undirected_edges());
        let cfg = ApproxConfig {
            epsilon: 0.4,
            delta: 0.25,
            seed: n as u64,
            colour_repetitions: Some(4usize.pow((n * (n - 1) / 2) as u32).min(4096)),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| fptras_count(&q, &db, &cfg).unwrap().estimate)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
