//! A2 — Ablation: the oracle-driven DLM edge counter vs naive Monte-Carlo
//! sampling on a sparse-answer instance.
//!
//! Naive sampling needs ~N^ℓ/|Ans| draws before it sees a single answer; the
//! DLM counter locates the answers through `EdgeFree` restrictions instead.
//! This bench compares the two on the paper's query (1) over a sparse random
//! digraph, at a sample budget where the naive estimator is already slower
//! and still unreliable (see `report ablation-naive` for the accuracy side).

use cqc_core::{fptras_count, naive_monte_carlo, ApproxConfig};
use cqc_workloads::{erdos_renyi, graph_database, star_query};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_dlm");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    let spec = star_query(2, true);
    for n in [40usize, 80] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        // sparse: expected out-degree 1.5, so few vertices have ≥ 2 distinct
        // out-neighbours and the answer set is a small fraction of U(D)
        let g = erdos_renyi(n, 1.5 / n as f64, &mut rng);
        let db = graph_database(&g, "E", false);
        let cfg = ApproxConfig::new(0.3, 0.1).with_seed(n as u64);
        group.bench_with_input(BenchmarkId::new("dlm_fptras", n), &n, |b, _| {
            b.iter(|| fptras_count(&spec.query, &db, &cfg).unwrap().estimate)
        });
        group.bench_with_input(BenchmarkId::new("naive_monte_carlo", n), &n, |b, _| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(n as u64);
                naive_monte_carlo(&spec.query, &db, 20_000, &mut rng)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
