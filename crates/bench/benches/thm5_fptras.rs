//! E1 (Theorem 5): FPTRAS for bounded-treewidth ECQs — runtime vs database size.

use cqc_core::{fptras_count, ApproxConfig};
use cqc_workloads::{erdos_renyi, graph_database, star_query};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm5_fptras");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    let spec = star_query(2, true); // the paper's query (1)
    for n in [20usize, 40, 80] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = erdos_renyi(n, 3.0 / n as f64, &mut rng);
        let db = graph_database(&g, "E", false);
        let cfg = ApproxConfig::new(0.3, 0.1).with_seed(n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| fptras_count(&spec.query, &db, &cfg).unwrap().estimate)
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
