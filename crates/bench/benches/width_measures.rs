//! E10: width-measure computation cost (treewidth, hw, fhw, adaptive width).

use cqc_hypergraph::adaptive::adaptive_width_bounds;
use cqc_hypergraph::fwidth::{minimise_width, WidthMeasure};
use cqc_hypergraph::treewidth::treewidth_exact;
use cqc_hypergraph::Hypergraph;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn grid(rows: usize, cols: usize) -> Hypergraph {
    let mut h = Hypergraph::new(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                h.add_edge(&[id(r, c), id(r, c + 1)]);
            }
            if r + 1 < rows {
                h.add_edge(&[id(r, c), id(r + 1, c)]);
            }
        }
    }
    h
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("width_measures");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    let h = grid(3, 4);
    group.bench_function("treewidth_exact_grid3x4", |b| {
        b.iter(|| treewidth_exact(&h).0)
    });
    group.bench_function("fhw_grid3x4", |b| {
        b.iter(|| minimise_width(&h, WidthMeasure::FractionalHypertreewidth).0)
    });
    group.bench_function("hw_grid3x4", |b| {
        b.iter(|| minimise_width(&h, WidthMeasure::Hypertreewidth).0)
    });
    let small = grid(2, 3);
    group.bench_function("adaptive_width_grid2x3", |b| {
        b.iter(|| adaptive_width_bounds(&small, 1).upper)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
