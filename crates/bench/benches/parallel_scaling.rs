//! Parallel scaling of the deterministic runtime: repetitions/sec at
//! 1/2/4/8 threads on the Theorem 5 FPTRAS workload (colour-coding
//! repetitions fanned out per oracle call) and the Theorem 16 FPRAS
//! workload (Karp–Luby union trials fanned out per automaton node).
//!
//! The estimates are bit-identical across the thread counts (asserted
//! below on every measurement) — only the wall time may change. On
//! single-core hosts every thread count collapses to ≈ 1× by necessity;
//! the recorded `available_parallelism` makes the output interpretable.

use cqc_core::Engine;
use cqc_runtime::{split_seed, Runtime};
use cqc_workloads::{erdos_renyi, footnote4_star_query, graph_database, star_query};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn db(n: usize, seed: u64) -> cqc_data::Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = erdos_renyi(n, 3.0 / n as f64, &mut rng);
    graph_database(&g, "E", false)
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(4));
    println!(
        "parallel_scaling: available_parallelism = {}",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );

    // Theorem 5 colour-coding workload: a DCQ whose oracle calls each run a
    // fixed budget of Q = 64 colouring rounds — the fan-out the runtime
    // parallelises per `EdgeFree` call.
    let dcq = star_query(2, true).query;
    let dcq_db = db(48, 5);
    let mut reference = None;
    for threads in THREAD_COUNTS {
        let engine = Engine::builder()
            .accuracy(0.3, 0.1)
            .seed(11)
            .threads(threads)
            .colour_repetitions(64)
            .build()
            .unwrap();
        let prepared = engine.prepare(&dcq).unwrap();
        let estimate = prepared.count(&dcq_db).unwrap().estimate;
        match reference {
            None => reference = Some(estimate),
            Some(e) => assert_eq!(
                e.to_bits(),
                estimate.to_bits(),
                "determinism violated at {threads} threads"
            ),
        }
        group.bench_with_input(
            BenchmarkId::new("thm5_colour_repetitions", threads),
            &threads,
            |b, _| b.iter(|| prepared.count(&dcq_db).unwrap().estimate),
        );
    }

    // Theorem 16 sampling workload: a CQ forced into the Karp–Luby counter
    // (exact-state budget 0) — the per-node union trials parallelise.
    let cq = footnote4_star_query(2, false).query;
    let cq_db = db(24, 7);
    let mut reference = None;
    for threads in THREAD_COUNTS {
        let engine = Engine::builder()
            .accuracy(0.3, 0.1)
            .seed(13)
            .threads(threads)
            .exact_state_budget(0)
            .build()
            .unwrap();
        let prepared = engine.prepare(&cq).unwrap();
        let estimate = prepared.count(&cq_db).unwrap().estimate;
        match reference {
            None => reference = Some(estimate),
            Some(e) => assert_eq!(
                e.to_bits(),
                estimate.to_bits(),
                "determinism violated at {threads} threads"
            ),
        }
        group.bench_with_input(
            BenchmarkId::new("thm16_union_trials", threads),
            &threads,
            |b, _| b.iter(|| prepared.count(&cq_db).unwrap().estimate),
        );
    }

    // Persistent pool vs per-call scoped spawn: the dispatch tax. A small
    // call (64 cheap items) is dominated by dispatch — the scoped runtime
    // pays a thread spawn per worker per call, the pool only a mutex lock
    // plus a wakeup — which is why the oracle's `work_proxy` serial cutoff
    // dropped from 2048 to 256. A large call amortises dispatch either
    // way, so the pool must show parity there. Results are asserted
    // identical across the two paths (same seed-split streams).
    let pooled = Runtime::new(4);
    let scoped = Runtime::new(4).without_pool();
    let small = |rt: &Runtime| rt.par_map_n(64, |i| split_seed(0xAB, i as u64)).len();
    let large = |rt: &Runtime| {
        rt.par_map_n(8192, |i| {
            (0..64).fold(split_seed(0xCD, i as u64), split_seed)
        })
        .len()
    };
    assert_eq!(
        pooled.par_map_n(64, |i| split_seed(0xAB, i as u64)),
        scoped.par_map_n(64, |i| split_seed(0xAB, i as u64)),
        "pool and scoped paths must agree"
    );
    for (name, rt) in [("pool", pooled), ("scoped_spawn", scoped)] {
        group.bench_with_input(
            BenchmarkId::new("small_call_dispatch_tax", name),
            &rt,
            |b, rt| b.iter(|| small(rt)),
        );
        group.bench_with_input(BenchmarkId::new("large_call_parity", name), &rt, |b, rt| {
            b.iter(|| large(rt))
        });
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
