//! E7 (footnote 4): brute force vs approximate counting for ∃y ⋀ E(y, xᵢ).

use cqc_core::{approx_count_answers, exact_count_answers, ApproxConfig};
use cqc_workloads::{erdos_renyi, footnote4_star_query, graph_database};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("footnote4");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    let n = 40usize;
    let mut rng = StdRng::seed_from_u64(7);
    let g = erdos_renyi(n, 5.0 / n as f64, &mut rng);
    let db = graph_database(&g, "E", false);
    for k in [2usize, 3] {
        let spec = footnote4_star_query(k, false);
        let cfg = ApproxConfig::new(0.3, 0.1).with_seed(k as u64);
        group.bench_with_input(BenchmarkId::new("approx", k), &k, |b, _| {
            b.iter(|| {
                approx_count_answers(&spec.query, &db, &cfg)
                    .unwrap()
                    .estimate
            })
        });
        group.bench_with_input(BenchmarkId::new("bruteforce", k), &k, |b, _| {
            b.iter(|| exact_count_answers(&spec.query, &db))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
