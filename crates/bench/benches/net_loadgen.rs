//! Serving-layer round trips over loopback TCP: the per-request cost of
//! the network front end (HTTP parse + serve dispatch + response write),
//! measured with the deterministic load generator against a self-hosted
//! server.
//!
//! Three axes:
//! * `http_roundtrip`   — closed-loop `POST /count` on one connection;
//! * `ndjson_roundtrip` — the raw sniffed NDJSON protocol, same mix;
//! * `http_4conns`      — four concurrent closed-loop connections (the
//!   throughput configuration of `BENCH_serve.json`).
//!
//! The mix uses `method=exact` so the numbers isolate the serving and wire
//! overhead rather than the approximation engines.

use cqc_net::loadgen::{run_against, LoadgenOptions, Protocol};
use cqc_net::{NetConfig, RunningServer};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn options(protocol: Protocol, connections: usize) -> LoadgenOptions {
    LoadgenOptions {
        requests: 32,
        connections,
        seed: 0xBE9C4,
        shards: None,
        method: Some("exact".to_string()),
        accuracy: None,
        protocol,
        suite: None,
    }
}

fn bench(c: &mut Criterion) {
    let server = RunningServer::bind("127.0.0.1:0", NetConfig::default()).expect("bind");
    let addr = server.addr();
    let mut group = c.benchmark_group("net_loadgen");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(3));
    group.bench_function("http_roundtrip", |b| {
        b.iter(|| run_against(addr, &options(Protocol::Http, 1)).expect("run"));
    });
    group.bench_function("ndjson_roundtrip", |b| {
        b.iter(|| run_against(addr, &options(Protocol::Ndjson, 1)).expect("run"));
    });
    group.bench_function("http_4conns", |b| {
        b.iter(|| run_against(addr, &options(Protocol::Http, 4)).expect("run"));
    });
    group.finish();
    server.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
