//! E4 (Corollary 6): counting locally injective homomorphisms.

use cqc_core::lihom::PatternGraph;
use cqc_core::{count_locally_injective_homomorphisms, ApproxConfig};
use cqc_workloads::erdos_renyi;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cor6_lihom");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.measurement_time(Duration::from_secs(3));
    let pattern = PatternGraph::path(3);
    for n in [20usize, 40] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = erdos_renyi(n, 4.0 / n as f64, &mut rng);
        let edges = g.undirected_edges();
        let cfg = ApproxConfig::new(0.3, 0.1).with_seed(n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                count_locally_injective_homomorphisms(&pattern, n, &edges, &cfg)
                    .unwrap()
                    .estimate
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
