//! Regenerate the experiment tables of EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! cargo run --release -p cqc-bench --bin report -- <experiment> [--large]
//! cargo run --release -p cqc-bench --bin report -- all
//! ```
//! Experiments: `thm5`, `obs9`, `obs10`, `cor6`, `thm13`, `thm16`,
//! `footnote4`, `sampling`, `unions`, `widths`, `ablation-colour`,
//! `ablation-naive`, `parallel`. `--large` uses the full problem sizes recorded in
//! EXPERIMENTS.md; the default sizes finish in a couple of minutes on a
//! laptop.

use cqc_bench::{header, relative_error, row, timed};
use cqc_core::lihom::PatternGraph;
use cqc_core::Engine;
use cqc_core::{
    approx_count_answers, count_locally_injective_homomorphisms, count_union, exact_count_answers,
    fpras_count, fptras_count, hamiltonian_path_query, naive_monte_carlo, sample_answers,
    undirected_graph_database, ApproxConfig,
};
use cqc_data::Val;
use cqc_hypergraph::adaptive::adaptive_width_bounds;
use cqc_hypergraph::fwidth::{minimise_width, WidthMeasure};
use cqc_hypergraph::treewidth::treewidth_exact;
use cqc_query::{enumerate_answers, query_hypergraph};
use cqc_workloads::graphs::random_ternary_database;
use cqc_workloads::{
    clique_query, erdos_renyi, footnote4_star_query, graph_database, hyperchain_query, path_query,
    star_query,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let large = args.iter().any(|a| a == "--large");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let run = |name: &str| which == "all" || which == name;

    if run("thm5") {
        experiment_thm5(large);
    }
    if run("obs9") {
        experiment_obs9(large);
    }
    if run("obs10") {
        experiment_obs10(large);
    }
    if run("cor6") {
        experiment_cor6(large);
    }
    if run("thm13") {
        experiment_thm13(large);
    }
    if run("thm16") {
        experiment_thm16(large);
    }
    if run("footnote4") {
        experiment_footnote4(large);
    }
    if run("sampling") {
        experiment_sampling();
    }
    if run("unions") {
        experiment_unions();
    }
    if run("widths") {
        experiment_widths();
    }
    if run("ablation-colour") {
        experiment_ablation_colour();
    }
    if run("ablation-naive") {
        experiment_ablation_naive();
    }
    if run("parallel") {
        experiment_parallel(large);
    }
}

/// Parallel scaling of the deterministic runtime (see
/// `benches/parallel_scaling.rs` for the criterion variant): repetitions/sec
/// on the Theorem 5 colour-coding workload and wall time on the Theorem 16
/// Karp–Luby workload, at 1/2/4/8 threads. The estimates are asserted
/// bit-identical across thread counts on every row.
fn experiment_parallel(large: bool) {
    let host = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\n== Parallel scaling (deterministic runtime; host parallelism = {host}) ==");
    header(&[
        "workload", "threads", "estimate", "secs", "reps/sec", "speedup",
    ]);
    let (n_dcq, n_cq) = if large { (96, 32) } else { (48, 24) };

    let scaling_rows = |label: &str,
                        query: &cqc_query::Query,
                        db: &cqc_data::Structure,
                        configure: &dyn Fn(cqc_core::EngineBuilder) -> cqc_core::EngineBuilder,
                        show_reps: bool| {
        let mut base_secs = None;
        let mut base_hom = None;
        let mut reference = None;
        for threads in [1usize, 2, 4, 8] {
            let engine = configure(Engine::builder().accuracy(0.3, 0.1).threads(threads))
                .build()
                .unwrap();
            let prepared = engine.prepare(query).unwrap();
            let (report, secs) = timed(|| prepared.count(db).unwrap());
            match reference {
                None => reference = Some(report.estimate),
                Some(e) => assert_eq!(
                    e.to_bits(),
                    report.estimate.to_bits(),
                    "determinism violated at {threads} threads"
                ),
            }
            let base = *base_secs.get_or_insert(secs);
            // Fixed logical budget (the 1-thread run's hom calls) over wall
            // time: per-row hom_calls would count scheduling-dependent
            // speculative rounds and overstate throughput at high thread
            // counts.
            let work = *base_hom.get_or_insert(report.telemetry.hom_calls) as f64;
            row(&[
                label.into(),
                threads.to_string(),
                format!("{}", report.estimate),
                format!("{secs:.3}"),
                if show_reps {
                    format!("{:.0}", work / secs)
                } else {
                    "-".into()
                },
                format!("{:.2}x", base / secs),
            ]);
        }
    };

    // Theorem 5 colour-coding repetitions.
    let dcq = star_query(2, true).query;
    let dcq_db = {
        let mut rng = StdRng::seed_from_u64(5);
        let g = erdos_renyi(n_dcq, 3.0 / n_dcq as f64, &mut rng);
        graph_database(&g, "E", false)
    };
    scaling_rows(
        "thm5 colour",
        &dcq,
        &dcq_db,
        &|b| b.seed(11).colour_repetitions(64),
        true,
    );

    // Theorem 16 Karp–Luby union trials (sampling counter forced).
    let cq = footnote4_star_query(2, false).query;
    let cq_db = {
        let mut rng = StdRng::seed_from_u64(7);
        let g = erdos_renyi(n_cq, 3.0 / n_cq as f64, &mut rng);
        graph_database(&g, "E", false)
    };
    scaling_rows(
        "thm16 union",
        &cq,
        &cq_db,
        &|b| b.seed(13).exact_state_budget(0),
        false,
    );
}

fn experiment_thm5(large: bool) {
    println!("\n== E1 (Theorem 5): FPTRAS for bounded-treewidth ECQs ==");
    header(&[
        "query",
        "n",
        "exact",
        "estimate",
        "rel.err",
        "hom calls",
        "secs",
    ]);
    let sizes: &[usize] = if large {
        &[50, 100, 200, 400]
    } else {
        &[30, 60]
    };
    let queries = vec![
        star_query(2, true),
        path_query(2, true, false),
        path_query(2, true, true),
    ];
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = erdos_renyi(n, 3.0 / n as f64, &mut rng);
        let db = graph_database(&g, "E", false);
        for spec in &queries {
            let truth = exact_count_answers(&spec.query, &db) as f64;
            let cfg = ApproxConfig::new(0.25, 0.1).with_seed(n as u64);
            let (r, secs) = timed(|| fptras_count(&spec.query, &db, &cfg).unwrap());
            row(&[
                spec.name.clone(),
                n.to_string(),
                truth.to_string(),
                format!("{:.1}", r.estimate),
                format!("{:.3}", relative_error(r.estimate, truth)),
                r.hom_calls.to_string(),
                format!("{secs:.2}"),
            ]);
        }
    }
}

/// E2 — Observation 9: runtime growth with query treewidth (clique queries).
fn experiment_obs9(large: bool) {
    println!("\n== E2 (Observation 9): clique queries, runtime vs treewidth ==");
    header(&["k", "tw(H(ϕ))", "estimate", "exact", "secs"]);
    let ks: &[usize] = if large { &[2, 3, 4, 5] } else { &[2, 3, 4] };
    let n = if large { 60 } else { 25 };
    let mut rng = StdRng::seed_from_u64(9);
    let g = erdos_renyi(n, 0.3, &mut rng);
    let db = graph_database(&g, "E", true);
    for &k in ks {
        let spec = clique_query(k, true);
        let h = query_hypergraph(&spec.query);
        let tw = treewidth_exact(&h).0;
        let truth = exact_count_answers(&spec.query, &db) as f64;
        let cfg = ApproxConfig::new(0.3, 0.1).with_seed(k as u64);
        let (r, secs) = timed(|| fptras_count(&spec.query, &db, &cfg).unwrap());
        row(&[
            k.to_string(),
            tw.to_string(),
            format!("{:.1}", r.estimate),
            truth.to_string(),
            format!("{secs:.2}"),
        ]);
    }
}

/// E3 — Observation 10: Hamiltonian paths as a treewidth-1 DCQ.
fn experiment_obs10(large: bool) {
    println!("\n== E3 (Observation 10): Hamiltonian-path DCQ ==");
    header(&["n", "‖ϕ‖", "|Δ|", "exact #paths", "estimate", "secs"]);
    let ns: &[usize] = if large { &[4, 5, 6] } else { &[3, 4] };
    for &n in ns {
        let q = hamiltonian_path_query(n);
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = erdos_renyi(n + 2, 0.6, &mut rng);
        let db = undirected_graph_database(n + 2, &g.undirected_edges());
        let truth = exact_count_answers(&q, &db) as f64;
        let cfg = ApproxConfig {
            epsilon: 0.3,
            delta: 0.2,
            seed: n as u64,
            // the full 4^{|Δ|} budget is what makes this FPT rather than
            // polynomial — Observation 10 is exactly about this gap
            colour_repetitions: Some(4usize.pow((n * (n - 1) / 2) as u32).min(20_000)),
            ..Default::default()
        };
        let (r, secs) = timed(|| fptras_count(&q, &db, &cfg).unwrap());
        row(&[
            n.to_string(),
            q.size().to_string(),
            q.disequalities().len().to_string(),
            truth.to_string(),
            format!("{:.1}", r.estimate),
            format!("{secs:.2}"),
        ]);
    }
}

/// E4 — Corollary 6: locally injective homomorphisms.
fn experiment_cor6(large: bool) {
    println!("\n== E4 (Corollary 6): locally injective homomorphisms ==");
    header(&["pattern", "host n", "exact", "estimate", "rel.err", "secs"]);
    let hosts: &[usize] = if large { &[40, 80, 160] } else { &[20, 40] };
    let patterns = vec![
        ("P3", PatternGraph::path(3)),
        ("star3", PatternGraph::star(3)),
        ("C4", PatternGraph::cycle(4)),
    ];
    for &n in hosts {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = erdos_renyi(n, 4.0 / n as f64, &mut rng);
        let edges = g.undirected_edges();
        for (name, pattern) in &patterns {
            let q = cqc_core::locally_injective_query(pattern);
            let host = cqc_core::lihom::host_graph_database(n, &edges);
            let truth = exact_count_answers(&q, &host) as f64;
            let cfg = ApproxConfig::new(0.25, 0.1).with_seed(n as u64);
            let (r, secs) =
                timed(|| count_locally_injective_homomorphisms(pattern, n, &edges, &cfg).unwrap());
            row(&[
                name.to_string(),
                n.to_string(),
                truth.to_string(),
                format!("{:.1}", r.estimate),
                format!("{:.3}", relative_error(r.estimate, truth)),
                format!("{secs:.2}"),
            ]);
        }
    }
}

/// E5 — Theorem 13: DCQs over ternary relations (unbounded arity).
fn experiment_thm13(large: bool) {
    println!("\n== E5 (Theorem 13): FPTRAS for DCQs with ternary relations ==");
    header(&[
        "query", "n", "facts", "exact", "estimate", "rel.err", "secs",
    ]);
    let sizes: &[(usize, usize)] = if large {
        &[(30, 200), (60, 600), (90, 1200)]
    } else {
        &[(15, 60), (25, 120)]
    };
    for &(n, facts) in sizes {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let db = random_ternary_database(n, facts, &mut rng);
        for spec in [hyperchain_query(2, true), hyperchain_query(3, true)] {
            let truth = exact_count_answers(&spec.query, &db) as f64;
            let cfg = ApproxConfig::new(0.25, 0.1).with_seed(n as u64);
            let (r, secs) = timed(|| fptras_count(&spec.query, &db, &cfg).unwrap());
            row(&[
                spec.name.clone(),
                n.to_string(),
                facts.to_string(),
                truth.to_string(),
                format!("{:.1}", r.estimate),
                format!("{:.3}", relative_error(r.estimate, truth)),
                format!("{secs:.2}"),
            ]);
        }
    }
}

/// E6 — Theorem 16: FPRAS for CQs of bounded fractional hypertreewidth.
fn experiment_thm16(large: bool) {
    println!("\n== E6 (Theorem 16): FPRAS for CQs (bounded fhw) ==");
    header(&[
        "query",
        "n",
        "exact",
        "estimate",
        "rel.err",
        "fhw",
        "states",
        "exact slice",
        "secs",
    ]);
    let sizes: &[usize] = if large {
        &[50, 100, 200, 400]
    } else {
        &[30, 60]
    };
    for &n in sizes {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = erdos_renyi(n, 4.0 / n as f64, &mut rng);
        let db = graph_database(&g, "E", false);
        for spec in [
            path_query(3, false, false),
            footnote4_star_query(2, false),
            footnote4_star_query(3, false),
        ] {
            let truth = exact_count_answers(&spec.query, &db) as f64;
            let cfg = ApproxConfig::new(0.2, 0.1).with_seed(n as u64);
            let (r, secs) = timed(|| fpras_count(&spec.query, &db, &cfg).unwrap());
            row(&[
                spec.name.clone(),
                n.to_string(),
                truth.to_string(),
                format!("{:.1}", r.estimate),
                format!("{:.3}", relative_error(r.estimate, truth)),
                format!("{:.2}", r.fhw),
                r.states.to_string(),
                r.exact.to_string(),
                format!("{secs:.2}"),
            ]);
        }
    }
}

/// E7 — footnote 4: brute force vs FPRAS vs FPTRAS-with-disequalities.
fn experiment_footnote4(large: bool) {
    println!("\n== E7 (footnote 4): ∃y ⋀ E(y, xᵢ) ==");
    header(&[
        "k",
        "distinct?",
        "n",
        "exact",
        "estimate",
        "method",
        "secs(exact)",
        "secs(approx)",
    ]);
    let n = if large { 120 } else { 40 };
    let ks: &[usize] = if large { &[2, 3, 4] } else { &[2, 3] };
    let mut rng = StdRng::seed_from_u64(4);
    let g = erdos_renyi(n, 5.0 / n as f64, &mut rng);
    let db = graph_database(&g, "E", false);
    for &k in ks {
        for distinct in [false, true] {
            let spec = footnote4_star_query(k, distinct);
            let (truth, secs_exact) = timed(|| exact_count_answers(&spec.query, &db) as f64);
            let cfg = ApproxConfig::new(0.25, 0.1).with_seed(k as u64);
            let (r, secs) = timed(|| approx_count_answers(&spec.query, &db, &cfg).unwrap());
            row(&[
                k.to_string(),
                distinct.to_string(),
                n.to_string(),
                truth.to_string(),
                format!("{:.1}", r.estimate),
                format!("{:?}", r.method),
                format!("{secs_exact:.2}"),
                format!("{secs:.2}"),
            ]);
        }
    }
}

/// E8 — Section 6: answer sampling uniformity.
fn experiment_sampling() {
    println!("\n== E8 (Section 6): uniformity of the answer sampler ==");
    header(&["query", "answers", "samples", "total variation distance"]);
    let mut rng = StdRng::seed_from_u64(8);
    let g = erdos_renyi(14, 0.25, &mut rng);
    let db = graph_database(&g, "F", false);
    let q = cqc_query::parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
    let answers = enumerate_answers(&q, &db);
    let cfg = ApproxConfig::new(0.3, 0.05).with_seed(8);
    let samples = 100 * answers.len().max(1);
    let drawn = sample_answers(&q, &db, samples, &cfg).unwrap();
    let mut freq: std::collections::BTreeMap<Vec<Val>, usize> = Default::default();
    for s in &drawn {
        *freq.entry(s.clone()).or_insert(0) += 1;
    }
    let uniform = 1.0 / answers.len().max(1) as f64;
    let tv: f64 = answers
        .iter()
        .map(|a| {
            let p = *freq.get(a).unwrap_or(&0) as f64 / drawn.len().max(1) as f64;
            (p - uniform).abs()
        })
        .sum::<f64>()
        / 2.0;
    row(&[
        "two-distinct-friends".into(),
        answers.len().to_string(),
        drawn.len().to_string(),
        format!("{tv:.3}"),
    ]);
}

/// E9 — Section 6: unions of queries (Karp–Luby).
fn experiment_unions() {
    println!("\n== E9 (Section 6): unions of conjunctive queries ==");
    header(&["union", "exact", "estimate", "rel.err"]);
    let mut rng = StdRng::seed_from_u64(9);
    let g = erdos_renyi(20, 0.15, &mut rng);
    let db = graph_database(&g, "E", false);
    let q1 = cqc_query::parse_query("ans(x, y) :- E(x, y)").unwrap();
    let q2 = cqc_query::parse_query("ans(x, y) :- E(x, z), E(z, y)").unwrap();
    let queries = vec![q1, q2];
    let mut all = std::collections::BTreeSet::new();
    for q in &queries {
        all.extend(enumerate_answers(q, &db));
    }
    let truth = all.len() as f64;
    let cfg = ApproxConfig::new(0.2, 0.1).with_seed(9);
    let est = count_union(&queries, &db, 600, &cfg).unwrap();
    row(&[
        "E ∪ E∘E".into(),
        truth.to_string(),
        format!("{est:.1}"),
        format!("{:.3}", relative_error(est, truth)),
    ]);
}

/// E10 — Lemma 12 / Observation 34: width measures across hypergraph families.
fn experiment_widths() {
    println!("\n== E10 (Lemma 12 / Obs. 34): width measures ==");
    header(&["hypergraph", "tw", "hw", "fhw", "aw (lower..upper)"]);
    let families: Vec<(String, cqc_hypergraph::Hypergraph)> = vec![
        (
            "path(6)".into(),
            cqc_hypergraph::Hypergraph::from_edges(
                6,
                &[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[4, 5]],
            ),
        ),
        (
            "cycle(6)".into(),
            cqc_hypergraph::Hypergraph::from_edges(
                6,
                &[&[0, 1], &[1, 2], &[2, 3], &[3, 4], &[4, 5], &[5, 0]],
            ),
        ),
        ("clique(5)".into(), {
            let mut h = cqc_hypergraph::Hypergraph::new(5);
            for i in 0..5 {
                for j in (i + 1)..5 {
                    h.add_edge(&[i, j]);
                }
            }
            h
        }),
        (
            "triangle-of-3-edges".into(),
            cqc_hypergraph::Hypergraph::from_edges(6, &[&[0, 1, 2], &[2, 3, 4], &[4, 5, 0]]),
        ),
        (
            "single-5-edge".into(),
            cqc_hypergraph::Hypergraph::from_edges(5, &[&[0, 1, 2, 3, 4]]),
        ),
    ];
    for (name, h) in families {
        let tw = treewidth_exact(&h).0;
        let (hw, _) = minimise_width(&h, WidthMeasure::Hypertreewidth);
        let (fhw, _) = minimise_width(&h, WidthMeasure::FractionalHypertreewidth);
        let aw = adaptive_width_bounds(&h, 2);
        row(&[
            name,
            tw.to_string(),
            format!("{hw:.1}"),
            format!("{fhw:.2}"),
            format!("{:.2}..{:.2}", aw.lower, aw.upper),
        ]);
    }
}

/// A1 — ablation: colour-coding repetitions vs estimate quality.
fn experiment_ablation_colour() {
    println!("\n== A1 (ablation): colour-coding repetitions ==");
    header(&["|Δ|", "repetitions", "exact", "estimate"]);
    let mut rng = StdRng::seed_from_u64(11);
    let g = erdos_renyi(25, 0.15, &mut rng);
    let db = graph_database(&g, "E", false);
    for leaves in [2usize, 3] {
        let spec = star_query(leaves, true);
        let truth = exact_count_answers(&spec.query, &db) as f64;
        let d = spec.query.disequalities().len();
        for reps in [1usize, 4, 16, 64, 256] {
            let cfg = ApproxConfig {
                epsilon: 0.25,
                delta: 0.1,
                seed: 11,
                colour_repetitions: Some(reps),
                ..Default::default()
            };
            let r = fptras_count(&spec.query, &db, &cfg).unwrap();
            row(&[
                d.to_string(),
                reps.to_string(),
                truth.to_string(),
                format!("{:.1}", r.estimate),
            ]);
        }
    }
}

/// A2 — ablation: naive Monte Carlo vs the FPTRAS on sparse answer sets.
fn experiment_ablation_naive() {
    println!("\n== A2 (ablation): naive Monte Carlo vs FPTRAS ==");
    header(&["query", "exact", "naive MC (10k samples)", "FPTRAS"]);
    let mut rng = StdRng::seed_from_u64(12);
    let g = erdos_renyi(30, 0.08, &mut rng);
    let db = graph_database(&g, "E", true);
    let q = hamiltonian_path_query(3);
    let truth = exact_count_answers(&q, &db) as f64;
    let mut mc_rng = StdRng::seed_from_u64(13);
    let naive = naive_monte_carlo(&q, &db, 10_000, &mut mc_rng);
    let cfg = ApproxConfig {
        epsilon: 0.3,
        delta: 0.1,
        seed: 12,
        colour_repetitions: Some(400),
        ..Default::default()
    };
    let r = fptras_count(&q, &db, &cfg).unwrap();
    row(&[
        "ham-path(3)".into(),
        truth.to_string(),
        format!("{naive:.1}"),
        format!("{:.1}", r.estimate),
    ]);
}
