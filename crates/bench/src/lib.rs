//! # cqc-bench — benchmark harness
//!
//! Shared utilities for the Criterion benches (`benches/`) and the report
//! binary (`src/bin/report.rs`) that regenerates the experiment series listed
//! in EXPERIMENTS.md.

#![forbid(unsafe_code)]

use cqc_obs::Stopwatch;

/// Measure the wall-clock time of a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let watch = Stopwatch::start();
    let out = f();
    (out, watch.elapsed().as_secs_f64())
}

/// Relative error of an estimate against the ground truth (0 when both are 0).
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        if estimate == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (estimate - truth).abs() / truth
    }
}

/// Print a table row with pipe separators (markdown-ish, easy to diff).
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Print a table header plus separator line.
pub fn header(cells: &[&str]) {
    println!("| {} |", cells.join(" | "));
    println!(
        "|{}|",
        cells.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_cases() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(1.0, 0.0).is_infinite());
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn timed_returns_value() {
        let (v, secs) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
