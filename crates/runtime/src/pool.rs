//! The persistent worker pool behind [`crate::Runtime`]'s `par_*` calls.
//!
//! ## Why a pool
//!
//! The original runtime spawned scoped worker threads *per `par_*` call*
//! (`std::thread::scope`). That keeps the crate trivially safe, but every
//! small oracle call pays the thread-spawn tax — tens of microseconds per
//! worker — which is why the colour-coding oracle needed a serial cutoff
//! (`work_proxy`) to stay competitive on small instances. This module
//! replaces the per-call spawn with **long-lived workers** that park on a
//! condvar between jobs: dispatching a job is a mutex lock plus a wakeup,
//! two orders of magnitude cheaper than a spawn.
//!
//! ## The retire-before-return protocol
//!
//! A *job* is a borrowed closure `&(dyn Fn() + Sync)` that every
//! participant runs exactly once (the closure loops over an atomic work
//! cursor internally, exactly like the scoped-spawn loop bodies did). The
//! closure borrows the caller's stack — results sink, work cursor, the
//! user's `f` — so handing it to threads that outlive the call requires
//! erasing its lifetime. That erasure is the **only `unsafe` in the
//! repository**, and it is sound because of a strict protocol:
//!
//! 1. **Publish.** [`Pool::try_execute`] installs the erased closure under
//!    the pool mutex together with a *slot count* (how many helpers may
//!    claim it) and wakes the workers. A worker participates only by
//!    *claiming a slot* under the same mutex, which increments the job's
//!    `active` count before the worker ever touches the closure.
//! 2. **Participate.** The caller runs the closure on its own thread too —
//!    the pool contributes `width − 1` helpers to a width-`w` call.
//! 3. **Retire.** Before `try_execute` returns (or unwinds — the step runs
//!    in a drop guard), it re-locks the state, *cancels all unclaimed
//!    slots*, and blocks until `active == 0`. After that point no worker
//!    holds or can ever re-acquire the closure, so the borrow ends strictly
//!    after every use: the caller's stack frame outlives all accesses.
//!
//! A worker panic inside the job is caught, recorded, and re-raised on the
//! calling thread after retirement (matching the scoped runtime's
//! `join().expect` behaviour); the caller's own panic still runs step 3
//! via the drop guard, so unwinding never leaves a dangling job behind.
//!
//! ## Determinism
//!
//! The pool affects **scheduling only**. Which thread claims a slot, how
//! many helpers wake up in time to participate, and the
//! `COUNTING_POOL_WORKERS` cap all change nothing about results: the
//! runtime's `par_*` primitives key every result by work-item index and
//! fold in index order, and every RNG stream derives from
//! `(seed, item index)` (see the crate docs). The pool-width matrix in
//! `tests/parallel_determinism.rs` pins this: estimates are bit-identical
//! for pool widths 1, 2 and 8 and equal to the serial path.
//!
//! ## Nesting and contention
//!
//! Jobs do not nest *inside the pool*: a `par_*` call issued from within a
//! pool worker (e.g. the inner per-evaluation runtime of `count_batch`)
//! falls back to the scoped-spawn path, as does a call that finds the pool
//! busy with another top-level job. The fallback is semantically identical
//! — it is the pre-pool implementation — so the pool is purely a fast
//! path.

#![allow(unsafe_code)]

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Environment variable capping the persistent pool width (caller plus
/// helper workers). `COUNTING_POOL_WORKERS=1` forces every pooled `par_*`
/// call to run inline on the calling thread — CI runs the whole suite this
/// way to pin the determinism contract. Unset: the machine's available
/// parallelism. Re-read on every dispatch, so tests can vary it at runtime.
pub const POOL_WORKERS_ENV: &str = "COUNTING_POOL_WORKERS";

/// Process-wide programmatic override for the pool width cap (0 = unset).
/// Takes precedence over [`POOL_WORKERS_ENV`]; set by `cqc --workers`.
static WORKER_CAP_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Override the global pool's width cap programmatically (the CLI's
/// `--workers` flag). `0` clears the override, falling back to
/// [`POOL_WORKERS_ENV`] and then to the available parallelism. Like the
/// thread count, the cap never affects estimates — only wall times.
pub fn set_worker_cap(cap: usize) {
    WORKER_CAP_OVERRIDE.store(cap, Ordering::Relaxed);
}

/// Resolve the current width cap of the global pool: the
/// [`set_worker_cap`] override if set, else [`POOL_WORKERS_ENV`], else
/// `std::thread::available_parallelism()`.
pub fn resolve_pool_workers() -> usize {
    let cap = WORKER_CAP_OVERRIDE.load(Ordering::Relaxed);
    if cap > 0 {
        return cap;
    }
    if let Ok(raw) = std::env::var(POOL_WORKERS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    /// Set for the lifetime of every pool worker thread; lets nested
    /// `par_*` calls detect that they are already running on the pool.
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Is the current thread a pool worker? Nested parallel calls use this to
/// fall back to scoped spawning instead of deadlocking on their own pool.
pub fn on_pool_worker() -> bool {
    IN_POOL_WORKER.with(|f| f.get())
}

/// Jobs currently published to a pool and not yet retired, across every
/// pool in the process. The serving layer samples this into its
/// queue-depth gauge; it is observation-only and bounds nothing.
static ACTIVE_DISPATCHES: AtomicUsize = AtomicUsize::new(0);

/// Pooled jobs currently in flight (published, not yet retired).
pub fn active_dispatches() -> u64 {
    ACTIVE_DISPATCHES.load(Ordering::Relaxed) as u64
}

/// The borrowed job closure with its lifetime erased. Soundness rests on
/// the retire-before-return protocol (module docs): the pointer is only
/// dereferenced by workers that claimed a slot under the state mutex, and
/// the publishing call does not return until every claim has retired.
#[derive(Clone, Copy)]
struct ErasedJob(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and outlives every dereference by the retire-before-return protocol; the
// raw pointer is only a lifetime-erasure device, never used for mutation.
unsafe impl Send for ErasedJob {}

struct State {
    /// The in-flight job, if any. `Some` between publish and retire.
    job: Option<ErasedJob>,
    /// Bumped once per published job so a worker never claims two slots of
    /// the same job (each participant runs the closure exactly once).
    epoch: u64,
    /// Helper slots still claimable for the current job.
    slots: usize,
    /// Helpers that claimed a slot and have not yet finished the closure.
    active: usize,
    /// A helper panicked inside the current job.
    panicked: bool,
    /// Worker threads spawned so far (they are spawned lazily on demand).
    spawned: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work_cv: Condvar,
    /// The publishing caller parks here until `active == 0`.
    done_cv: Condvar,
}

/// A persistent worker pool: long-lived threads that execute borrowed
/// scoped jobs (see the module docs for the protocol). One process-wide
/// pool serves every [`crate::Runtime`] by default ([`global`]); fixed-width
/// local pools ([`Pool::new`]) exist for tests and embedders that want
/// isolated sizing.
pub struct Pool {
    shared: Arc<Shared>,
    /// `Some(w)`: fixed total width (caller + `w − 1` helpers).
    /// `None`: dynamic — re-resolve [`resolve_pool_workers`] per dispatch.
    fixed_width: Option<usize>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("width", &self.width())
            .field("fixed", &self.fixed_width.is_some())
            .finish()
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool used by every [`crate::Runtime`] unless a local
/// pool was attached explicitly. Sized by [`resolve_pool_workers`],
/// re-evaluated on every dispatch (workers are spawned lazily and never
/// torn down; parked workers cost nothing).
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool {
        shared: Pool::fresh_shared(),
        fixed_width: None,
        handles: Mutex::new(Vec::new()),
    })
}

impl Pool {
    fn fresh_shared() -> Arc<Shared> {
        Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                epoch: 0,
                slots: 0,
                active: 0,
                panicked: false,
                spawned: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        })
    }

    /// A pool of fixed total width: the caller plus `width − 1` persistent
    /// helper threads (spawned lazily). `width ≤ 1` gives a pool that runs
    /// every job inline on the caller. Intended for tests (the determinism
    /// matrix runs engines against pools of width 1, 2 and 8 in one
    /// process) and embedders that want isolated sizing; everything else
    /// should use [`global`].
    pub fn new(width: usize) -> Pool {
        Pool {
            shared: Pool::fresh_shared(),
            fixed_width: Some(width.max(1)),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The pool's current total width (caller + helpers): the fixed width
    /// for [`Pool::new`] pools, [`resolve_pool_workers`] for the global one.
    pub fn width(&self) -> usize {
        self.fixed_width.unwrap_or_else(resolve_pool_workers).max(1)
    }

    /// Run `body` with up to `width` participants (the calling thread plus
    /// at most `width − 1` pool helpers, further capped by the pool's own
    /// width). Every participant calls `body` exactly once; `body` is
    /// expected to self-schedule over an atomic cursor.
    ///
    /// Returns `false` without running anything when the pool cannot take
    /// the job — the caller is itself a pool worker (nested parallelism) or
    /// another job is in flight — in which case the caller should fall back
    /// to scoped spawning. Returns `true` once the job has fully retired:
    /// no worker touches `body` after this function returns.
    pub fn try_execute(&self, width: usize, body: &(dyn Fn() + Sync)) -> bool {
        let helpers = width.min(self.width()).saturating_sub(1);
        if helpers == 0 {
            // Inline degenerate case (pool width 1, or width request 1):
            // the pool "handles" it by running the body on the caller.
            body();
            return true;
        }
        if on_pool_worker() {
            return false;
        }
        {
            let mut st = self.shared.state.lock().unwrap();
            if st.job.is_some() {
                return false; // busy with another top-level job
            }
            // Lazily grow the worker set up to the helpers we want now.
            let missing = helpers.saturating_sub(st.spawned);
            for _ in 0..missing {
                let shared = Arc::clone(&self.shared);
                let handle = std::thread::Builder::new()
                    .name("cqc-pool-worker".into())
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker");
                self.handles.lock().unwrap().push(handle);
                st.spawned += 1;
            }
            st.job = Some(erase(body));
            st.epoch = st.epoch.wrapping_add(1);
            st.slots = helpers.min(st.spawned);
            st.active = 0;
            st.panicked = false;
            self.shared.work_cv.notify_all();
            ACTIVE_DISPATCHES.fetch_add(1, Ordering::Relaxed);
            if cqc_obs::trace::enabled() {
                cqc_obs::trace::instant(
                    "pool_dispatch",
                    &format!("width {} slots {}", helpers + 1, st.slots),
                );
            }
        }

        // Retirement runs in a drop guard so that a panic inside the
        // caller's own run of `body` still cancels unclaimed slots and
        // waits out active helpers before the stack frame unwinds.
        struct Retire<'a> {
            shared: &'a Shared,
        }
        impl Drop for Retire<'_> {
            fn drop(&mut self) {
                let mut st = self.shared.state.lock().unwrap();
                st.slots = 0; // unclaimed slots can no longer be claimed
                while st.active > 0 {
                    st = self.shared.done_cv.wait(st).unwrap();
                }
                st.job = None;
                let panicked = std::mem::replace(&mut st.panicked, false);
                drop(st);
                ACTIVE_DISPATCHES.fetch_sub(1, Ordering::Relaxed);
                if panicked && !std::thread::panicking() {
                    panic!("runtime worker panicked");
                }
            }
        }
        let retire = Retire {
            shared: &self.shared,
        };
        body();
        drop(retire);
        true
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.handles.lock().unwrap().drain(..) {
            handle.join().expect("pool worker shut down cleanly");
        }
    }
}

/// Erase the lifetime of a borrowed job closure.
///
/// SAFETY: sound only under the retire-before-return protocol — the caller
/// ([`Pool::try_execute`]) must not return (or unwind) past `body`'s
/// lifetime until every claimed slot has retired and all unclaimed slots
/// are cancelled, which it enforces with its drop guard.
fn erase<'a>(body: &'a (dyn Fn() + Sync)) -> ErasedJob {
    let short: *const (dyn Fn() + Sync + 'a) = body;
    ErasedJob(unsafe {
        std::mem::transmute::<*const (dyn Fn() + Sync + 'a), *const (dyn Fn() + Sync + 'static)>(
            short,
        )
    })
}

fn worker_loop(shared: &Shared) {
    IN_POOL_WORKER.with(|f| f.set(true));
    let mut seen_epoch = 0u64;
    let mut st = shared.state.lock().unwrap();
    loop {
        if st.shutdown {
            return;
        }
        if st.job.is_some() && st.slots > 0 && st.epoch != seen_epoch {
            // Claim a slot: from here on the publisher waits for us.
            seen_epoch = st.epoch;
            st.slots -= 1;
            st.active += 1;
            let job = st.job.expect("checked above");
            drop(st);
            // SAFETY: the slot claim above happened under the mutex while
            // `job` was published, so the closure is alive until we
            // decrement `active` below (retire-before-return).
            let ok = catch_unwind(AssertUnwindSafe(|| unsafe { (*job.0)() })).is_ok();
            st = shared.state.lock().unwrap();
            st.active -= 1;
            if !ok {
                st.panicked = true;
            }
            if st.active == 0 {
                shared.done_cv.notify_all();
            }
        } else {
            st = shared.work_cv.wait(st).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn inline_when_width_one() {
        let pool = Pool::new(1);
        let ran = AtomicU64::new(0);
        assert!(pool.try_execute(8, &|| {
            ran.fetch_add(1, Ordering::Relaxed);
        }));
        // width-1 pool: exactly one (inline) run, no helpers
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn executes_borrowed_state_and_retires() {
        let pool = Pool::new(4);
        for round in 0..50u64 {
            // borrow round-local state; retire-before-return means this is
            // sound even though the workers are long-lived
            let cursor = AtomicUsize::new(0);
            let sum = Mutex::new(0u64);
            let n = 100;
            assert!(pool.try_execute(4, &|| {
                let mut local = 0u64;
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local += i as u64 + round;
                }
                *sum.lock().unwrap() += local;
            }));
            let expect: u64 = (0..n as u64).map(|i| i + round).sum();
            assert_eq!(*sum.lock().unwrap(), expect, "round {round}");
        }
    }

    #[test]
    fn nested_execute_from_worker_is_refused() {
        let pool = Pool::new(4);
        let inner_pool = Pool::new(2);
        let participants = AtomicUsize::new(0);
        let refused = AtomicU64::new(0);
        assert!(pool.try_execute(4, &|| {
            // hold every participant until at least one pool helper has
            // joined, so the refusal branch below is guaranteed to run
            participants.fetch_add(1, Ordering::SeqCst);
            while participants.load(Ordering::SeqCst) < 2 {
                std::thread::yield_now();
            }
            if on_pool_worker() {
                // a worker asking any pool for parallelism is refused
                assert!(
                    !inner_pool.try_execute(2, &|| {}),
                    "nested execute from a pool worker must be refused"
                );
                refused.fetch_add(1, Ordering::Relaxed);
            }
        }));
        assert!(
            refused.load(Ordering::Relaxed) >= 1,
            "no pool helper exercised the refusal path"
        );
    }

    #[test]
    fn worker_panic_propagates_after_retirement() {
        let pool = Pool::new(4);
        let cursor = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.try_execute(4, &|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= 64 {
                    break;
                }
                assert!(i != 17, "injected failure");
            })
        }));
        assert!(result.is_err());
        // the pool must be reusable after a panicked job
        let ran = AtomicU64::new(0);
        assert!(pool.try_execute(2, &|| {
            ran.fetch_add(1, Ordering::Relaxed);
        }));
        assert!(ran.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn global_pool_exists_and_reports_width() {
        assert!(global().width() >= 1);
        let ran = AtomicU64::new(0);
        assert!(global().try_execute(2, &|| {
            ran.fetch_add(1, Ordering::Relaxed);
        }));
        assert!(ran.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn worker_cap_override_wins() {
        // avoid racing other tests: save and restore
        let before = WORKER_CAP_OVERRIDE.load(Ordering::Relaxed);
        set_worker_cap(3);
        assert_eq!(resolve_pool_workers(), 3);
        set_worker_cap(before);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = Pool::new(3);
        let cursor = AtomicUsize::new(0);
        assert!(pool.try_execute(3, &|| {
            while cursor.fetch_add(1, Ordering::Relaxed) < 1000 {}
        }));
        drop(pool); // must not hang or panic
    }
}
