//! # cqc-runtime — deterministic parallel execution
//!
//! A std-only (no external dependencies) parallel runtime for the
//! embarrassingly parallel loops of the counting engines: colour-coding
//! repetitions (Lemma 22), Karp–Luby union trials (Lemma 51), batch
//! evaluation across databases, and the decomposition candidate search
//! (Lemma 43). The design goal is captured by one invariant:
//!
//! > **Determinism.** For a fixed engine seed, every estimate is
//! > bit-identical whether it is computed on 1, 2, or N threads.
//!
//! ## The seed-splitting scheme
//!
//! Sequential Monte-Carlo code conventionally threads *one* RNG stream
//! through every loop iteration, which makes the i-th draw depend on how
//! many draws iterations `0..i` consumed — and therefore on scheduling.
//! This crate removes that dependency: each logical work item (repetition
//! index, trial index, database index, candidate index) derives its own
//! RNG stream from the pair `(seed, item_index)` via [`split_seed`], a
//! SplitMix64-style bit-mix finaliser:
//!
//! ```text
//! z  = seed ⊕ (index · 0x9E3779B97F4A7C15)      // golden-ratio spacing
//! z  = (z ⊕ (z ≫ 30)) · 0xBF58476D1CE4E5B9
//! z  = (z ⊕ (z ≫ 27)) · 0x94D049BB133111EB
//! s' = z ⊕ (z ≫ 31)                             // the item's stream seed
//! ```
//!
//! The item seeds the workspace RNG (`rand::rngs::StdRng`, itself a
//! SplitMix64 generator) with `s'` and draws as much randomness as it
//! needs, in isolation. Nested loops split hierarchically with
//! [`split_seed2`] (`split_seed(split_seed(seed, a), b)`), e.g.
//! `(engine_seed, oracle_call, repetition)`. Because every item's
//! randomness is a pure function of the engine seed and the item's logical
//! coordinates, the multiset of item outcomes — and any order-insensitive
//! reduction of it (counts, sums, "any positive", first-k-by-index) — is
//! independent of thread count and scheduling.
//!
//! ## Execution model
//!
//! [`Runtime`] is a cheap `Copy` handle holding a resolved thread count
//! (requested, or [`THREADS_ENV`], or `std::thread::available_parallelism`
//! — see [`resolve_threads`]). [`Runtime::par_map`] /
//! [`Runtime::par_map_n`] execute a fixed index range with chunked
//! work-stealing: the participants (the calling thread plus persistent
//! pool workers) repeatedly claim the next chunk of indices from a shared
//! atomic cursor, so a slow chunk on one participant does not idle the
//! others. Results are returned **in index order**, making
//! `par_map` a drop-in replacement for a serial `map` loop.
//! [`Runtime::par_reduce`] folds the mapped results in index order (again
//! scheduling-independent), and [`Runtime::par_any_n`] evaluates an
//! order-insensitive "∃ index with predicate" with cooperative early exit.
//!
//! Work is executed by the **persistent worker pool** of [`pool`]: a
//! `par_*` call publishes its loop body as a scoped job, the calling
//! thread participates, and up to `threads − 1` long-lived pool workers
//! join in — dispatching costs a mutex lock and a wakeup instead of a
//! thread spawn per call, which is what makes fanning out *small* oracle
//! calls profitable. Nested calls (a `par_*` issued from inside a pool
//! worker) and calls that find the pool busy fall back to per-call
//! `std::thread::scope` spawning, which is semantically identical. The
//! pool module carries the repository's only `unsafe` (lifetime-erased
//! scoped jobs behind a retire-before-return protocol — see its docs);
//! everything else in the workspace remains `forbid(unsafe_code)`.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable consulted by [`resolve_threads`] when the caller
/// requests automatic thread selection (`0`). Used by CI to force a fixed
/// thread count (e.g. `COUNTING_THREADS=2`) so the determinism guarantee is
/// exercised on every push.
pub const THREADS_ENV: &str = "COUNTING_THREADS";

// The seed-splitting functions live in `cqc-obs` (the workspace's
// dependency root) so the tracer can derive deterministic span IDs with
// the same finaliser; the established `cqc_runtime::split_seed` path is
// preserved by re-export.
pub use cqc_obs::seed::{split_seed, split_seed2};

/// Resolve a requested thread count: a positive request wins; `0` (auto)
/// falls back to [`THREADS_ENV`] and then to
/// `std::thread::available_parallelism()`.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A resolved parallel execution context: a thread count plus the
/// deterministic `par_*` primitives. Cheap to copy and pass down the call
/// stack; work runs on the persistent worker [`pool`] (with a scoped-spawn
/// fallback for nested or contended calls).
#[derive(Clone, Copy)]
pub struct Runtime {
    threads: usize,
    /// `false` forces the per-call scoped-spawn path (benchmarking the
    /// pool against its predecessor; results are identical either way).
    use_pool: bool,
    /// Pool to dispatch on (`None` = the process-wide [`pool::global`]).
    pool: Option<&'static pool::Pool>,
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.threads)
            .field("use_pool", &self.use_pool)
            .field("local_pool", &self.pool.is_some())
            .finish()
    }
}

impl PartialEq for Runtime {
    fn eq(&self, other: &Self) -> bool {
        self.threads == other.threads
            && self.use_pool == other.use_pool
            && match (self.pool, other.pool) {
                (Some(a), Some(b)) => std::ptr::eq(a, b),
                (None, None) => true,
                _ => false,
            }
    }
}

impl Eq for Runtime {}

impl Default for Runtime {
    /// Equivalent to `Runtime::new(0)` (automatic thread selection).
    fn default() -> Self {
        Runtime::new(0)
    }
}

impl Runtime {
    /// A runtime with `resolve_threads(requested)` threads
    /// (`0` = automatic: [`THREADS_ENV`], else available parallelism).
    pub fn new(requested: usize) -> Self {
        Runtime {
            threads: resolve_threads(requested).max(1),
            use_pool: true,
            pool: None,
        }
    }

    /// The single-threaded runtime (all `par_*` calls degenerate to serial
    /// loops on the calling thread; used to avoid nested oversubscription).
    pub const fn serial() -> Self {
        Runtime {
            threads: 1,
            use_pool: true,
            pool: None,
        }
    }

    /// The resolved number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// This runtime with a different resolved thread count, keeping the
    /// pool configuration (used by `count_batch` to hand leftover width to
    /// the inner per-evaluation runtime).
    pub fn with_threads(mut self, requested: usize) -> Self {
        self.threads = resolve_threads(requested).max(1);
        self
    }

    /// Dispatch `par_*` calls on the given pool instead of the process-wide
    /// [`pool::global`]. The pool (like the thread count) affects wall
    /// times only, never results; the determinism matrix in
    /// `tests/parallel_determinism.rs` runs engines against pools of width
    /// 1, 2 and 8 and requires bit-identical estimates.
    pub fn with_pool(mut self, pool: &'static pool::Pool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Force the per-call scoped-spawn path, bypassing the persistent pool
    /// (the pre-pool implementation, kept as the nested/contended fallback;
    /// exposed so benchmarks can measure the spawn tax the pool removes).
    pub fn without_pool(mut self) -> Self {
        self.use_pool = false;
        self
    }

    /// Run `body` on up to `width` participants: the calling thread plus
    /// `width − 1` pool helpers, falling back to scoped spawning when the
    /// pool refuses (nested call, pool busy, or [`Runtime::without_pool`]).
    /// Every participant runs `body` exactly once; `body` self-schedules
    /// over an atomic cursor, so participant count affects scheduling only.
    fn execute_wide(&self, width: usize, body: &(dyn Fn() + Sync)) {
        let mut width = width;
        if width > 1 && self.use_pool {
            let pool = self.pool.unwrap_or_else(pool::global);
            if pool.try_execute(width, body) {
                return;
            }
            // The fallback still honours the pool's width cap
            // (`--workers` / `COUNTING_POOL_WORKERS`): a nested or
            // pool-busy caller must not exceed the operator's bound just
            // because it spawns its own scoped threads.
            width = width.min(pool.width());
        }
        if width <= 1 {
            body();
            return;
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = (1..width).map(|_| s.spawn(body)).collect();
            body();
            for h in handles {
                h.join().expect("runtime worker panicked");
            }
        });
    }

    /// Chunk size for `n` items: small enough that work can be stolen
    /// (≈ 4 chunks per worker), large enough to amortise the cursor
    /// traffic. Public so callers that pre-chunk their own inputs (e.g.
    /// slice-local reductions) share one chunking policy.
    pub fn chunk_size(&self, n: usize) -> usize {
        n.div_ceil(self.threads * 4).max(1)
    }

    /// Map `f` over `0..n` in parallel, returning results in index order —
    /// a drop-in replacement for `(0..n).map(f).collect()`. Deterministic:
    /// the output never depends on the thread count or the schedule.
    pub fn par_map_n<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let workers = self.threads.min(n);
        let chunk = self.chunk_size(n);
        let cursor = AtomicUsize::new(0);
        // Participants append their locally collected (index, result) pairs
        // here — one short lock per participant, after its work is done.
        let sink: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
        self.execute_wide(workers, &|| {
            let mut local: Vec<(usize, R)> = Vec::new();
            loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                if cqc_obs::trace::enabled() && pool::on_pool_worker() {
                    // a pool helper claimed this chunk off the shared cursor
                    cqc_obs::trace::instant(
                        "steal",
                        &format!("chunk {start}..{} of {n}", (start + chunk).min(n)),
                    );
                }
                for i in start..(start + chunk).min(n) {
                    local.push((i, f(i)));
                }
            }
            if !local.is_empty() {
                sink.lock().expect("no poisoned sink").extend(local);
            }
        });
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in sink.into_inner().expect("no poisoned sink") {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every index computed exactly once"))
            .collect()
    }

    /// Map `f` over a slice in parallel, returning results in item order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_n(items.len(), |i| f(i, &items[i]))
    }

    /// Parallel map-then-fold: map `f` over `items` in parallel and fold
    /// the results **in index order** with `fold` on the calling thread.
    /// The index-ordered fold keeps non-commutative reductions (first
    /// minimum, floating-point sums) bit-identical to the serial loop.
    pub fn par_reduce<T, R, A, F, G>(&self, items: &[T], f: F, init: A, fold: G) -> A
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        self.par_map(items, f).into_iter().fold(init, fold)
    }

    /// Does `pred` hold for any index in `0..n`? Evaluates items in
    /// parallel with cooperative early exit once a witness is found.
    /// Deterministic because ∃ over a fixed family of independent item
    /// outcomes is order-insensitive — even though *which* items are
    /// evaluated after the first witness varies with scheduling.
    pub fn par_any_n<F>(&self, n: usize, pred: F) -> bool
    where
        F: Fn(usize) -> bool + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            return (0..n).any(pred);
        }
        let workers = self.threads.min(n);
        let cursor = AtomicUsize::new(0);
        let found = AtomicBool::new(false);
        self.execute_wide(workers, &|| loop {
            if found.load(Ordering::Relaxed) {
                break;
            }
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            if pred(i) {
                found.store(true, Ordering::Relaxed);
                break;
            }
        });
        found.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn split_seed_is_a_pure_injective_looking_mix() {
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        // distinct indices give distinct streams (spot-check a window)
        let seeds: BTreeSet<u64> = (0..10_000).map(|i| split_seed(42, i)).collect();
        assert_eq!(seeds.len(), 10_000);
        // and distinct parents give distinct streams for the same index
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        assert_ne!(split_seed2(9, 1, 2), split_seed2(9, 2, 1));
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn par_map_matches_serial_for_every_thread_count() {
        let inputs: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = inputs.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let rt = Runtime::new(threads);
            assert_eq!(rt.par_map(&inputs, |_, &x| x * x + 1), serial);
            assert_eq!(
                rt.par_map_n(inputs.len(), |i| inputs[i] * inputs[i] + 1),
                serial
            );
        }
    }

    #[test]
    fn par_map_handles_tiny_inputs() {
        let rt = Runtime::new(8);
        assert_eq!(rt.par_map_n(0, |i| i), Vec::<usize>::new());
        assert_eq!(rt.par_map_n(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn par_reduce_folds_in_index_order() {
        // string concatenation is order-sensitive: catches any shuffle
        let items: Vec<usize> = (0..100).collect();
        let serial: String = items.iter().map(|i| format!("{i},")).collect();
        for threads in [1, 2, 8] {
            let rt = Runtime::new(threads);
            let folded = rt.par_reduce(
                &items,
                |_, i| format!("{i},"),
                String::new(),
                |mut acc, s| {
                    acc.push_str(&s);
                    acc
                },
            );
            assert_eq!(folded, serial);
        }
    }

    #[test]
    fn par_any_agrees_with_serial_any() {
        for threads in [1, 2, 8] {
            let rt = Runtime::new(threads);
            assert!(rt.par_any_n(100, |i| i == 97));
            assert!(!rt.par_any_n(100, |i| i > 1000));
            assert!(!rt.par_any_n(0, |_| true));
        }
    }

    #[test]
    fn par_any_early_exit_skips_work() {
        // with a witness at index 0, an 8-thread scan of 10_000 items must
        // not evaluate all of them (cooperative cancellation)
        let evaluated = AtomicU64::new(0);
        let rt = Runtime::new(8);
        assert!(rt.par_any_n(10_000, |i| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            i == 0
        }));
        assert!(evaluated.load(Ordering::Relaxed) < 10_000);
    }

    #[test]
    fn pool_scoped_and_serial_paths_agree() {
        let inputs: Vec<u64> = (0..513).collect();
        let serial: Vec<u64> = inputs.iter().map(|&x| x.wrapping_mul(x) ^ 3).collect();
        for threads in [2usize, 8] {
            let pooled = Runtime::new(threads);
            let scoped = Runtime::new(threads).without_pool();
            assert_eq!(
                pooled.par_map(&inputs, |_, &x| x.wrapping_mul(x) ^ 3),
                serial
            );
            assert_eq!(
                scoped.par_map(&inputs, |_, &x| x.wrapping_mul(x) ^ 3),
                serial
            );
            assert!(pooled.par_any_n(513, |i| i == 400));
            assert!(scoped.par_any_n(513, |i| i == 400));
        }
    }

    #[test]
    fn local_pools_of_any_width_give_identical_results() {
        let serial: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for width in [1usize, 2, 8] {
            let p: &'static pool::Pool = Box::leak(Box::new(pool::Pool::new(width)));
            let rt = Runtime::new(8).with_pool(p);
            assert_eq!(
                rt.par_map_n(257, |i| i * 3 + 1),
                serial,
                "pool width {width}"
            );
        }
    }

    #[test]
    fn nested_par_calls_fall_back_to_scoped_spawn() {
        // outer par_map on the pool; inner par_map from pool workers must
        // not deadlock and must produce the same results
        let rt = Runtime::new(4);
        let out = rt.par_map_n(8, |i| {
            let inner = Runtime::new(2);
            inner
                .par_map_n(16, |j| i * 100 + j)
                .into_iter()
                .sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..16).map(|j| i * 100 + j).sum()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn traced_pool_dispatches_record_instants() {
        // a dedicated pool guarantees the dispatch is accepted (never
        // busy), so the `pool_dispatch` instant must appear; helper
        // chunk claims surface as `steal` instants. The tracer is
        // process-global, so concurrent tests may add events — the
        // assertions only require presence, never exact counts.
        let p: &'static pool::Pool = Box::leak(Box::new(pool::Pool::new(4)));
        let rt = Runtime::new(4).with_pool(p);
        cqc_obs::trace::set_enabled(true);
        let out: usize = rt.par_map_n(1024, |i| i).into_iter().sum();
        cqc_obs::trace::set_enabled(false);
        let trace = cqc_obs::trace::drain();
        assert_eq!(out, 1024 * 1023 / 2);
        let ndjson = trace.to_ndjson();
        assert!(ndjson.contains("\"name\":\"pool_dispatch\""), "{ndjson}");
        // the result is identical with the tracer off (and nothing records)
        let again: usize = rt.par_map_n(1024, |i| i).into_iter().sum();
        assert_eq!(again, out);
    }

    #[test]
    fn seeded_streams_are_schedule_independent() {
        // simulate the estimator pattern: item i draws from its own stream;
        // the order-insensitive sum is identical across thread counts
        let total = |threads: usize| -> u64 {
            Runtime::new(threads)
                .par_map_n(1000, |i| split_seed(0xC0FFEE, i as u64) >> 32)
                .into_iter()
                .sum()
        };
        assert_eq!(total(1), total(2));
        assert_eq!(total(1), total(8));
    }
}
