//! # cqc-runtime — deterministic parallel execution
//!
//! A std-only (no external dependencies) parallel runtime for the
//! embarrassingly parallel loops of the counting engines: colour-coding
//! repetitions (Lemma 22), Karp–Luby union trials (Lemma 51), batch
//! evaluation across databases, and the decomposition candidate search
//! (Lemma 43). The design goal is captured by one invariant:
//!
//! > **Determinism.** For a fixed engine seed, every estimate is
//! > bit-identical whether it is computed on 1, 2, or N threads.
//!
//! ## The seed-splitting scheme
//!
//! Sequential Monte-Carlo code conventionally threads *one* RNG stream
//! through every loop iteration, which makes the i-th draw depend on how
//! many draws iterations `0..i` consumed — and therefore on scheduling.
//! This crate removes that dependency: each logical work item (repetition
//! index, trial index, database index, candidate index) derives its own
//! RNG stream from the pair `(seed, item_index)` via [`split_seed`], a
//! SplitMix64-style bit-mix finaliser:
//!
//! ```text
//! z  = seed ⊕ (index · 0x9E3779B97F4A7C15)      // golden-ratio spacing
//! z  = (z ⊕ (z ≫ 30)) · 0xBF58476D1CE4E5B9
//! z  = (z ⊕ (z ≫ 27)) · 0x94D049BB133111EB
//! s' = z ⊕ (z ≫ 31)                             // the item's stream seed
//! ```
//!
//! The item seeds the workspace RNG (`rand::rngs::StdRng`, itself a
//! SplitMix64 generator) with `s'` and draws as much randomness as it
//! needs, in isolation. Nested loops split hierarchically with
//! [`split_seed2`] (`split_seed(split_seed(seed, a), b)`), e.g.
//! `(engine_seed, oracle_call, repetition)`. Because every item's
//! randomness is a pure function of the engine seed and the item's logical
//! coordinates, the multiset of item outcomes — and any order-insensitive
//! reduction of it (counts, sums, "any positive", first-k-by-index) — is
//! independent of thread count and scheduling.
//!
//! ## Execution model
//!
//! [`Runtime`] is a cheap `Copy` handle holding a resolved thread count
//! (requested, or [`THREADS_ENV`], or `std::thread::available_parallelism`
//! — see [`resolve_threads`]). [`Runtime::par_map`] /
//! [`Runtime::par_map_n`] execute a fixed index range with chunked
//! work-stealing: scoped worker threads repeatedly claim the next chunk of
//! indices from a shared atomic cursor, so a slow chunk on one worker does
//! not idle the others. Results are returned **in index order**, making
//! `par_map` a drop-in replacement for a serial `map` loop.
//! [`Runtime::par_reduce`] folds the mapped results in index order (again
//! scheduling-independent), and [`Runtime::par_any_n`] evaluates an
//! order-insensitive "∃ index with predicate" with cooperative early exit.
//!
//! Workers are spawned per call via `std::thread::scope`, which keeps the
//! crate free of `unsafe` and of global state; callers parallelise at the
//! coarsest profitable granularity (one `par_map` per oracle call, per
//! automaton node, per batch) so the spawn cost is amortised over many
//! work items.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Environment variable consulted by [`resolve_threads`] when the caller
/// requests automatic thread selection (`0`). Used by CI to force a fixed
/// thread count (e.g. `COUNTING_THREADS=2`) so the determinism guarantee is
/// exercised on every push.
pub const THREADS_ENV: &str = "COUNTING_THREADS";

/// Derive the RNG stream seed of work item `index` from a parent `seed`
/// (SplitMix64 finaliser over golden-ratio-spaced inputs; see the crate
/// docs for the full scheme and the determinism argument).
#[inline]
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hierarchical split for doubly indexed work items, e.g.
/// `(oracle_call, repetition)`: `split_seed(split_seed(seed, a), b)`.
#[inline]
pub fn split_seed2(seed: u64, a: u64, b: u64) -> u64 {
    split_seed(split_seed(seed, a), b)
}

/// Resolve a requested thread count: a positive request wins; `0` (auto)
/// falls back to [`THREADS_ENV`] and then to
/// `std::thread::available_parallelism()`.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A resolved parallel execution context: a thread count plus the
/// deterministic `par_*` primitives. Cheap to copy and pass down the call
/// stack; worker threads are scoped to each individual `par_*` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runtime {
    threads: usize,
}

impl Default for Runtime {
    /// Equivalent to `Runtime::new(0)` (automatic thread selection).
    fn default() -> Self {
        Runtime::new(0)
    }
}

impl Runtime {
    /// A runtime with `resolve_threads(requested)` threads
    /// (`0` = automatic: [`THREADS_ENV`], else available parallelism).
    pub fn new(requested: usize) -> Self {
        Runtime {
            threads: resolve_threads(requested).max(1),
        }
    }

    /// The single-threaded runtime (all `par_*` calls degenerate to serial
    /// loops on the calling thread; used to avoid nested oversubscription).
    pub const fn serial() -> Self {
        Runtime { threads: 1 }
    }

    /// The resolved number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Chunk size for `n` items: small enough that work can be stolen
    /// (≈ 4 chunks per worker), large enough to amortise the cursor
    /// traffic. Public so callers that pre-chunk their own inputs (e.g.
    /// slice-local reductions) share one chunking policy.
    pub fn chunk_size(&self, n: usize) -> usize {
        n.div_ceil(self.threads * 4).max(1)
    }

    /// Map `f` over `0..n` in parallel, returning results in index order —
    /// a drop-in replacement for `(0..n).map(f).collect()`. Deterministic:
    /// the output never depends on the thread count or the schedule.
    pub fn par_map_n<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let workers = self.threads.min(n);
        let chunk = self.chunk_size(n);
        let cursor = AtomicUsize::new(0);
        let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut local: Vec<(usize, R)> = Vec::new();
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            for i in start..(start + chunk).min(n) {
                                local.push((i, f(i)));
                            }
                        }
                        local
                    })
                })
                .collect();
            for h in handles {
                buckets.push(h.join().expect("runtime worker panicked"));
            }
        });
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in buckets.into_iter().flatten() {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("every index computed exactly once"))
            .collect()
    }

    /// Map `f` over a slice in parallel, returning results in item order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_n(items.len(), |i| f(i, &items[i]))
    }

    /// Parallel map-then-fold: map `f` over `items` in parallel and fold
    /// the results **in index order** with `fold` on the calling thread.
    /// The index-ordered fold keeps non-commutative reductions (first
    /// minimum, floating-point sums) bit-identical to the serial loop.
    pub fn par_reduce<T, R, A, F, G>(&self, items: &[T], f: F, init: A, fold: G) -> A
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        self.par_map(items, f).into_iter().fold(init, fold)
    }

    /// Does `pred` hold for any index in `0..n`? Evaluates items in
    /// parallel with cooperative early exit once a witness is found.
    /// Deterministic because ∃ over a fixed family of independent item
    /// outcomes is order-insensitive — even though *which* items are
    /// evaluated after the first witness varies with scheduling.
    pub fn par_any_n<F>(&self, n: usize, pred: F) -> bool
    where
        F: Fn(usize) -> bool + Sync,
    {
        if self.threads <= 1 || n <= 1 {
            return (0..n).any(pred);
        }
        let workers = self.threads.min(n);
        let cursor = AtomicUsize::new(0);
        let found = AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    if found.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    if pred(i) {
                        found.store(true, Ordering::Relaxed);
                        break;
                    }
                });
            }
        });
        found.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn split_seed_is_a_pure_injective_looking_mix() {
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        // distinct indices give distinct streams (spot-check a window)
        let seeds: BTreeSet<u64> = (0..10_000).map(|i| split_seed(42, i)).collect();
        assert_eq!(seeds.len(), 10_000);
        // and distinct parents give distinct streams for the same index
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        assert_ne!(split_seed2(9, 1, 2), split_seed2(9, 2, 1));
    }

    #[test]
    fn resolve_threads_prefers_explicit_request() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    #[test]
    fn par_map_matches_serial_for_every_thread_count() {
        let inputs: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = inputs.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 2, 3, 8] {
            let rt = Runtime::new(threads);
            assert_eq!(rt.par_map(&inputs, |_, &x| x * x + 1), serial);
            assert_eq!(
                rt.par_map_n(inputs.len(), |i| inputs[i] * inputs[i] + 1),
                serial
            );
        }
    }

    #[test]
    fn par_map_handles_tiny_inputs() {
        let rt = Runtime::new(8);
        assert_eq!(rt.par_map_n(0, |i| i), Vec::<usize>::new());
        assert_eq!(rt.par_map_n(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn par_reduce_folds_in_index_order() {
        // string concatenation is order-sensitive: catches any shuffle
        let items: Vec<usize> = (0..100).collect();
        let serial: String = items.iter().map(|i| format!("{i},")).collect();
        for threads in [1, 2, 8] {
            let rt = Runtime::new(threads);
            let folded = rt.par_reduce(
                &items,
                |_, i| format!("{i},"),
                String::new(),
                |mut acc, s| {
                    acc.push_str(&s);
                    acc
                },
            );
            assert_eq!(folded, serial);
        }
    }

    #[test]
    fn par_any_agrees_with_serial_any() {
        for threads in [1, 2, 8] {
            let rt = Runtime::new(threads);
            assert!(rt.par_any_n(100, |i| i == 97));
            assert!(!rt.par_any_n(100, |i| i > 1000));
            assert!(!rt.par_any_n(0, |_| true));
        }
    }

    #[test]
    fn par_any_early_exit_skips_work() {
        // with a witness at index 0, an 8-thread scan of 10_000 items must
        // not evaluate all of them (cooperative cancellation)
        let evaluated = AtomicU64::new(0);
        let rt = Runtime::new(8);
        assert!(rt.par_any_n(10_000, |i| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            i == 0
        }));
        assert!(evaluated.load(Ordering::Relaxed) < 10_000);
    }

    #[test]
    fn seeded_streams_are_schedule_independent() {
        // simulate the estimator pattern: item i draws from its own stream;
        // the order-insensitive sum is identical across thread counts
        let total = |threads: usize| -> u64 {
            Runtime::new(threads)
                .par_map_n(1000, |i| split_seed(0xC0FFEE, i as u64) >> 32)
                .into_iter()
                .sum()
        };
        assert_eq!(total(1), total(2));
        assert_eq!(total(1), total(8));
    }
}
