//! Property-based tests for the relational substrate: builder round trips,
//! the size measure ‖D‖ of Section 1.1, relation indices and complements, and
//! the singleton "constant" relations discussed below the problem definition.

use cqc_data::{Relation, Signature, Structure, StructureBuilder, Tuple, Val};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A small random database over a single binary relation `E` plus a unary
/// relation `L`, described by the raw fact lists.
#[derive(Debug, Clone)]
struct RawDb {
    universe: usize,
    binary_facts: Vec<(u32, u32)>,
    unary_facts: Vec<u32>,
}

fn raw_db() -> impl Strategy<Value = RawDb> {
    (2usize..8).prop_flat_map(|universe| {
        let n = universe as u32;
        let binary = proptest::collection::vec((0..n, 0..n), 0..20);
        let unary = proptest::collection::vec(0..n, 0..8);
        (binary, unary).prop_map(move |(binary_facts, unary_facts)| RawDb {
            universe,
            binary_facts,
            unary_facts,
        })
    })
}

fn build(raw: &RawDb) -> Structure {
    let mut b = StructureBuilder::new(raw.universe);
    b.relation("E", 2);
    b.relation("L", 1);
    for &(u, v) in &raw.binary_facts {
        b.fact("E", &[u, v]).unwrap();
    }
    for &u in &raw.unary_facts {
        b.fact("L", &[u]).unwrap();
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every inserted fact holds, and nothing else does.
    #[test]
    fn builder_round_trip(raw in raw_db()) {
        let db = build(&raw);
        let e = db.signature().symbol("E").unwrap();
        let l = db.signature().symbol("L").unwrap();
        let distinct_e: BTreeSet<(u32, u32)> = raw.binary_facts.iter().copied().collect();
        let distinct_l: BTreeSet<u32> = raw.unary_facts.iter().copied().collect();
        prop_assert_eq!(db.relation(e).len(), distinct_e.len());
        prop_assert_eq!(db.relation(l).len(), distinct_l.len());
        prop_assert_eq!(db.fact_count(), distinct_e.len() + distinct_l.len());
        for u in 0..raw.universe as u32 {
            for v in 0..raw.universe as u32 {
                prop_assert_eq!(
                    db.holds(e, &[Val(u), Val(v)]),
                    distinct_e.contains(&(u, v))
                );
            }
            prop_assert_eq!(db.holds(l, &[Val(u)]), distinct_l.contains(&u));
        }
    }

    /// ‖D‖ = |sig(D)| + |U(D)| + Σ_R |R^D|·ar(R), exactly as in Section 1.1.
    #[test]
    fn size_measure_formula(raw in raw_db()) {
        let db = build(&raw);
        let distinct_e: BTreeSet<(u32, u32)> = raw.binary_facts.iter().copied().collect();
        let distinct_l: BTreeSet<u32> = raw.unary_facts.iter().copied().collect();
        let expected = 2 + raw.universe + 2 * distinct_e.len() + distinct_l.len();
        prop_assert_eq!(db.size(), expected);
    }

    /// Inserting a duplicate fact is a no-op and reports `false`.
    #[test]
    fn duplicate_insert_is_noop(raw in raw_db()) {
        prop_assume!(!raw.binary_facts.is_empty());
        let mut db = build(&raw);
        let e = db.signature().symbol("E").unwrap();
        let before = db.relation(e).len();
        let (u, v) = raw.binary_facts[0];
        let inserted = db.insert_fact(e, &[Val(u), Val(v)]).unwrap();
        prop_assert!(!inserted);
        prop_assert_eq!(db.relation(e).len(), before);
    }

    /// The per-column index (`select`) agrees with a linear scan.
    #[test]
    fn relation_select_matches_scan(raw in raw_db(), pos in 0usize..2, value in 0u32..8) {
        let db = build(&raw);
        let e = db.signature().symbol("E").unwrap();
        let rel = db.relation(e);
        prop_assume!((value as usize) < raw.universe);
        let selected: BTreeSet<Vec<Val>> = rel
            .select(pos, Val(value))
            .into_iter()
            .map(|t| t.values().to_vec())
            .collect();
        let scanned: BTreeSet<Vec<Val>> = rel
            .iter()
            .filter(|t| t.get(pos) == Val(value))
            .map(|t| t.values().to_vec())
            .collect();
        prop_assert_eq!(selected, scanned);
    }

    /// The complement relation partitions `U(D)^ar(R)` together with the
    /// original relation (this is how negated predicates are materialised in
    /// `B(ϕ, D)`, Definition 20).
    #[test]
    fn complement_partitions_tuple_space(raw in raw_db()) {
        let db = build(&raw);
        let e = db.signature().symbol("E").unwrap();
        let rel = db.relation(e);
        let comp = rel.complement(raw.universe);
        prop_assert_eq!(rel.len() + comp.len(), raw.universe * raw.universe);
        for t in rel.iter() {
            prop_assert!(!comp.contains(t));
        }
        for t in comp.iter() {
            prop_assert!(!rel.contains(t));
        }
    }

    /// Adding all singleton "constant" relations (the R_v of Section 1.1)
    /// adds exactly one unary singleton per universe element.
    #[test]
    fn constant_relations_are_singletons(raw in raw_db()) {
        let mut db = build(&raw);
        let sig_before = db.signature().len();
        let map = db.add_constant_relations().unwrap();
        prop_assert_eq!(map.len(), raw.universe);
        prop_assert_eq!(db.signature().len(), sig_before + raw.universe);
        for (v, sym) in &map {
            let rel = db.relation(*sym);
            prop_assert_eq!(rel.len(), 1);
            prop_assert!(rel.contains_values(&[*v]));
        }
    }

    /// The active domain of a relation is exactly the set of values that
    /// appear in some tuple.
    #[test]
    fn active_domain_is_union_of_tuples(raw in raw_db()) {
        let db = build(&raw);
        let e = db.signature().symbol("E").unwrap();
        let rel = db.relation(e);
        let expected: BTreeSet<Val> = rel
            .iter()
            .flat_map(|t| t.values().iter().copied())
            .collect();
        prop_assert_eq!(rel.active_domain(), expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Signatures reject duplicate declarations with a different arity but
    /// tolerate re-declaration with the same arity through `StructureBuilder`.
    #[test]
    fn signature_declare_and_lookup(names in proptest::collection::vec("[A-Z][a-z]{0,3}", 1..6)) {
        let mut sig = Signature::new();
        let mut declared: Vec<(String, usize)> = Vec::new();
        for (i, name) in names.iter().enumerate() {
            if declared.iter().any(|(n, _)| n == name) {
                continue;
            }
            let arity = 1 + (i % 3);
            sig.declare(name, arity).unwrap();
            declared.push((name.clone(), arity));
        }
        prop_assert_eq!(sig.len(), declared.len());
        for (name, arity) in &declared {
            let id = sig.symbol(name).unwrap();
            prop_assert_eq!(sig.arity(id), *arity);
            prop_assert_eq!(sig.name(id), name.as_str());
        }
        if let Some(max) = declared.iter().map(|(_, a)| *a).max() {
            prop_assert_eq!(sig.max_arity(), max);
        }
    }

    /// A signature extended with extra symbols contains the original one.
    #[test]
    fn subsignature_check(extra in proptest::collection::vec(("[A-Z][a-z]{0,3}", 1usize..4), 0..4)) {
        let mut sig = Signature::new();
        sig.declare("E", 2).unwrap();
        // deduplicate by name: re-declaring a symbol with a different arity is
        // (correctly) rejected and is not what this property is about
        let mut pairs: Vec<(&str, usize)> = Vec::new();
        for (n, a) in &extra {
            if n != "E" && !pairs.iter().any(|(seen, _)| *seen == n.as_str()) {
                pairs.push((n.as_str(), *a));
            }
        }
        let bigger = sig.extend_with(&pairs).unwrap();
        prop_assert!(sig.is_subsignature_of(&bigger));
        prop_assert!(bigger.len() >= sig.len());
    }

    /// Tuples preserve their values and arity.
    #[test]
    fn tuple_round_trip(values in proptest::collection::vec(0u32..100, 1..5)) {
        let vals: Vec<Val> = values.iter().map(|&v| Val(v)).collect();
        let t = Tuple::new(&vals);
        prop_assert_eq!(t.arity(), vals.len());
        prop_assert_eq!(t.values(), &vals[..]);
        let t2 = Tuple::from_raw(&values);
        prop_assert_eq!(t, t2);
    }

    /// `Relation::insert` reports whether the tuple is new, and `len`
    /// counts distinct tuples only.
    #[test]
    fn relation_insert_dedups(tuples in proptest::collection::vec((0u32..5, 0u32..5), 0..25)) {
        let mut rel = Relation::new(2);
        let mut seen: BTreeSet<(u32, u32)> = BTreeSet::new();
        for &(u, v) in &tuples {
            let fresh = rel.insert(Tuple::new(&[Val(u), Val(v)]));
            prop_assert_eq!(fresh, seen.insert((u, v)));
        }
        prop_assert_eq!(rel.len(), seen.len());
    }
}
