//! Error types for the relational substrate.

use std::fmt;

/// Errors produced while building or manipulating relational structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DataError {
    /// A tuple was inserted whose length does not match the declared arity.
    ArityMismatch {
        /// Relation symbol name.
        symbol: String,
        /// Declared arity of the symbol.
        expected: usize,
        /// Length of the offending tuple.
        got: usize,
    },
    /// A tuple referenced a universe element that does not exist.
    ValueOutOfRange {
        /// The offending value.
        value: u32,
        /// Size of the universe.
        universe: usize,
    },
    /// A relation symbol was declared twice with different arities.
    ConflictingArity {
        /// Relation symbol name.
        symbol: String,
        /// First declared arity.
        first: usize,
        /// Second declared arity.
        second: usize,
    },
    /// A relation symbol was used without being declared.
    UnknownSymbol(String),
    /// A declared arity was zero; the paper requires positive arities.
    ZeroArity(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::ArityMismatch {
                symbol,
                expected,
                got,
            } => write!(
                f,
                "arity mismatch for relation `{symbol}`: expected {expected}, got a tuple of length {got}"
            ),
            DataError::ValueOutOfRange { value, universe } => write!(
                f,
                "value {value} is outside the universe of size {universe}"
            ),
            DataError::ConflictingArity {
                symbol,
                first,
                second,
            } => write!(
                f,
                "relation `{symbol}` declared with conflicting arities {first} and {second}"
            ),
            DataError::UnknownSymbol(s) => write!(f, "unknown relation symbol `{s}`"),
            DataError::ZeroArity(s) => {
                write!(f, "relation `{s}` declared with arity 0; arities must be positive")
            }
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_symbol() {
        let e = DataError::ArityMismatch {
            symbol: "E".into(),
            expected: 2,
            got: 3,
        };
        assert!(e.to_string().contains("E"));
        assert!(e.to_string().contains("2"));
        let e = DataError::UnknownSymbol("R".into());
        assert!(e.to_string().contains("R"));
        let e = DataError::ZeroArity("Z".into());
        assert!(e.to_string().contains("Z"));
        let e = DataError::ConflictingArity {
            symbol: "E".into(),
            first: 1,
            second: 2,
        };
        assert!(e.to_string().contains("conflicting"));
        let e = DataError::ValueOutOfRange {
            value: 7,
            universe: 3,
        };
        assert!(e.to_string().contains("7"));
    }
}
