//! Signatures: finite sets of relation symbols with positive arities.

use crate::{DataError, Result};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An interned relation symbol.
///
/// Symbols are dense indices into a [`Signature`]; two structures share
/// symbol identities only if they were built against the same signature (or a
/// signature extension, see [`Signature::extend_with`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SymbolId(pub u32);

impl SymbolId {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymbolId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A signature `σ`: a finite set of relation symbols with specified positive
/// arities (paper, Section 1.1).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    names: Vec<String>,
    arities: Vec<usize>,
    by_name: HashMap<String, SymbolId>,
}

impl Signature {
    /// An empty signature.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a relation symbol with the given arity, returning its id.
    ///
    /// Declaring the same name twice with the same arity is idempotent;
    /// declaring it with a different arity is an error. Arity 0 is rejected,
    /// matching the paper's requirement of *positive* arities.
    pub fn declare(&mut self, name: &str, arity: usize) -> Result<SymbolId> {
        if arity == 0 {
            return Err(DataError::ZeroArity(name.to_string()));
        }
        if let Some(&id) = self.by_name.get(name) {
            let existing = self.arities[id.index()];
            if existing != arity {
                return Err(DataError::ConflictingArity {
                    symbol: name.to_string(),
                    first: existing,
                    second: arity,
                });
            }
            return Ok(id);
        }
        let id = SymbolId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.arities.push(arity);
        self.by_name.insert(name.to_string(), id);
        Ok(id)
    }

    /// Look up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<SymbolId> {
        self.by_name.get(name).copied()
    }

    /// Look up a symbol by name, or return an error.
    pub fn require(&self, name: &str) -> Result<SymbolId> {
        self.symbol(name)
            .ok_or_else(|| DataError::UnknownSymbol(name.to_string()))
    }

    /// The arity `ar(R)` of a symbol.
    #[inline]
    pub fn arity(&self, id: SymbolId) -> usize {
        self.arities[id.index()]
    }

    /// The name of a symbol.
    #[inline]
    pub fn name(&self, id: SymbolId) -> &str {
        &self.names[id.index()]
    }

    /// The number of declared symbols, `|σ|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the signature is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The maximum arity `ar(σ)` over all symbols; 0 for an empty signature.
    pub fn max_arity(&self) -> usize {
        self.arities.iter().copied().max().unwrap_or(0)
    }

    /// Iterate over `(SymbolId, name, arity)` triples in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (SymbolId, &str, usize)> + '_ {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (SymbolId(i as u32), n.as_str(), self.arities[i]))
    }

    /// Returns `true` if every symbol of `self` appears in `other` with the
    /// same name and arity. Symbol *ids* must also agree, which holds when
    /// `other` was produced from `self` by [`Signature::extend_with`] or by
    /// further `declare` calls on a clone.
    pub fn is_subsignature_of(&self, other: &Signature) -> bool {
        if self.len() > other.len() {
            return false;
        }
        self.iter().all(|(id, name, ar)| {
            other.names.get(id.index()).map(String::as_str) == Some(name)
                && other.arities.get(id.index()).copied() == Some(ar)
        })
    }

    /// Produce a new signature containing every symbol of `self` followed by
    /// the declarations of `extra` (name, arity). Useful for constructing the
    /// signatures of `A(ϕ)` / `B(ϕ, D)` which extend `sig(ϕ)` with negated
    /// copies `R̄` and unary marker relations.
    pub fn extend_with(&self, extra: &[(&str, usize)]) -> Result<Signature> {
        let mut s = self.clone();
        for (name, ar) in extra {
            s.declare(name, *ar)?;
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut sig = Signature::new();
        let e = sig.declare("E", 2).unwrap();
        let r = sig.declare("R", 3).unwrap();
        assert_ne!(e, r);
        assert_eq!(sig.symbol("E"), Some(e));
        assert_eq!(sig.arity(e), 2);
        assert_eq!(sig.arity(r), 3);
        assert_eq!(sig.name(r), "R");
        assert_eq!(sig.len(), 2);
        assert_eq!(sig.max_arity(), 3);
        assert!(!sig.is_empty());
    }

    #[test]
    fn redeclare_same_arity_is_idempotent() {
        let mut sig = Signature::new();
        let a = sig.declare("E", 2).unwrap();
        let b = sig.declare("E", 2).unwrap();
        assert_eq!(a, b);
        assert_eq!(sig.len(), 1);
    }

    #[test]
    fn conflicting_arity_is_rejected() {
        let mut sig = Signature::new();
        sig.declare("E", 2).unwrap();
        let err = sig.declare("E", 3).unwrap_err();
        assert!(matches!(err, DataError::ConflictingArity { .. }));
    }

    #[test]
    fn zero_arity_is_rejected() {
        let mut sig = Signature::new();
        assert!(matches!(
            sig.declare("Z", 0).unwrap_err(),
            DataError::ZeroArity(_)
        ));
    }

    #[test]
    fn require_unknown_symbol() {
        let sig = Signature::new();
        assert!(matches!(
            sig.require("E").unwrap_err(),
            DataError::UnknownSymbol(_)
        ));
    }

    #[test]
    fn subsignature_and_extension() {
        let mut sig = Signature::new();
        sig.declare("E", 2).unwrap();
        let ext = sig.extend_with(&[("E_neg", 2), ("P0", 1)]).unwrap();
        assert!(sig.is_subsignature_of(&ext));
        assert!(!ext.is_subsignature_of(&sig));
        assert_eq!(ext.len(), 3);
        // ids of shared symbols agree
        assert_eq!(sig.symbol("E"), ext.symbol("E"));
    }

    #[test]
    fn iteration_order_is_declaration_order() {
        let mut sig = Signature::new();
        sig.declare("A", 1).unwrap();
        sig.declare("B", 2).unwrap();
        let names: Vec<&str> = sig.iter().map(|(_, n, _)| n).collect();
        assert_eq!(names, vec!["A", "B"]);
    }

    #[test]
    fn empty_signature_max_arity_is_zero() {
        let sig = Signature::new();
        assert_eq!(sig.max_arity(), 0);
        assert!(sig.is_empty());
        assert!(sig.is_subsignature_of(&Signature::new()));
    }
}
