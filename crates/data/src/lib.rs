//! # cqc-data — relational database / structure substrate
//!
//! This crate implements the relational substrate that the paper
//! *Approximately Counting Answers to Conjunctive Queries with Disequalities
//! and Negations* (PODS 2022) assumes: finite signatures, relational
//! structures (databases), facts, and the size measure `‖D‖` used throughout
//! the paper (Section 1.1 and Section 2.2).
//!
//! The central types are:
//!
//! * [`Signature`] — a finite set of relation symbols with specified positive
//!   arities (interned via [`SymbolId`]).
//! * [`Relation`] — a finite set of tuples over the universe, with per-column
//!   value indices to support joins and homomorphism search.
//! * [`Structure`] — a finite universe together with one relation per symbol.
//!   The paper's *database* `D` and the structures `A(ϕ)`, `B(ϕ, D)`,
//!   `Â(ϕ)`, `B̂(ϕ, D, V₁..V_ℓ, f)` of Sections 2 and 3 are all values of
//!   this type.
//! * [`StructureBuilder`] — a convenient, validated way to assemble structures.
//!
//! Universe elements are dense `u32` identifiers ([`Val`]); optional
//! human-readable names can be attached for debugging and examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod io;
pub mod relation;
pub mod signature;
pub mod structure;
pub mod tuple;

pub use error::DataError;
pub use io::{parse_facts, write_facts, FactsError};
pub use relation::Relation;
pub use signature::{Signature, SymbolId};
pub use structure::{Database, Structure, StructureBuilder};
pub use tuple::{Tuple, Val};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, DataError>;
