//! Universe elements and tuples (facts).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A universe element of a relational structure.
///
/// Universe elements are dense identifiers `0..universe_size`. The paper's
/// universe `U(D)` is represented by the range of valid [`Val`]s of a
/// [`crate::Structure`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Val(pub u32);

impl Val {
    /// The underlying index as a `usize`, convenient for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for Val {
    #[inline]
    fn from(v: u32) -> Self {
        Val(v)
    }
}

impl From<usize> for Val {
    #[inline]
    fn from(v: usize) -> Self {
        Val(v as u32)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A tuple (fact) of a relation: a fixed-length sequence of universe elements.
///
/// Tuples are stored as boxed slices to keep [`crate::Relation`] compact.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple(pub Box<[Val]>);

impl Tuple {
    /// Create a tuple from a slice of values.
    pub fn new(values: &[Val]) -> Self {
        Tuple(values.to_vec().into_boxed_slice())
    }

    /// Create a tuple from raw `u32` values.
    pub fn from_raw(values: &[u32]) -> Self {
        Tuple(values.iter().map(|&v| Val(v)).collect())
    }

    /// The arity (length) of the tuple.
    #[inline]
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values of the tuple.
    #[inline]
    pub fn values(&self) -> &[Val] {
        &self.0
    }

    /// The value at position `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Val {
        self.0[i]
    }
}

impl From<Vec<Val>> for Tuple {
    fn from(v: Vec<Val>) -> Self {
        Tuple(v.into_boxed_slice())
    }
}

impl From<&[Val]> for Tuple {
    fn from(v: &[Val]) -> Self {
        Tuple::new(v)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_roundtrip() {
        let t = Tuple::from_raw(&[1, 2, 3]);
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Val(1));
        assert_eq!(t.get(2), Val(3));
        assert_eq!(t.values(), &[Val(1), Val(2), Val(3)]);
        assert_eq!(format!("{t}"), "(1,2,3)");
    }

    #[test]
    fn val_conversions() {
        let v: Val = 5usize.into();
        assert_eq!(v, Val(5));
        let v: Val = 7u32.into();
        assert_eq!(v.index(), 7);
        assert_eq!(format!("{v}"), "7");
    }

    #[test]
    fn tuple_ordering_is_lexicographic() {
        let a = Tuple::from_raw(&[1, 2]);
        let b = Tuple::from_raw(&[1, 3]);
        let c = Tuple::from_raw(&[2, 0]);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn tuple_from_vec_and_slice() {
        let vals = vec![Val(0), Val(9)];
        let t1: Tuple = vals.clone().into();
        let t2: Tuple = vals.as_slice().into();
        assert_eq!(t1, t2);
    }
}
