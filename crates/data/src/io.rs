//! A small textual "facts file" format for relational databases, used by the
//! command-line tool (`cqc-cli`) and the examples.
//!
//! The format is line-oriented:
//!
//! ```text
//! # comments start with '#'
//! universe 6
//! relation F 2
//! relation Person 1
//! F 0 1
//! F 0 2
//! Person 3
//! ```
//!
//! * `universe N` — mandatory, must come before any fact; universe elements
//!   are `0 … N − 1`.
//! * `relation NAME ARITY` — declares a relation symbol; arities must be
//!   positive (Section 1.1 of the paper).
//! * `NAME v₁ … v_j` — a fact; the relation must have been declared and the
//!   number of values must match its arity.
//! * `element I NAME` — optional human-readable name for universe element `I`.
//!
//! [`write_facts`] produces a canonical rendering that [`parse_facts`] reads
//! back to an equal structure (see the round-trip tests).

use crate::error::DataError;
use crate::structure::{Structure, StructureBuilder};
use std::fmt;

/// Errors produced while reading a facts file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactsError {
    /// A line could not be parsed; carries the 1-based line number and a
    /// human-readable message.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        message: String,
    },
    /// The `universe` directive is missing or appears after facts.
    MissingUniverse,
    /// An underlying database error (arity mismatch, unknown symbol, …).
    Data {
        /// 1-based line number.
        line: usize,
        /// The underlying error.
        source: DataError,
    },
}

impl fmt::Display for FactsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactsError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            FactsError::MissingUniverse => {
                write!(f, "missing `universe N` directive before the first fact")
            }
            FactsError::Data { line, source } => write!(f, "line {line}: {source}"),
        }
    }
}

impl std::error::Error for FactsError {}

/// Parse a facts file into a [`Structure`].
pub fn parse_facts(text: &str) -> Result<Structure, FactsError> {
    let mut universe: Option<usize> = None;
    let mut declarations: Vec<(String, usize)> = Vec::new();
    let mut facts: Vec<(usize, String, Vec<u32>)> = Vec::new();
    let mut names: Vec<(usize, u32, String)> = Vec::new();

    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            "universe" => {
                if tokens.len() != 2 {
                    return Err(FactsError::Syntax {
                        line: line_no,
                        message: "expected `universe N`".into(),
                    });
                }
                let n: usize = tokens[1].parse().map_err(|_| FactsError::Syntax {
                    line: line_no,
                    message: format!("`{}` is not a valid universe size", tokens[1]),
                })?;
                universe = Some(n);
            }
            "relation" => {
                if tokens.len() != 3 {
                    return Err(FactsError::Syntax {
                        line: line_no,
                        message: "expected `relation NAME ARITY`".into(),
                    });
                }
                let arity: usize = tokens[2].parse().map_err(|_| FactsError::Syntax {
                    line: line_no,
                    message: format!("`{}` is not a valid arity", tokens[2]),
                })?;
                declarations.push((tokens[1].to_string(), arity));
            }
            "element" => {
                if tokens.len() < 3 {
                    return Err(FactsError::Syntax {
                        line: line_no,
                        message: "expected `element INDEX NAME`".into(),
                    });
                }
                let idx: u32 = tokens[1].parse().map_err(|_| FactsError::Syntax {
                    line: line_no,
                    message: format!("`{}` is not a valid element index", tokens[1]),
                })?;
                names.push((line_no, idx, tokens[2..].join(" ")));
            }
            name => {
                let mut values = Vec::with_capacity(tokens.len() - 1);
                for t in &tokens[1..] {
                    let v: u32 = t.parse().map_err(|_| FactsError::Syntax {
                        line: line_no,
                        message: format!("`{t}` is not a valid universe element"),
                    })?;
                    values.push(v);
                }
                facts.push((line_no, name.to_string(), values));
            }
        }
    }

    let universe = universe.ok_or(FactsError::MissingUniverse)?;
    let mut builder = StructureBuilder::new(universe);
    for (name, arity) in &declarations {
        if *arity == 0 {
            return Err(FactsError::Data {
                line: 0,
                source: DataError::ZeroArity(name.clone()),
            });
        }
        builder.relation(name, *arity);
    }
    for (line, name, values) in &facts {
        // `StructureBuilder::fact` would auto-declare unknown relations; in a
        // file format that silently turns typos into new relations, so reject
        // facts over undeclared symbols instead.
        if !declarations.iter().any(|(n, _)| n == name) {
            return Err(FactsError::Data {
                line: *line,
                source: DataError::UnknownSymbol(name.clone()),
            });
        }
        builder
            .fact(name, values)
            .map_err(|source| FactsError::Data {
                line: *line,
                source,
            })?;
    }
    let mut structure = builder.build();
    if !names.is_empty() {
        let mut element_names: Vec<String> = (0..universe).map(|i| i.to_string()).collect();
        for (line, idx, name) in names {
            if (idx as usize) >= universe {
                return Err(FactsError::Data {
                    line,
                    source: DataError::ValueOutOfRange {
                        value: idx,
                        universe,
                    },
                });
            }
            element_names[idx as usize] = name;
        }
        structure.set_element_names(element_names);
    }
    Ok(structure)
}

/// Render a structure in the facts-file format. The output is canonical:
/// relations appear in signature order, facts in tuple order.
pub fn write_facts(db: &Structure) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# {} relations, {} facts, universe of size {}\n",
        db.signature().len(),
        db.fact_count(),
        db.universe_size()
    ));
    out.push_str(&format!("universe {}\n", db.universe_size()));
    let symbols: Vec<_> = db
        .signature()
        .iter()
        .map(|(id, name, arity)| (id, name.to_string(), arity))
        .collect();
    for (_, name, arity) in &symbols {
        out.push_str(&format!("relation {name} {arity}\n"));
    }
    for (id, name, _) in &symbols {
        for tuple in db.relation(*id).iter() {
            out.push_str(name);
            for v in tuple.values() {
                out.push_str(&format!(" {}", v.0));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Val;

    const EXAMPLE: &str = "\
# the paper's running example
universe 6
relation F 2
F 0 1
F 0 2   # person 0 has two friends
F 3 4
F 3 5
element 0 alice
element 3 dana
";

    #[test]
    fn parses_the_example() {
        let db = parse_facts(EXAMPLE).unwrap();
        assert_eq!(db.universe_size(), 6);
        assert_eq!(db.fact_count(), 4);
        let f = db.signature().symbol("F").unwrap();
        assert!(db.holds(f, &[Val(0), Val(1)]));
        assert!(db.holds(f, &[Val(0), Val(2)]));
        assert!(!db.holds(f, &[Val(1), Val(0)]));
        assert_eq!(db.element_name(Val(0)), "alice");
        assert_eq!(db.element_name(Val(3)), "dana");
    }

    #[test]
    fn round_trip() {
        let db = parse_facts(EXAMPLE).unwrap();
        let rendered = write_facts(&db);
        let back = parse_facts(&rendered).unwrap();
        assert_eq!(back.universe_size(), db.universe_size());
        assert_eq!(back.fact_count(), db.fact_count());
        let f = db.signature().symbol("F").unwrap();
        let fb = back.signature().symbol("F").unwrap();
        for t in db.relation(f).iter() {
            assert!(back.relation(fb).contains(t));
        }
    }

    #[test]
    fn missing_universe_is_rejected() {
        assert_eq!(
            parse_facts("relation F 2\nF 0 1\n"),
            Err(FactsError::MissingUniverse)
        );
    }

    #[test]
    fn arity_mismatch_is_reported_with_line_number() {
        let text = "universe 3\nrelation F 2\nF 0 1 2\n";
        match parse_facts(text) {
            Err(FactsError::Data { line, source }) => {
                assert_eq!(line, 3);
                assert!(matches!(source, DataError::ArityMismatch { .. }));
            }
            other => panic!("expected an arity error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_symbol_is_reported() {
        let text = "universe 3\nG 0 1\n";
        match parse_facts(text) {
            Err(FactsError::Data { line, source }) => {
                assert_eq!(line, 2);
                assert!(matches!(source, DataError::UnknownSymbol(_)));
            }
            other => panic!("expected an unknown-symbol error, got {other:?}"),
        }
    }

    #[test]
    fn value_out_of_range_is_reported() {
        let text = "universe 2\nrelation F 2\nF 0 5\n";
        match parse_facts(text) {
            Err(FactsError::Data { source, .. }) => {
                assert!(matches!(source, DataError::ValueOutOfRange { .. }));
            }
            other => panic!("expected an out-of-range error, got {other:?}"),
        }
    }

    #[test]
    fn syntax_errors_carry_line_numbers() {
        let text = "universe x\n";
        match parse_facts(text) {
            Err(FactsError::Syntax { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected a syntax error, got {other:?}"),
        }
        let text = "universe 3\nrelation F two\n";
        match parse_facts(text) {
            Err(FactsError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected a syntax error, got {other:?}"),
        }
    }

    #[test]
    fn zero_arity_is_rejected() {
        let text = "universe 3\nrelation F 0\n";
        assert!(matches!(
            parse_facts(text),
            Err(FactsError::Data {
                source: DataError::ZeroArity(_),
                ..
            })
        ));
    }

    #[test]
    fn empty_database_round_trips() {
        let text = "universe 4\nrelation E 2\n";
        let db = parse_facts(text).unwrap();
        assert_eq!(db.fact_count(), 0);
        let back = parse_facts(&write_facts(&db)).unwrap();
        assert_eq!(back.fact_count(), 0);
        assert_eq!(back.universe_size(), 4);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# leading comment\n\nuniverse 2\nrelation E 2\n# another\nE 0 1\n\n";
        let db = parse_facts(text).unwrap();
        assert_eq!(db.fact_count(), 1);
    }

    #[test]
    fn error_display_is_informative() {
        let e = FactsError::Syntax {
            line: 7,
            message: "bad".into(),
        };
        assert!(e.to_string().contains("line 7"));
        assert!(FactsError::MissingUniverse.to_string().contains("universe"));
    }
}
