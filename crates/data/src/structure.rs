//! Relational structures (databases).

use crate::{DataError, Relation, Result, Signature, SymbolId, Tuple, Val};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A relational structure `A` (equivalently, a database `D`):
/// a finite universe `U(A)` together with, for each relation symbol
/// `R ∈ sig(A)`, a relation `R^A ⊆ U(A)^{ar(R)}` (paper, Sections 1.1 / 2.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Structure {
    signature: Signature,
    universe_size: usize,
    relations: Vec<Relation>,
    /// Optional element names, for display only.
    element_names: Option<Vec<String>>,
}

/// The documented public name for a database `D`.
///
/// Databases *are* relational structures — the paper uses the two terms
/// interchangeably (Section 1.1) — so this is an alias of [`Structure`].
/// Application code and the facade prelude use `Database` for data-side
/// values (what you evaluate a prepared query against) and `Structure` for
/// query-side associated structures such as `A(ϕ)` and `B(ϕ, D)`.
pub type Database = Structure;

impl Structure {
    /// Create a structure with the given signature and universe size, with
    /// every relation empty.
    pub fn empty(signature: Signature, universe_size: usize) -> Self {
        let relations = signature
            .iter()
            .map(|(_, _, ar)| Relation::new(ar))
            .collect();
        Structure {
            signature,
            universe_size,
            relations,
            element_names: None,
        }
    }

    /// The signature `sig(A)`.
    #[inline]
    pub fn signature(&self) -> &Signature {
        &self.signature
    }

    /// The size of the universe `|U(A)|`.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// Iterate over the universe elements `U(A)`.
    pub fn universe(&self) -> impl Iterator<Item = Val> + '_ {
        (0..self.universe_size as u32).map(Val)
    }

    /// The relation `R^A` of a symbol.
    #[inline]
    pub fn relation(&self, sym: SymbolId) -> &Relation {
        &self.relations[sym.index()]
    }

    /// Mutable access to `R^A`.
    #[inline]
    pub fn relation_mut(&mut self, sym: SymbolId) -> &mut Relation {
        &mut self.relations[sym.index()]
    }

    /// Attach human-readable element names (display only).
    pub fn set_element_names(&mut self, names: Vec<String>) {
        assert_eq!(names.len(), self.universe_size);
        self.element_names = Some(names);
    }

    /// The display name of an element (its numeric id if no names were set).
    pub fn element_name(&self, v: Val) -> String {
        match &self.element_names {
            Some(names) => names[v.index()].clone(),
            None => v.to_string(),
        }
    }

    /// Insert a fact, validating arity and range.
    pub fn insert_fact(&mut self, sym: SymbolId, values: &[Val]) -> Result<bool> {
        let ar = self.signature.arity(sym);
        if values.len() != ar {
            return Err(DataError::ArityMismatch {
                symbol: self.signature.name(sym).to_string(),
                expected: ar,
                got: values.len(),
            });
        }
        for v in values {
            if v.index() >= self.universe_size {
                return Err(DataError::ValueOutOfRange {
                    value: v.0,
                    universe: self.universe_size,
                });
            }
        }
        Ok(self.relations[sym.index()].insert(Tuple::new(values)))
    }

    /// Insert a fact given raw `u32` values.
    pub fn insert_fact_raw(&mut self, sym: SymbolId, values: &[u32]) -> Result<bool> {
        let vals: Vec<Val> = values.iter().map(|&v| Val(v)).collect();
        self.insert_fact(sym, &vals)
    }

    /// Test whether a fact holds.
    pub fn holds(&self, sym: SymbolId, values: &[Val]) -> bool {
        self.relations[sym.index()].contains_values(values)
    }

    /// The number of facts over all relations.
    pub fn fact_count(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// The size `‖A‖ = |sig(A)| + |U(A)| + Σ_R |R^A| · ar(R)` of the
    /// structure (paper, Sections 1.1 and 2.2).
    pub fn size(&self) -> usize {
        self.signature.len()
            + self.universe_size
            + self
                .relations
                .iter()
                .map(Relation::encoding_size)
                .sum::<usize>()
    }

    /// Extend this structure's signature with additional (empty) relations,
    /// returning the new symbol ids in order. Existing symbol ids remain
    /// valid.
    pub fn extend_signature(&mut self, extra: &[(&str, usize)]) -> Result<Vec<SymbolId>> {
        let mut ids = Vec::with_capacity(extra.len());
        for (name, ar) in extra {
            let before = self.signature.len();
            let id = self.signature.declare(name, *ar)?;
            if id.index() == before {
                // freshly declared: add an empty relation for it
                self.relations.push(Relation::new(*ar));
            }
            ids.push(id);
        }
        Ok(ids)
    }

    /// Add, for every universe element `v`, a fresh singleton unary relation
    /// `Const_v = {v}` and return the mapping `v → SymbolId`.
    ///
    /// The paper (Section 1.1) notes that singleton unary relations implement
    /// *constants* in queries; this is the device used by the self-reducible
    /// answer sampler of Section 6.
    /// The mapping is a sorted `BTreeMap` so that callers may iterate it
    /// without tying the iteration order (and hence anything downstream,
    /// such as sampler branching) to hash state (cqc-audit `hash-iter`).
    pub fn add_constant_relations(&mut self) -> Result<BTreeMap<Val, SymbolId>> {
        let mut map = BTreeMap::new();
        for v in 0..self.universe_size as u32 {
            let name = format!("@const_{v}");
            let ids = self.extend_signature(&[(&name, 1)])?;
            let id = ids[0];
            self.insert_fact(id, &[Val(v)])?;
            map.insert(Val(v), id);
        }
        Ok(map)
    }

    /// Whether `sig(self) ⊆ sig(other)` in the sense required for
    /// homomorphisms (same ids, names and arities for shared symbols).
    pub fn signature_contained_in(&self, other: &Structure) -> bool {
        self.signature.is_subsignature_of(&other.signature)
    }
}

impl fmt::Display for Structure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "structure: |U| = {}, {} relation(s), ‖·‖ = {}",
            self.universe_size,
            self.signature.len(),
            self.size()
        )?;
        for (id, name, ar) in self.signature.iter() {
            writeln!(
                f,
                "  {name}/{ar}: {} fact(s)",
                self.relations[id.index()].len()
            )?;
        }
        Ok(())
    }
}

/// A convenient, validated builder for structures.
///
/// ```
/// use cqc_data::StructureBuilder;
/// let mut b = StructureBuilder::new(4);
/// b.relation("E", 2);
/// b.fact("E", &[0, 1]).unwrap();
/// b.fact("E", &[1, 2]).unwrap();
/// let db = b.build();
/// assert_eq!(db.universe_size(), 4);
/// assert_eq!(db.fact_count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct StructureBuilder {
    signature: Signature,
    universe_size: usize,
    pending: Vec<(SymbolId, Vec<Val>)>,
    element_names: Option<Vec<String>>,
}

impl StructureBuilder {
    /// Start building a structure over a universe of the given size.
    pub fn new(universe_size: usize) -> Self {
        StructureBuilder {
            signature: Signature::new(),
            universe_size,
            pending: Vec::new(),
            element_names: None,
        }
    }

    /// Declare a relation symbol (idempotent), returning its id.
    pub fn relation(&mut self, name: &str, arity: usize) -> SymbolId {
        self.signature
            .declare(name, arity)
            .expect("conflicting relation declaration")
    }

    /// Add a fact for a (previously declared or auto-declared) relation.
    ///
    /// If the relation name is unknown it is declared with the arity of the
    /// provided tuple.
    pub fn fact(&mut self, name: &str, values: &[u32]) -> Result<&mut Self> {
        let sym = match self.signature.symbol(name) {
            Some(s) => s,
            None => self.signature.declare(name, values.len())?,
        };
        let ar = self.signature.arity(sym);
        if ar != values.len() {
            return Err(DataError::ArityMismatch {
                symbol: name.to_string(),
                expected: ar,
                got: values.len(),
            });
        }
        for &v in values {
            if (v as usize) >= self.universe_size {
                return Err(DataError::ValueOutOfRange {
                    value: v,
                    universe: self.universe_size,
                });
            }
        }
        self.pending
            .push((sym, values.iter().map(|&v| Val(v)).collect()));
        Ok(self)
    }

    /// Attach element names (display only).
    pub fn element_names(&mut self, names: &[&str]) -> &mut Self {
        assert_eq!(names.len(), self.universe_size);
        self.element_names = Some(names.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Finish building.
    pub fn build(self) -> Structure {
        let mut s = Structure::empty(self.signature, self.universe_size);
        for (sym, vals) in self.pending {
            s.insert_fact(sym, &vals).expect("validated at insertion");
        }
        if let Some(names) = self.element_names {
            s.set_element_names(names);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph_db(n: usize, edges: &[(u32, u32)]) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("E", 2);
        for &(u, v) in edges {
            b.fact("E", &[u, v]).unwrap();
        }
        b.build()
    }

    #[test]
    fn build_and_query() {
        let db = graph_db(3, &[(0, 1), (1, 2)]);
        let e = db.signature().symbol("E").unwrap();
        assert!(db.holds(e, &[Val(0), Val(1)]));
        assert!(!db.holds(e, &[Val(1), Val(0)]));
        assert_eq!(db.fact_count(), 2);
        assert_eq!(db.universe().count(), 3);
    }

    #[test]
    fn size_formula() {
        // ‖D‖ = |sig| + |U| + Σ |R|·ar(R) = 1 + 3 + 2·2 = 8
        let db = graph_db(3, &[(0, 1), (1, 2)]);
        assert_eq!(db.size(), 8);
    }

    #[test]
    fn insert_fact_validation() {
        let mut db = graph_db(3, &[]);
        let e = db.signature().symbol("E").unwrap();
        assert!(matches!(
            db.insert_fact(e, &[Val(0)]).unwrap_err(),
            DataError::ArityMismatch { .. }
        ));
        assert!(matches!(
            db.insert_fact(e, &[Val(0), Val(7)]).unwrap_err(),
            DataError::ValueOutOfRange { .. }
        ));
        assert!(db.insert_fact(e, &[Val(0), Val(2)]).unwrap());
        assert!(!db.insert_fact(e, &[Val(0), Val(2)]).unwrap());
    }

    #[test]
    fn builder_rejects_bad_facts() {
        let mut b = StructureBuilder::new(2);
        b.relation("E", 2);
        assert!(b.fact("E", &[0, 5]).is_err());
        assert!(b.fact("E", &[0]).is_err());
        assert!(b.fact("E", &[0, 1]).is_ok());
    }

    #[test]
    fn builder_autodeclares_relations() {
        let mut b = StructureBuilder::new(2);
        b.fact("R", &[0, 1, 1]).unwrap();
        let db = b.build();
        let r = db.signature().symbol("R").unwrap();
        assert_eq!(db.signature().arity(r), 3);
        assert_eq!(db.relation(r).len(), 1);
    }

    #[test]
    fn extend_signature_keeps_existing_ids() {
        let mut db = graph_db(3, &[(0, 1)]);
        let e = db.signature().symbol("E").unwrap();
        let ids = db.extend_signature(&[("E_neg", 2), ("P", 1)]).unwrap();
        assert_eq!(ids.len(), 2);
        assert_eq!(db.signature().symbol("E"), Some(e));
        assert!(db.relation(ids[0]).is_empty());
        // extending with an existing symbol is idempotent
        let again = db.extend_signature(&[("P", 1)]).unwrap();
        assert_eq!(again[0], ids[1]);
    }

    #[test]
    fn constant_relations() {
        let mut db = graph_db(3, &[(0, 1)]);
        let consts = db.add_constant_relations().unwrap();
        assert_eq!(consts.len(), 3);
        for (v, sym) in &consts {
            assert_eq!(db.relation(*sym).len(), 1);
            assert!(db.holds(*sym, &[*v]));
        }
    }

    #[test]
    fn constant_relations_iterate_in_value_order() {
        // Regression for the cqc-audit `hash-iter` conversion: the map is
        // sorted, so callers (the sampler's constant machinery) may iterate
        // it without picking up hash state.
        let mut db = graph_db(5, &[(0, 1)]);
        let consts = db.add_constant_relations().unwrap();
        let keys: Vec<Val> = consts.keys().copied().collect();
        assert_eq!(keys, (0..5).map(Val).collect::<Vec<_>>());
        // ids were assigned in the same ascending pass
        let ids: Vec<_> = consts.values().map(|s| s.index()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted);
    }

    #[test]
    fn element_names_display() {
        let mut b = StructureBuilder::new(2);
        b.relation("E", 2);
        b.element_names(&["alice", "bob"]);
        let db = b.build();
        assert_eq!(db.element_name(Val(0)), "alice");
        assert_eq!(db.element_name(Val(1)), "bob");
        let plain = graph_db(1, &[]);
        assert_eq!(plain.element_name(Val(0)), "0");
    }

    #[test]
    fn signature_containment_between_structures() {
        let db = graph_db(3, &[(0, 1)]);
        let mut bigger = graph_db(5, &[(0, 1)]);
        bigger.extend_signature(&[("F", 2)]).unwrap();
        assert!(db.signature_contained_in(&bigger));
        assert!(!bigger.signature_contained_in(&db));
    }

    #[test]
    fn display_contains_relation_names() {
        let db = graph_db(3, &[(0, 1)]);
        let s = format!("{db}");
        assert!(s.contains("E/2"));
        assert!(s.contains("1 fact"));
    }
}
