//! Relations: finite sets of tuples with per-column indices.

use crate::tuple::{Tuple, Val};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};

/// Per-position value index: `index[pos][v]` lists the tuples carrying
/// value `v` at position `pos`.
type PositionIndex = Vec<HashMap<Val, Vec<Tuple>>>;

/// A relation `R^D ⊆ U(D)^{ar(R)}`: a set of facts of a fixed arity.
///
/// Tuples are kept in a sorted set (deterministic iteration) and an inverted
/// index `position → value → tuple positions` is maintained lazily to support
/// selections during joins and homomorphism search.
#[derive(Debug, Serialize, Deserialize)]
pub struct Relation {
    arity: usize,
    tuples: BTreeSet<Tuple>,
    /// Lazily built index: `index[pos]` maps a value to the tuples that carry
    /// that value at position `pos`. Invalidated on mutation. A `OnceLock`
    /// (rather than a `RefCell`) so that read-only relations stay `Sync` —
    /// the parallel runtime shares databases across worker threads, and the
    /// first thread to need the index builds it for everyone.
    #[serde(skip)]
    index: std::sync::OnceLock<PositionIndex>,
}

impl Clone for Relation {
    fn clone(&self) -> Self {
        // the lazy index is cheap to rebuild; don't copy it
        Relation {
            arity: self.arity,
            tuples: self.tuples.clone(),
            index: std::sync::OnceLock::new(),
        }
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity && self.tuples == other.tuples
    }
}
impl Eq for Relation {}

impl Relation {
    /// Create an empty relation with the given (positive) arity.
    pub fn new(arity: usize) -> Self {
        assert!(arity > 0, "relations must have positive arity");
        Relation {
            arity,
            tuples: BTreeSet::new(),
            index: std::sync::OnceLock::new(),
        }
    }

    /// The arity of the relation.
    #[inline]
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The number of facts `|R^D|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no facts.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Insert a tuple. Returns `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if the tuple length does not match the arity (builders validate
    /// this earlier with a proper error).
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(
            t.arity(),
            self.arity,
            "tuple arity {} does not match relation arity {}",
            t.arity(),
            self.arity
        );
        self.index = std::sync::OnceLock::new();
        self.tuples.insert(t)
    }

    /// Test membership of a tuple.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.contains(t)
    }

    /// Test membership of a tuple given as a value slice.
    pub fn contains_values(&self, values: &[Val]) -> bool {
        if values.len() != self.arity {
            return false;
        }
        self.tuples.contains(&Tuple::new(values))
    }

    /// Iterate over all tuples in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples.iter()
    }

    /// All tuples carrying `value` at position `pos` (0-based).
    ///
    /// Builds the per-column index on first use.
    pub fn select(&self, pos: usize, value: Val) -> Vec<Tuple> {
        assert!(pos < self.arity);
        self.ensure_index()[pos]
            .get(&value)
            .cloned()
            .unwrap_or_default()
    }

    /// The set of distinct values occurring at position `pos`.
    pub fn active_domain_at(&self, pos: usize) -> BTreeSet<Val> {
        assert!(pos < self.arity);
        self.tuples.iter().map(|t| t.get(pos)).collect()
    }

    /// The set of distinct values occurring anywhere in the relation.
    pub fn active_domain(&self) -> BTreeSet<Val> {
        self.tuples
            .iter()
            .flat_map(|t| t.values().iter().copied())
            .collect()
    }

    /// The complement of this relation with respect to `U^arity` where
    /// `U = {0, .., universe_size-1}`.
    ///
    /// This is used to materialise the negated relations `R̄^{B(ϕ,D)} =
    /// U(D)^{ar(R)} ∖ R^D` of Definition 20. The cost is `Θ(|U|^{ar})`,
    /// matching the `ν·|U(D)|^a` term of Observation 21.
    pub fn complement(&self, universe_size: usize) -> Relation {
        let mut out = Relation::new(self.arity);
        let mut current = vec![0u32; self.arity];
        loop {
            let tup = Tuple::from_raw(&current);
            if !self.tuples.contains(&tup) {
                out.insert(tup);
            }
            // advance odometer
            let mut i = self.arity;
            loop {
                if i == 0 {
                    return out;
                }
                i -= 1;
                current[i] += 1;
                if (current[i] as usize) < universe_size {
                    break;
                }
                current[i] = 0;
                if i == 0 {
                    return out;
                }
            }
        }
    }

    /// Sum of tuple lengths, i.e. `|R^D| · ar(R)`; the per-relation
    /// contribution to `‖D‖`.
    pub fn encoding_size(&self) -> usize {
        self.len() * self.arity
    }

    fn ensure_index(&self) -> &PositionIndex {
        self.index.get_or_init(|| {
            let mut built: Vec<HashMap<Val, Vec<Tuple>>> = vec![HashMap::new(); self.arity];
            for t in &self.tuples {
                for (pos, v) in t.values().iter().enumerate() {
                    built[pos].entry(*v).or_default().push(t.clone());
                }
            }
            built
        })
    }
}

impl FromIterator<Tuple> for Relation {
    /// Collect tuples into a relation; the arity is taken from the first
    /// tuple. Collecting an empty iterator panics (arity unknown) — use
    /// [`Relation::new`] for empty relations.
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Self {
        let mut it = iter.into_iter().peekable();
        let first = it.peek().expect("cannot infer arity of an empty relation");
        let mut r = Relation::new(first.arity());
        for t in it {
            r.insert(t);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(pairs: &[(u32, u32)]) -> Relation {
        let mut r = Relation::new(2);
        for &(a, b) in pairs {
            r.insert(Tuple::from_raw(&[a, b]));
        }
        r
    }

    #[test]
    fn insert_and_contains() {
        let r = rel(&[(0, 1), (1, 2)]);
        assert_eq!(r.len(), 2);
        assert!(r.contains(&Tuple::from_raw(&[0, 1])));
        assert!(!r.contains(&Tuple::from_raw(&[1, 0])));
        assert!(r.contains_values(&[Val(1), Val(2)]));
        assert!(!r.contains_values(&[Val(1)]));
        assert!(!r.is_empty());
        assert_eq!(r.arity(), 2);
    }

    #[test]
    fn duplicate_insert_is_ignored() {
        let mut r = Relation::new(1);
        assert!(r.insert(Tuple::from_raw(&[3])));
        assert!(!r.insert(Tuple::from_raw(&[3])));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "tuple arity")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::from_raw(&[1]));
    }

    #[test]
    fn select_by_position() {
        let r = rel(&[(0, 1), (0, 2), (1, 2)]);
        let sel = r.select(0, Val(0));
        assert_eq!(sel.len(), 2);
        let sel = r.select(1, Val(2));
        assert_eq!(sel.len(), 2);
        let sel = r.select(1, Val(9));
        assert!(sel.is_empty());
    }

    #[test]
    fn select_index_survives_mutation() {
        let mut r = rel(&[(0, 1)]);
        assert_eq!(r.select(0, Val(0)).len(), 1);
        r.insert(Tuple::from_raw(&[0, 2]));
        // index must be rebuilt after mutation
        assert_eq!(r.select(0, Val(0)).len(), 2);
    }

    #[test]
    fn active_domains() {
        let r = rel(&[(0, 1), (2, 1)]);
        assert_eq!(
            r.active_domain_at(0),
            [Val(0), Val(2)].into_iter().collect()
        );
        assert_eq!(r.active_domain_at(1), [Val(1)].into_iter().collect());
        assert_eq!(
            r.active_domain(),
            [Val(0), Val(1), Val(2)].into_iter().collect()
        );
    }

    #[test]
    fn complement_binary() {
        let r = rel(&[(0, 0), (1, 1)]);
        let c = r.complement(2);
        assert_eq!(c.len(), 2);
        assert!(c.contains(&Tuple::from_raw(&[0, 1])));
        assert!(c.contains(&Tuple::from_raw(&[1, 0])));
        // complement of the complement is the original
        let cc = c.complement(2);
        assert_eq!(cc, r);
    }

    #[test]
    fn complement_unary_and_empty() {
        let mut r = Relation::new(1);
        r.insert(Tuple::from_raw(&[1]));
        let c = r.complement(3);
        assert_eq!(c.len(), 2);
        let empty = Relation::new(2);
        let c = empty.complement(3);
        assert_eq!(c.len(), 9);
    }

    #[test]
    fn encoding_size() {
        let r = rel(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(r.encoding_size(), 6);
    }

    #[test]
    fn from_iterator() {
        let r: Relation = vec![Tuple::from_raw(&[1, 2]), Tuple::from_raw(&[3, 4])]
            .into_iter()
            .collect();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 2);
    }
}
