//! Property tests over the enumerated workload families (ISSUE 8,
//! satellite 1): every query the grammar emits must parse, round-trip
//! through `Display`, prepare without panicking, and keep its Figure-1
//! class under variable renaming and atom reordering. The suites double
//! as test input for the engine, so these invariants are what every
//! downstream consumer (loadgen, `cqc suite`, the golden manifest) leans
//! on.

use cqc_core::Engine;
use cqc_query::{parse_query, QueryClass};
use cqc_workloads::enumo::canonical_key;
use cqc_workloads::{enumerate_class, suite, ALL_CLASSES};
use proptest::prelude::*;

/// Rename the grammar's variable alphabet `{x, y, z, w}` to a disjoint
/// one. Variables are the only single-character lowercase tokens in a
/// suite text (relations are `E`/`R`, the head symbol is `ans`), so a
/// per-character map is a sound renaming.
fn rename_vars(text: &str) -> String {
    text.chars()
        .map(|c| match c {
            'x' => 'p',
            'y' => 'q',
            'z' => 'r',
            'w' => 's',
            other => other,
        })
        .collect()
}

/// Split a query body on top-level `, ` separators (commas inside atom
/// parentheses don't count), so atoms and disequalities come back as
/// whole items.
fn body_items(body: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut depth = 0usize;
    let mut current = String::new();
    let mut chars = body.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '(' => {
                depth += 1;
                current.push(c);
            }
            ')' => {
                depth -= 1;
                current.push(c);
            }
            ',' if depth == 0 => {
                items.push(current.trim().to_string());
                if chars.peek() == Some(&' ') {
                    chars.next();
                }
                current = String::new();
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        items.push(current.trim().to_string());
    }
    items
}

/// Rebuild the query text with its literal atoms reversed (disequalities
/// keep their position after the atoms, as the parser renders them).
fn reorder_atoms(text: &str) -> String {
    let (head, body) = text.split_once(" :- ").expect("suite text has a body");
    let items = body_items(body);
    let (mut atoms, diseqs): (Vec<String>, Vec<String>) =
        items.into_iter().partition(|item| !item.contains("!="));
    atoms.reverse();
    atoms.extend(diseqs);
    format!("{head} :- {}", atoms.join(", "))
}

#[test]
fn every_class_enumerates_at_least_100_queries_that_round_trip() {
    for class in ALL_CLASSES {
        let family = enumerate_class(class);
        assert!(
            family.len() >= 100,
            "{class:?} enumerates only {} queries",
            family.len()
        );
        for (i, sq) in family.iter().enumerate() {
            let parsed = parse_query(&sq.text)
                .unwrap_or_else(|e| panic!("{}: `{}` fails to parse: {e}", sq.name, sq.text));
            assert_eq!(
                parsed.to_string(),
                sq.text,
                "{} text is not normalized",
                sq.name
            );
            assert_eq!(parsed.class(), class, "{} drifted out of class", sq.name);
            assert_eq!(sq.query.class(), class);
            let expected = format!(
                "{}-{i:03}",
                match class {
                    QueryClass::CQ => "cq",
                    QueryClass::DCQ => "dcq",
                    QueryClass::ECQ => "ecq",
                }
            );
            assert_eq!(sq.name, expected, "names follow the enumeration index");
        }
    }
}

#[test]
fn every_enumerated_query_prepares_without_panic() {
    // the class filter includes `Filter::Safe`, which is exactly the
    // engine's preparability precondition — so `prepare` must accept all
    // of them, not merely fail cleanly
    let engine = Engine::builder()
        .accuracy(0.5, 0.25)
        .seed(7)
        .build()
        .unwrap();
    for class in ALL_CLASSES {
        for sq in enumerate_class(class) {
            let prepared = engine.prepare(&sq.query);
            assert!(
                prepared.is_ok(),
                "{} (`{}`) rejected by prepare: {:?}",
                sq.name,
                sq.text,
                prepared.err()
            );
        }
    }
}

#[test]
fn class_is_stable_under_variable_renaming_and_atom_reordering() {
    for class in ALL_CLASSES {
        for sq in enumerate_class(class) {
            let renamed = parse_query(&rename_vars(&sq.text))
                .unwrap_or_else(|e| panic!("{}: renamed text fails to parse: {e}", sq.name));
            assert_eq!(
                renamed.class(),
                class,
                "{}: renaming changed the class",
                sq.name
            );
            // the canonical key labels variables by first occurrence, so a
            // consistent renaming must not move the query between buckets
            assert_eq!(
                canonical_key(&renamed),
                canonical_key(&sq.query),
                "{}: renaming changed the canonical key",
                sq.name
            );

            let reordered = parse_query(&reorder_atoms(&sq.text))
                .unwrap_or_else(|e| panic!("{}: reordered text fails to parse: {e}", sq.name));
            assert_eq!(
                reordered.class(),
                class,
                "{}: atom reordering changed the class",
                sq.name
            );
            assert_eq!(
                reordered.class(),
                renamed.class(),
                "{}: transforms disagree on the class",
                sq.name
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `suite` is a pure function of `(class, seed, count)`: same inputs,
    /// same draw — and every drawn query belongs to the enumeration.
    #[test]
    fn suites_are_deterministic_samples_of_the_enumeration(seed in any::<u64>()) {
        for class in ALL_CLASSES {
            let a = suite(class, seed, 12);
            let b = suite(class, seed, 12);
            prop_assert_eq!(a.queries.len(), b.queries.len());
            for (qa, qb) in a.queries.iter().zip(&b.queries) {
                prop_assert_eq!(&qa.name, &qb.name);
                prop_assert_eq!(&qa.text, &qb.text);
            }
            let family = enumerate_class(class);
            for sq in &a.queries {
                prop_assert!(
                    family.iter().any(|f| f.name == sq.name && f.text == sq.text),
                    "{} not in the {:?} enumeration",
                    sq.name,
                    class
                );
            }
            // without replacement: no duplicate names in one draw
            let mut names: Vec<&str> = a.queries.iter().map(|q| q.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            prop_assert_eq!(names.len(), a.queries.len(), "duplicate draw in {:?}", class);
        }
    }
}
