//! Random graph and database generators.

use cqc_data::{Structure, StructureBuilder};
use rand::Rng;

/// A generated graph: vertex count plus directed edge list.
#[derive(Debug, Clone)]
pub struct GraphSpec {
    /// Number of vertices.
    pub n: usize,
    /// Directed edges (u, v).
    pub edges: Vec<(usize, usize)>,
}

impl GraphSpec {
    /// The undirected edge list (deduplicated, u < v).
    pub fn undirected_edges(&self) -> Vec<(usize, usize)> {
        let mut out: Vec<(usize, usize)> = self
            .edges
            .iter()
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .filter(|&(u, v)| u != v)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// An Erdős–Rényi digraph `G(n, p)` (no self-loops).
pub fn erdos_renyi<R: Rng>(n: usize, p: f64, rng: &mut R) -> GraphSpec {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in 0..n {
            if u != v && rng.gen::<f64>() < p {
                edges.push((u, v));
            }
        }
    }
    GraphSpec { n, edges }
}

/// A random graph in which every vertex gets exactly `out_degree` distinct
/// out-neighbours (a cheap stand-in for random regular graphs).
pub fn random_regularish<R: Rng>(n: usize, out_degree: usize, rng: &mut R) -> GraphSpec {
    assert!(out_degree < n);
    let mut edges = Vec::new();
    for u in 0..n {
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < out_degree {
            let v = rng.gen_range(0..n);
            if v != u {
                chosen.insert(v);
            }
        }
        edges.extend(chosen.into_iter().map(|v| (u, v)));
    }
    GraphSpec { n, edges }
}

/// An `rows × cols` grid graph (edges in both directions).
pub fn grid_graph(rows: usize, cols: usize) -> GraphSpec {
    let id = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
                edges.push((id(r, c + 1), id(r, c)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
                edges.push((id(r + 1, c), id(r, c)));
            }
        }
    }
    GraphSpec {
        n: rows * cols,
        edges,
    }
}

/// Turn a graph into a relational database with a single binary relation.
/// `symmetric` adds both orientations of every edge.
pub fn graph_database(spec: &GraphSpec, relation: &str, symmetric: bool) -> Structure {
    let mut b = StructureBuilder::new(spec.n);
    b.relation(relation, 2);
    for &(u, v) in &spec.edges {
        b.fact(relation, &[u as u32, v as u32]).unwrap();
        if symmetric {
            b.fact(relation, &[v as u32, u as u32]).unwrap();
        }
    }
    b.build()
}

/// A random database for a ternary relation `R(a, b, c)` with `facts` facts —
/// used by the unbounded-arity experiments (Theorems 13 and 16).
pub fn random_ternary_database<R: Rng>(n: usize, facts: usize, rng: &mut R) -> Structure {
    let mut b = StructureBuilder::new(n);
    b.relation("R", 3);
    b.relation("E", 2);
    for _ in 0..facts {
        let t = [
            rng.gen_range(0..n as u32),
            rng.gen_range(0..n as u32),
            rng.gen_range(0..n as u32),
        ];
        b.fact("R", &t).unwrap();
    }
    for _ in 0..facts {
        b.fact(
            "E",
            &[rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)],
        )
        .unwrap();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_density() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = erdos_renyi(50, 0.1, &mut rng);
        let expected = 50.0 * 49.0 * 0.1;
        assert!((g.edges.len() as f64 - expected).abs() < 0.5 * expected);
        assert!(g.edges.iter().all(|&(u, v)| u != v && u < 50 && v < 50));
    }

    #[test]
    fn regularish_degrees() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = random_regularish(20, 3, &mut rng);
        assert_eq!(g.edges.len(), 60);
        for u in 0..20 {
            assert_eq!(g.edges.iter().filter(|&&(a, _)| a == u).count(), 3);
        }
    }

    #[test]
    fn grid_structure() {
        let g = grid_graph(3, 4);
        assert_eq!(g.n, 12);
        // 2 * (3*3 + 2*4) = 34 directed edges
        assert_eq!(g.edges.len(), 34);
        let und = g.undirected_edges();
        assert_eq!(und.len(), 17);
    }

    #[test]
    fn database_construction() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = erdos_renyi(10, 0.2, &mut rng);
        let db = graph_database(&g, "E", false);
        assert_eq!(db.universe_size(), 10);
        assert_eq!(db.fact_count(), g.edges.len());
        let sym = graph_database(&g, "E", true);
        assert!(sym.fact_count() >= db.fact_count());
    }

    #[test]
    fn ternary_database() {
        let mut rng = StdRng::seed_from_u64(4);
        let db = random_ternary_database(12, 30, &mut rng);
        let r = db.signature().symbol("R").unwrap();
        assert_eq!(db.signature().arity(r), 3);
        assert!(db.relation(r).len() <= 30);
        assert!(db.signature().symbol("E").is_some());
    }
}
