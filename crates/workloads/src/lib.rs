//! # cqc-workloads — workload generators for the experiments
//!
//! Random graphs and databases, plus the query families used throughout the
//! paper's discussion and in EXPERIMENTS.md: path/star/clique queries, the
//! footnote-4 quantified-star query, the Hamiltonian-path DCQ of
//! Observation 10, locally-injective-homomorphism encodings (Corollary 6) and
//! higher-arity families for the unbounded-arity results (Theorems 13/16).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumo;
pub mod graphs;
pub mod mix;
pub mod queries;

pub use cqc_query::QueryClass;
pub use enumo::{
    class_name, enumerate_class, manifest, measure, parse_class, suite, suite_database,
    suite_request_mix, suite_request_spec, Filter, Metric, Suite, SuiteQuery, Workload,
    ALL_CLASSES,
};
pub use graphs::{erdos_renyi, graph_database, grid_graph, random_regularish, GraphSpec};
pub use mix::{request_mix, request_spec, RequestSpec, MIX_QUERIES};
pub use queries::{
    clique_query, footnote4_star_query, hyperchain_query, path_query, star_query, QuerySpec,
};
