//! Query families used by the experiments.

use cqc_query::{Query, QueryBuilder, Var};

/// A named query family instance, for reporting.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Human-readable name (appears in experiment tables).
    pub name: String,
    /// The query itself.
    pub query: Query,
}

/// The path query
/// `ϕ(x₀, x_k) = ∃x₁..x_{k−1} ⋀ E(x_i, x_{i+1})`
/// with optional disequalities between variables two apart and an optional
/// negated atom `¬E(x_k, x_{k−1})` ("the last step is not reciprocated").
/// The negated atom's scope coincides with an existing hyperedge, so the
/// treewidth of `H(ϕ)` stays 1 for every `k` (experiment E1).
pub fn path_query(k: usize, disequalities: bool, negation: bool) -> QuerySpec {
    assert!(k >= 1);
    let mut b = QueryBuilder::new();
    let vars: Vec<Var> = (0..=k).map(|i| b.var(&format!("x{i}"))).collect();
    b.free(&[vars[0], vars[k]]);
    for i in 0..k {
        b.atom("E", &[vars[i], vars[i + 1]]);
    }
    if disequalities {
        for i in 0..k.saturating_sub(1) {
            b.disequality(vars[i], vars[i + 2]);
        }
    }
    if negation {
        b.negated_atom("E", &[vars[k], vars[k - 1]]);
    }
    QuerySpec {
        name: format!(
            "path(k={k}{}{})",
            if disequalities { ",≠" } else { "" },
            if negation { ",¬" } else { "" }
        ),
        query: b.build().expect("path query is well-formed"),
    }
}

/// The "two distinct friends" style star query with `leaves` existential
/// leaves around a free centre, all leaves pairwise distinct:
/// `ϕ(x) = ∃y₁..y_m ⋀ E(x, y_i) ∧ ⋀_{i<j} y_i ≠ y_j`
/// (generalises query (1) of the paper's introduction).
pub fn star_query(leaves: usize, disequalities: bool) -> QuerySpec {
    assert!(leaves >= 1);
    let mut b = QueryBuilder::new();
    let x = b.var("x");
    let ys: Vec<Var> = (0..leaves).map(|i| b.var(&format!("y{i}"))).collect();
    b.free(&[x]);
    for &y in &ys {
        b.atom("E", &[x, y]);
    }
    if disequalities {
        for i in 0..leaves {
            for j in (i + 1)..leaves {
                b.disequality(ys[i], ys[j]);
            }
        }
    }
    QuerySpec {
        name: format!("star(m={leaves}{})", if disequalities { ",≠" } else { "" }),
        query: b.build().expect("star query is well-formed"),
    }
}

/// The footnote-4 query of the paper:
/// `ϕ(x₁, …, x_k) = ∃y ⋀ E(y, x_i)`, optionally with all free variables
/// pairwise distinct. Decision is trivial, exact counting is SETH-hard, and
/// approximate counting is covered by Theorem 16 (without disequalities) or
/// Theorem 5 (with them).
pub fn footnote4_star_query(k: usize, distinct: bool) -> QuerySpec {
    assert!(k >= 1);
    let mut b = QueryBuilder::new();
    let y = b.var("y");
    let xs: Vec<Var> = (0..k).map(|i| b.var(&format!("x{i}"))).collect();
    b.free(&xs);
    for &x in &xs {
        b.atom("E", &[y, x]);
    }
    if distinct {
        for i in 0..k {
            for j in (i + 1)..k {
                b.disequality(xs[i], xs[j]);
            }
        }
    }
    QuerySpec {
        name: format!("footnote4(k={k}{})", if distinct { ",≠" } else { "" }),
        query: b.build().expect("footnote-4 query is well-formed"),
    }
}

/// The clique query `ϕ(x₁..x_k) = ⋀_{i<j} E(x_i, x_j)` whose hypergraph is
/// `K_k` (treewidth `k − 1`) — the query family behind the Observation 9
/// lower bound (experiment E2).
pub fn clique_query(k: usize, existential_last: bool) -> QuerySpec {
    assert!(k >= 2);
    let mut b = QueryBuilder::new();
    let vars: Vec<Var> = (0..k).map(|i| b.var(&format!("x{i}"))).collect();
    let free: Vec<Var> = if existential_last {
        vars[..k - 1].to_vec()
    } else {
        vars.clone()
    };
    b.free(&free);
    for i in 0..k {
        for j in (i + 1)..k {
            b.atom("E", &[vars[i], vars[j]]);
        }
    }
    QuerySpec {
        name: format!("clique(k={k})"),
        query: b.build().expect("clique query is well-formed"),
    }
}

/// A chain of ternary hyperedges
/// `ϕ(x₀, x_{2k}) = ∃… ⋀ R(x_{2i}, x_{2i+1}, x_{2i+2})`
/// with optional disequalities between the chain's odd (existential)
/// positions: an unbounded-arity family of fractional hypertreewidth 1 used
/// in the Theorem 13 / Theorem 16 experiments (E5/E6).
pub fn hyperchain_query(links: usize, disequalities: bool) -> QuerySpec {
    assert!(links >= 1);
    let mut b = QueryBuilder::new();
    let vars: Vec<Var> = (0..=2 * links).map(|i| b.var(&format!("x{i}"))).collect();
    b.free(&[vars[0], vars[2 * links]]);
    for i in 0..links {
        b.atom("R", &[vars[2 * i], vars[2 * i + 1], vars[2 * i + 2]]);
    }
    if disequalities && links >= 2 {
        for i in 0..links - 1 {
            b.disequality(vars[2 * i + 1], vars[2 * i + 3]);
        }
    }
    QuerySpec {
        name: format!(
            "hyperchain(links={links}{})",
            if disequalities { ",≠" } else { "" }
        ),
        query: b.build().expect("hyperchain query is well-formed"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_hypergraph::treewidth::treewidth_exact;
    use cqc_query::{query_hypergraph, QueryClass};

    #[test]
    fn path_queries_have_treewidth_one() {
        for k in 1..6 {
            for (d, n) in [(false, false), (true, false), (true, true)] {
                let spec = path_query(k, d, n);
                let h = query_hypergraph(&spec.query);
                let (tw, _) = treewidth_exact(&h);
                assert_eq!(tw, 1, "{}", spec.name);
            }
        }
    }

    #[test]
    fn star_query_generalises_equation_1() {
        let spec = star_query(2, true);
        assert_eq!(spec.query.num_free_vars(), 1);
        assert_eq!(spec.query.disequalities().len(), 1);
        assert_eq!(spec.query.class(), QueryClass::DCQ);
        let spec = star_query(4, true);
        assert_eq!(spec.query.disequalities().len(), 6);
    }

    #[test]
    fn footnote4_classes() {
        assert_eq!(footnote4_star_query(3, false).query.class(), QueryClass::CQ);
        assert_eq!(footnote4_star_query(3, true).query.class(), QueryClass::DCQ);
        let h = query_hypergraph(&footnote4_star_query(4, true).query);
        assert_eq!(treewidth_exact(&h).0, 1);
    }

    #[test]
    fn clique_query_treewidth_grows() {
        for k in 2..6 {
            let spec = clique_query(k, true);
            let h = query_hypergraph(&spec.query);
            assert_eq!(treewidth_exact(&h).0, k - 1);
            assert_eq!(spec.query.num_free_vars(), k - 1);
        }
    }

    #[test]
    fn hyperchain_has_arity_three_and_fhw_one() {
        let spec = hyperchain_query(3, true);
        let h = query_hypergraph(&spec.query);
        assert_eq!(h.arity(), 3);
        let (fhw, _) = cqc_hypergraph::fwidth::minimise_width(
            &h,
            cqc_hypergraph::fwidth::WidthMeasure::FractionalHypertreewidth,
        );
        assert!(fhw <= 1.0 + 1e-6);
        assert_eq!(spec.query.class(), QueryClass::DCQ);
        assert_eq!(hyperchain_query(2, false).query.class(), QueryClass::CQ);
    }

    #[test]
    fn negated_path_query_is_ecq() {
        let spec = path_query(3, false, true);
        assert_eq!(spec.query.class(), QueryClass::ECQ);
        assert_eq!(spec.query.num_negated(), 1);
    }
}
