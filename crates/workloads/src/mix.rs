//! Deterministic serving request mixes for the network load generator.
//!
//! A *mix* is a pure function of `(mix seed, request count)`: request `i`
//! derives its own RNG stream from `split_seed(mix_seed, i)` and uses it to
//! pick a query from a small curated family, synthesize 1–3 small graph
//! databases (the request's work items), and fix the per-request counting
//! seed. Because nothing depends on wall time or scheduling, two load
//! generators with the same seed produce byte-identical request lines —
//! and, by the serving layer's determinism contract, receive byte-identical
//! responses, regardless of connection count or server configuration.

use crate::graphs::{erdos_renyi, graph_database, grid_graph};
use cqc_data::write_facts;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SplitMix64 finaliser, mirroring `cqc_runtime::split_seed` (duplicated
/// here so the workload crate stays free of a runtime dependency; the
/// constant layout is pinned by a test against first principles). Shared
/// with the enumerated suites of [`crate::enumo`].
pub(crate) fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The curated query family of the serving mix: one representative per
/// class of Figure 1 (CQ → FPRAS, DCQ/ECQ → FPTRAS) plus a trivially cheap
/// single-atom query, all over one binary relation `E`. Small on purpose —
/// a handful of distinct texts keeps the server's plan cache warm, which
/// is what a production request stream looks like.
pub const MIX_QUERIES: &[(&str, &str)] = &[
    ("edge", "ans(x, y) :- E(x, y)"),
    ("walk2-cq", "ans(x, y) :- E(x, z), E(z, y)"),
    ("two-friends-dcq", "ans(x) :- E(x, y), E(x, z), y != z"),
    ("one-way-ecq", "ans(x, y) :- E(x, y), !E(y, x)"),
];

/// One synthesized request: everything the load generator needs to render
/// a serve-protocol JSON line, in plain data form.
#[derive(Debug, Clone)]
pub struct RequestSpec {
    /// Global request index; doubles as the request `id` on the wire.
    pub index: u64,
    /// Name of the query family member (reporting only).
    pub query_name: String,
    /// The query in textual syntax.
    pub query: String,
    /// Inline facts texts — the request's work items.
    pub dbs: Vec<String>,
    /// The per-request counting seed.
    pub seed: u64,
    /// Relative error `ε` for this request.
    pub epsilon: f64,
    /// Failure probability `δ` for this request.
    pub delta: f64,
}

/// Synthesize the deterministic request mix: `n` requests derived from
/// `mix_seed`. Request `i` is a pure function of `split_seed(mix_seed, i)`
/// — the mix is identical however many load-generator connections replay
/// it, which is what makes transcript byte-comparison meaningful.
pub fn request_mix(mix_seed: u64, n: usize) -> Vec<RequestSpec> {
    (0..n as u64).map(|i| request_spec(mix_seed, i)).collect()
}

/// Synthesize request `index` of the mix (see [`request_mix`]).
pub fn request_spec(mix_seed: u64, index: u64) -> RequestSpec {
    let stream = split_seed(mix_seed, index);
    let mut rng = StdRng::seed_from_u64(stream);
    let (query_name, query) = MIX_QUERIES[rng.gen_range(0..MIX_QUERIES.len())];
    let items = rng.gen_range(1..=3usize);
    let dbs = (0..items)
        .map(|_| {
            // small instances: the mix measures the serving layer, not the
            // counting engines, so work items stay cheap and bounded
            if rng.gen::<f64>() < 0.25 {
                let rows = rng.gen_range(2..=3usize);
                let cols = rng.gen_range(2..=4usize);
                write_facts(&graph_database(&grid_graph(rows, cols), "E", false))
            } else {
                let n = rng.gen_range(6..=12usize);
                let avg_deg = 1.5 + rng.gen::<f64>() * 1.5;
                let g = erdos_renyi(n, avg_deg / n as f64, &mut rng);
                write_facts(&graph_database(&g, "E", false))
            }
        })
        .collect();
    RequestSpec {
        index,
        query_name: query_name.to_string(),
        query: query.to_string(),
        dbs,
        seed: split_seed(stream, 1),
        epsilon: 0.4,
        delta: 0.2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_matches_the_runtime_scheme() {
        // pinned against the real cqc_runtime::split_seed (dev-dependency
        // only, so the library build stays runtime-free): any drift in
        // either copy fails here
        for (s, i) in [(0u64, 0u64), (7, 3), (u64::MAX, 1 << 40), (42, 9999)] {
            assert_eq!(split_seed(s, i), cqc_runtime::split_seed(s, i));
        }
    }

    #[test]
    fn mix_is_deterministic_and_independent_of_length() {
        let a = request_mix(0xFEED, 20);
        let b = request_mix(0xFEED, 20);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.query, y.query);
            assert_eq!(x.dbs, y.dbs);
            assert_eq!(x.seed, y.seed);
        }
        // request i does not depend on how many requests surround it
        let longer = request_mix(0xFEED, 40);
        assert_eq!(a[7].dbs, longer[7].dbs);
        assert_eq!(a[7].seed, longer[7].seed);
        // and a different seed gives a different mix
        let other = request_mix(0xBEEF, 20);
        assert!(a.iter().zip(&other).any(|(x, y)| x.dbs != y.dbs));
    }

    #[test]
    fn mix_requests_are_wellformed_and_small() {
        for spec in request_mix(42, 50) {
            assert!((1..=3).contains(&spec.dbs.len()));
            assert!(MIX_QUERIES.iter().any(|(_, q)| *q == spec.query));
            for facts in &spec.dbs {
                let db = cqc_data::parse_facts(facts).expect("mix facts parse back");
                assert!((4..=16).contains(&db.universe_size()));
            }
        }
    }
}
