//! A small workload-enumeration grammar in the spirit of Ruler's `enumo`:
//! [`Workload`] values are built from textual *sketches* containing `$HOLE`
//! tokens, composed with [`Workload::plug`] (Cartesian substitution),
//! deduplicated up to variable renaming and literal order with
//! [`Workload::canon`], and thinned with [`Workload::filter`] over
//! structural [`Metric`]s and the engine's own Figure-1 class assignment.
//!
//! The grammar is the workload *source of truth* for the artifact-style
//! bench harness (`scripts/kick-tires.sh`, `scripts/full.sh`): per class of
//! Figure 1 (CQ / DCQ / ECQ), [`enumerate_class`] deterministically derives
//! the full query family, [`suite`] draws a seeded sample from it,
//! [`suite_database`] scales seeded instances by tuple count, and
//! [`suite_request_mix`] turns the sample into a serve-protocol request
//! stream for the load generator. Everything is a pure function of seeds —
//! no wall time, no ambient RNG — so suites are byte-stable across runs,
//! machines and thread counts, which is what lets the golden manifest
//! (`tests/golden/workload_suites.txt`) pin the enumeration in review.

use crate::graphs::erdos_renyi;
use crate::mix::{split_seed, RequestSpec};
use cqc_data::{write_facts, Structure, StructureBuilder};
use cqc_hypergraph::treewidth::{treewidth_exact, treewidth_upper_bound};
use cqc_query::{parse_query, query_hypergraph, Query, QueryClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::OnceLock;

/// A set of query sketches (texts that may contain `$HOLE` tokens), the
/// unit of composition of the enumeration grammar. Order is significant and
/// deterministic: `plug` expands options in left-to-right sketch order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    sketches: Vec<String>,
}

impl Workload {
    /// A workload from literal sketches.
    pub fn new<I, S>(items: I) -> Workload
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Workload {
            sketches: items.into_iter().map(Into::into).collect(),
        }
    }

    /// The sketches, in enumeration order.
    pub fn sketches(&self) -> &[String] {
        &self.sketches
    }

    /// Number of sketches.
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// Concatenate two workloads.
    pub fn append(mut self, other: Workload) -> Workload {
        self.sketches.extend(other.sketches);
        self
    }

    /// Substitute every occurrence of `hole` in every sketch by every
    /// sketch of `options` — the full Cartesian product over occurrences,
    /// so `"$A, $A"` plugged with `n` atoms yields `n²` sketches.
    /// Replacement texts are never re-expanded (substitution recurses on
    /// the suffix only). Hole names must not be prefixes of one another.
    pub fn plug(&self, hole: &str, options: &Workload) -> Workload {
        let mut out = Vec::new();
        for sketch in &self.sketches {
            plug_one(sketch, hole, &options.sketches, &mut out);
        }
        Workload { sketches: out }
    }

    /// Parse every sketch (holes must all be plugged by now — `$` is not a
    /// legal query character) and keep the ones that parse *and* satisfy
    /// `filter`. Unparseable sketches are dropped deterministically.
    pub fn filter(&self, filter: &Filter) -> Workload {
        Workload {
            sketches: self
                .sketches
                .iter()
                .filter(|s| match parse_query(s) {
                    Ok(q) => filter.accepts(&q),
                    Err(_) => false,
                })
                .cloned()
                .collect(),
        }
    }

    /// Deduplicate up to variable renaming and literal/disequality order
    /// (first occurrence wins; unparseable sketches are dropped).
    pub fn canon(&self) -> Workload {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for sketch in &self.sketches {
            if let Ok(q) = parse_query(sketch) {
                if seen.insert(canonical_key(&q)) {
                    out.push(sketch.clone());
                }
            }
        }
        Workload { sketches: out }
    }

    /// The parseable sketches, each paired with its parsed [`Query`].
    pub fn queries(&self) -> Vec<(String, Query)> {
        self.sketches
            .iter()
            .filter_map(|s| parse_query(s).ok().map(|q| (s.clone(), q)))
            .collect()
    }
}

/// Expand one sketch: substitute the leftmost occurrence of `hole` by each
/// option, recursing on the remaining suffix.
fn plug_one(sketch: &str, hole: &str, options: &[String], out: &mut Vec<String>) {
    match sketch.find(hole) {
        None => out.push(sketch.to_string()),
        Some(at) => {
            let prefix = &sketch[..at];
            let mut tails = Vec::new();
            plug_one(&sketch[at + hole.len()..], hole, options, &mut tails);
            for option in options {
                for tail in &tails {
                    out.push(format!("{prefix}{option}{tail}"));
                }
            }
        }
    }
}

/// Structural measurements a [`Filter`] can bound — the "measure" half of
/// the enumeration DSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Number of literals (positive and negated atoms).
    Atoms,
    /// Number of negated atoms.
    NegatedAtoms,
    /// Number of (normalized, deduplicated) disequalities.
    Disequalities,
    /// Number of variables.
    Vars,
    /// Number of free (head) variables.
    FreeVars,
    /// Number of existentially quantified variables.
    ExistentialVars,
    /// Maximum atom arity.
    Arity,
    /// `‖ϕ‖` as defined in Section 1.1 of the paper.
    Size,
    /// Treewidth of `H(ϕ)` (exact for ≤ 13 variables, the depth/fhw proxy
    /// used to keep enumerated suites inside the tractable regimes).
    Treewidth,
}

/// Measure one metric on a parsed query.
pub fn measure(query: &Query, metric: Metric) -> usize {
    match metric {
        Metric::Atoms => query.literals().len(),
        Metric::NegatedAtoms => query.num_negated(),
        Metric::Disequalities => query.disequalities().len(),
        Metric::Vars => query.num_vars(),
        Metric::FreeVars => query.num_free_vars(),
        Metric::ExistentialVars => query.num_vars() - query.num_free_vars(),
        Metric::Arity => query.max_arity(),
        Metric::Size => query.size(),
        Metric::Treewidth => {
            let h = query_hypergraph(query);
            if query.num_vars() <= 13 {
                treewidth_exact(&h).0
            } else {
                treewidth_upper_bound(&h).0
            }
        }
    }
}

/// A predicate over parsed queries, composed from metric bounds, the
/// Figure-1 class assignment, and boolean combinators.
#[derive(Debug, Clone)]
pub enum Filter {
    /// `measure(q, metric) == value`.
    MetricEq(Metric, usize),
    /// `measure(q, metric) <= bound`.
    MetricLe(Metric, usize),
    /// The engine's Figure-1 class assignment equals `class`.
    Class(QueryClass),
    /// Every variable occurs in at least one **positive** atom — the
    /// safety condition that guarantees `Engine::prepare` accepts the
    /// query (negated atoms and disequalities alone don't ground a
    /// variable).
    Safe,
    /// All sub-filters accept.
    And(Vec<Filter>),
    /// The sub-filter rejects.
    Not(Box<Filter>),
}

impl Filter {
    /// Whether the query satisfies this filter.
    pub fn accepts(&self, query: &Query) -> bool {
        match self {
            Filter::MetricEq(metric, value) => measure(query, *metric) == *value,
            Filter::MetricLe(metric, bound) => measure(query, *metric) <= *bound,
            Filter::Class(class) => query.class() == *class,
            Filter::Safe => {
                let mut grounded = vec![false; query.num_vars()];
                for atom in query.positive_atoms() {
                    for v in &atom.vars {
                        grounded[v.index()] = true;
                    }
                }
                grounded.into_iter().all(|g| g)
            }
            Filter::And(filters) => filters.iter().all(|f| f.accepts(query)),
            Filter::Not(inner) => !inner.accepts(query),
        }
    }
}

/// Canonical key of a query up to variable renaming and literal /
/// disequality order: variables are relabelled in first-occurrence order
/// (head first, then literals, then disequalities), literal and
/// disequality renderings are sorted. Two queries with equal keys are the
/// same query modulo bound-variable names and body order.
pub fn canonical_key(query: &Query) -> String {
    let mut order: Vec<Option<usize>> = vec![None; query.num_vars()];
    let mut next = 0usize;
    let mut visit = |order: &mut Vec<Option<usize>>, v: cqc_query::Var| {
        if order[v.index()].is_none() {
            order[v.index()] = Some(next);
            next += 1;
        }
    };
    for &v in query.free_vars() {
        visit(&mut order, v);
    }
    for literal in query.literals() {
        for &v in &literal.atom().vars {
            visit(&mut order, v);
        }
    }
    for &(u, v) in query.disequalities() {
        visit(&mut order, u);
        visit(&mut order, v);
    }
    let label = |v: cqc_query::Var| format!("v{}", order[v.index()].unwrap_or(usize::MAX));
    let head: Vec<String> = query.free_vars().iter().map(|&v| label(v)).collect();
    let mut literals: Vec<String> = query
        .literals()
        .iter()
        .map(|l| {
            let a = l.atom();
            let vars: Vec<String> = a.vars.iter().map(|&v| label(v)).collect();
            format!(
                "{}{}({})",
                if l.is_negated() { "!" } else { "" },
                a.relation,
                vars.join(",")
            )
        })
        .collect();
    literals.sort();
    let mut diseqs: Vec<String> = query
        .disequalities()
        .iter()
        .map(|&(u, v)| {
            let (a, b) = (label(u), label(v));
            if a <= b {
                format!("{a}!={b}")
            } else {
                format!("{b}!={a}")
            }
        })
        .collect();
    diseqs.sort();
    format!(
        "({})<-{};{}",
        head.join(","),
        literals.join(","),
        diseqs.join(",")
    )
}

/// The display name of a class (`CQ` / `DCQ` / `ECQ`).
pub fn class_name(class: QueryClass) -> &'static str {
    match class {
        QueryClass::CQ => "CQ",
        QueryClass::DCQ => "DCQ",
        QueryClass::ECQ => "ECQ",
    }
}

/// Parse a class name as accepted by `--suite` (case-insensitive).
pub fn parse_class(raw: &str) -> Option<QueryClass> {
    match raw.to_ascii_lowercase().as_str() {
        "cq" => Some(QueryClass::CQ),
        "dcq" => Some(QueryClass::DCQ),
        "ecq" => Some(QueryClass::ECQ),
        _ => None,
    }
}

/// All three classes, in Figure-1 order.
pub const ALL_CLASSES: [QueryClass; 3] = [QueryClass::CQ, QueryClass::DCQ, QueryClass::ECQ];

fn class_tag(class: QueryClass) -> u64 {
    match class {
        QueryClass::CQ => 0,
        QueryClass::DCQ => 1,
        QueryClass::ECQ => 2,
    }
}

/// The variable alphabet of the grammar (4 variables keeps every
/// enumerated query inside the exact-treewidth regime and the engine's
/// cheap planning range).
fn grammar_vars() -> Workload {
    Workload::new(["x", "y", "z", "w"])
}

/// All binary atoms `E(·, ·)` over the variable alphabet.
fn binary_atoms() -> Workload {
    Workload::new(["E($V, $W)"])
        .plug("$V", &grammar_vars())
        .plug("$W", &grammar_vars())
}

/// All ternary atoms `R(·, ·, ·)` over the variable alphabet.
fn ternary_atoms() -> Workload {
    Workload::new(["R($V, $W, $U)"])
        .plug("$V", &grammar_vars())
        .plug("$W", &grammar_vars())
        .plug("$U", &grammar_vars())
}

/// All disequality tails over the variable alphabet (reflexive ones are
/// rejected later, at parse time).
fn disequalities() -> Workload {
    Workload::new(["$V != $W"])
        .plug("$V", &grammar_vars())
        .plug("$W", &grammar_vars())
}

/// The six distinct unordered disequalities (used where a Cartesian
/// product over the full 16 would explode the grammar).
fn distinct_disequalities() -> Workload {
    Workload::new(["x != y", "x != z", "x != w", "y != z", "y != w", "z != w"])
}

/// All negated binary atoms over the variable alphabet.
fn negated_atoms() -> Workload {
    Workload::new(["!E($V, $W)"])
        .plug("$V", &grammar_vars())
        .plug("$W", &grammar_vars())
}

/// Positive bodies with 1–2 atoms (binary and ternary mixed).
fn small_bodies() -> Workload {
    let atoms = binary_atoms().append(ternary_atoms());
    Workload::new(["$A", "$A, $A"]).plug("$A", &atoms)
}

/// Positive bodies with 1–3 atoms (3-atom bodies binary-only, to keep the
/// enumeration in the tens of thousands).
fn cq_bodies() -> Workload {
    small_bodies().append(Workload::new(["$A, $A, $A"]).plug("$A", &binary_atoms()))
}

/// Positive bodies used as the base of the DCQ/ECQ grammars: all 1-atom
/// bodies plus binary 2-atom bodies.
fn tail_bodies() -> Workload {
    binary_atoms()
        .append(ternary_atoms())
        .append(Workload::new(["$A, $A"]).plug("$A", &binary_atoms()))
}

/// Wrap bodies in heads with one and two free variables.
fn with_heads(bodies: &Workload) -> Workload {
    Workload::new(["ans(x) :- $B", "ans(x, y) :- $B"]).plug("$B", bodies)
}

/// The raw (pre-filter) grammar of a class.
fn class_grammar(class: QueryClass) -> Workload {
    match class {
        QueryClass::CQ => with_heads(&cq_bodies()),
        QueryClass::DCQ => {
            let single = with_heads(&Workload::new(["$B, $D"]).plug("$B", &tail_bodies()))
                .plug("$D", &disequalities());
            let double = Workload::new(["ans(x) :- $B, $D, $D"])
                .plug("$B", &Workload::new(["$A, $A"]).plug("$A", &binary_atoms()))
                .plug("$D", &distinct_disequalities());
            single.append(double)
        }
        QueryClass::ECQ => {
            let single = with_heads(&Workload::new(["$B, $N"]).plug("$B", &tail_bodies()))
                .plug("$N", &negated_atoms());
            let mixed = Workload::new(["ans(x) :- $B, $D, $N"])
                .plug("$B", &Workload::new(["$A, $A"]).plug("$A", &binary_atoms()))
                .plug("$D", &distinct_disequalities())
                .plug("$N", &negated_atoms());
            single.append(mixed)
        }
    }
}

/// The filter every enumerated query must pass, plus the class assignment:
/// safe (preparable), at most 2 free variables, treewidth ≤ 2 (keeps both
/// approximation schemes cheap), and `query.class() == class` — so a DCQ
/// sketch whose disequality collapsed at parse time is *not* counted as a
/// DCQ.
fn class_filter(class: QueryClass) -> Filter {
    Filter::And(vec![
        Filter::Safe,
        Filter::MetricLe(Metric::FreeVars, 2),
        Filter::MetricLe(Metric::Treewidth, 2),
        Filter::Class(class),
    ])
}

/// One enumerated query of a class suite.
#[derive(Debug, Clone)]
pub struct SuiteQuery {
    /// Stable name, `cq-012`-style (index into the full enumeration).
    pub name: String,
    /// The query text (round-trips through `parse_query`).
    pub text: String,
    /// The parsed query.
    pub query: Query,
}

static CQ_CACHE: OnceLock<Vec<SuiteQuery>> = OnceLock::new();
static DCQ_CACHE: OnceLock<Vec<SuiteQuery>> = OnceLock::new();
static ECQ_CACHE: OnceLock<Vec<SuiteQuery>> = OnceLock::new();

/// Deterministically enumerate the full query family of a class: grammar →
/// canonical dedup → class filter, sorted by `(‖ϕ‖, text)` and named by
/// enumeration index. The result is cached per process (the grammar is a
/// few tens of thousands of parses).
pub fn enumerate_class(class: QueryClass) -> &'static [SuiteQuery] {
    let cache = match class {
        QueryClass::CQ => &CQ_CACHE,
        QueryClass::DCQ => &DCQ_CACHE,
        QueryClass::ECQ => &ECQ_CACHE,
    };
    cache.get_or_init(|| {
        let kept = class_grammar(class).canon().filter(&class_filter(class));
        // normalize each sketch to the parser's own rendering so suite
        // texts round-trip bit-exactly through `parse_query`/`Display`
        let mut queries: Vec<(String, Query)> = kept
            .queries()
            .into_iter()
            .map(|(_, q)| (q.to_string(), q))
            .collect();
        queries.sort_by_key(|(text, q)| (q.size(), text.clone()));
        let prefix = class_name(class).to_ascii_lowercase();
        queries
            .into_iter()
            .enumerate()
            .map(|(i, (text, query))| SuiteQuery {
                name: format!("{prefix}-{i:03}"),
                text,
                query,
            })
            .collect()
    })
}

/// A seeded sample of one class's enumeration.
#[derive(Debug, Clone)]
pub struct Suite {
    /// The class the suite targets.
    pub class: QueryClass,
    /// The sampling seed.
    pub seed: u64,
    /// The sampled queries, in draw order.
    pub queries: Vec<SuiteQuery>,
}

/// Draw `count` queries (without replacement; clamped to the enumeration
/// size) from the class's full enumeration, seeded by
/// `split_seed(seed, class)` — a pure function of its arguments.
pub fn suite(class: QueryClass, seed: u64, count: usize) -> Suite {
    let all = enumerate_class(class);
    let mut rng = StdRng::seed_from_u64(split_seed(seed, class_tag(class)));
    let mut indices: Vec<usize> = (0..all.len()).collect();
    let count = count.min(all.len());
    // partial Fisher–Yates: the first `count` slots are the sample
    for i in 0..count {
        let j = rng.gen_range(i..indices.len());
        indices.swap(i, j);
    }
    Suite {
        class,
        seed,
        queries: indices[..count].iter().map(|&i| all[i].clone()).collect(),
    }
}

/// Render the byte-stable suite manifest for a seed: per class, the
/// enumeration size and the sampled queries. This is the golden text of
/// `tests/golden/workload_suites.txt` and what CI diffs on every push.
pub fn manifest(seed: u64, per_class: usize) -> String {
    let mut out = format!("# workload suite manifest — seed {seed}, {per_class} per class\n");
    for class in ALL_CLASSES {
        let all = enumerate_class(class);
        let s = suite(class, seed, per_class);
        out.push_str(&format!(
            "class {}: enumerated={} sampled={}\n",
            class_name(class),
            all.len(),
            s.queries.len()
        ));
        for q in &s.queries {
            out.push_str(&format!("  {:<9} {}\n", q.name, q.text));
        }
    }
    out
}

/// A seeded database scaled by tuple count, covering both relations the
/// grammar uses: a sparse random digraph `E` (≈ 2/3 of the tuples) plus
/// uniform ternary facts `R` (≈ 1/3). Universe size grows with the tuple
/// budget so instances stay sparse.
pub fn suite_database(seed: u64, tuples: usize) -> Structure {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = (tuples / 3).clamp(4, 64);
    let e_facts = (tuples * 2) / 3;
    let r_facts = tuples - e_facts;
    // E as an Erdős–Rényi digraph with expected e_facts edges
    let p = (e_facts as f64 / (n * (n - 1)) as f64).min(1.0);
    let graph = erdos_renyi(n, p, &mut rng);
    let mut b = StructureBuilder::new(n);
    b.relation("E", 2);
    b.relation("R", 3);
    for &(u, v) in &graph.edges {
        b.fact("E", &[u as u32, v as u32]).expect("binary fact");
    }
    for _ in 0..r_facts {
        let t = [
            rng.gen_range(0..n as u32),
            rng.gen_range(0..n as u32),
            rng.gen_range(0..n as u32),
        ];
        b.fact("R", &t).expect("ternary fact");
    }
    b.build()
}

/// Synthesize a serve-protocol request mix over one class's enumeration:
/// request `i` is a pure function of `split_seed(split_seed(mix_seed,
/// class), i)`, mirroring the curated mix's determinism contract —
/// identical however many connections replay it.
pub fn suite_request_mix(class: QueryClass, mix_seed: u64, n: usize) -> Vec<RequestSpec> {
    (0..n as u64)
        .map(|i| suite_request_spec(class, mix_seed, i))
        .collect()
}

/// Synthesize request `index` of a class mix (see [`suite_request_mix`]).
pub fn suite_request_spec(class: QueryClass, mix_seed: u64, index: u64) -> RequestSpec {
    let stream = split_seed(split_seed(mix_seed, class_tag(class)), index);
    let mut rng = StdRng::seed_from_u64(stream);
    let all = enumerate_class(class);
    let q = &all[rng.gen_range(0..all.len())];
    let items = rng.gen_range(1..=2usize);
    let dbs = (0..items as u64)
        .map(|i| {
            let tuples = rng.gen_range(12..=30usize);
            write_facts(&suite_database(split_seed(stream, 2 + i), tuples))
        })
        .collect();
    RequestSpec {
        index,
        query_name: q.name.clone(),
        query: q.text.clone(),
        dbs,
        // looser than the curated mix: enumerated queries are richer, and
        // the suites measure trajectory, not tight estimates
        seed: split_seed(stream, 1),
        epsilon: 0.5,
        delta: 0.25,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plug_expands_the_cartesian_product_in_order() {
        let w = Workload::new(["$A, $A"]).plug("$A", &Workload::new(["p", "q"]));
        assert_eq!(w.sketches(), ["p, p", "p, q", "q, p", "q, q"]);
        // un-plugged sketches survive untouched
        let w = Workload::new(["ans(x) :- $B"]).plug("$C", &Workload::new(["p"]));
        assert_eq!(w.sketches(), ["ans(x) :- $B"]);
    }

    #[test]
    fn filter_drops_unparseable_and_bounds_metrics() {
        let w = Workload::new([
            "ans(x) :- E(x, y)",
            "ans(x) :- E(x, y), E(y, z)",
            "ans(x) :- $HOLE",           // never plugged: dropped
            "ans(x) :- E(x, x), x != x", // reflexive: dropped at parse
        ]);
        let small = w.filter(&Filter::MetricLe(Metric::Atoms, 1));
        assert_eq!(small.sketches(), ["ans(x) :- E(x, y)"]);
        let eq = w.filter(&Filter::MetricEq(Metric::Vars, 3));
        assert_eq!(eq.sketches(), ["ans(x) :- E(x, y), E(y, z)"]);
        let none = w.filter(&Filter::Not(Box::new(Filter::Safe)));
        assert!(none.is_empty());
    }

    #[test]
    fn canon_identifies_renamings_and_reorderings() {
        let w = Workload::new([
            "ans(x) :- E(x, y), E(x, z), y != z",
            "ans(a) :- E(a, b), E(a, c), b != c", // renaming of the first
            "ans(x) :- E(x, z), E(x, y), z != y", // reordering of the first
            "ans(x) :- E(y, x), E(x, z), y != z", // genuinely different
        ]);
        let c = w.canon();
        assert_eq!(c.len(), 2, "{:?}", c.sketches());
        assert_eq!(c.sketches()[0], "ans(x) :- E(x, y), E(x, z), y != z");
    }

    #[test]
    fn safe_filter_requires_positive_grounding() {
        let only_negated = parse_query("ans(x) :- E(x, x), !E(x, y)").unwrap();
        assert!(!Filter::Safe.accepts(&only_negated));
        let grounded = parse_query("ans(x) :- E(x, y), !E(y, x)").unwrap();
        assert!(Filter::Safe.accepts(&grounded));
    }

    #[test]
    fn enumerations_are_sizeable_and_class_pure() {
        for class in ALL_CLASSES {
            let all = enumerate_class(class);
            assert!(
                all.len() >= 100,
                "{} enumerates only {} queries",
                class_name(class),
                all.len()
            );
            for q in all.iter() {
                assert_eq!(q.query.class(), class, "{}", q.text);
                // names are stable indices
                assert!(q.name.starts_with(&class_name(class).to_ascii_lowercase()));
                // texts round-trip
                assert_eq!(parse_query(&q.text).unwrap().to_string(), q.text);
            }
        }
    }

    #[test]
    fn suites_are_seeded_samples_without_replacement() {
        let a = suite(QueryClass::DCQ, 7, 12);
        let b = suite(QueryClass::DCQ, 7, 12);
        assert_eq!(
            a.queries.iter().map(|q| &q.name).collect::<Vec<_>>(),
            b.queries.iter().map(|q| &q.name).collect::<Vec<_>>()
        );
        let names: std::collections::BTreeSet<_> = a.queries.iter().map(|q| &q.name).collect();
        assert_eq!(names.len(), 12, "sample drew a duplicate");
        let other = suite(QueryClass::DCQ, 8, 12);
        assert_ne!(
            a.queries.iter().map(|q| &q.name).collect::<Vec<_>>(),
            other.queries.iter().map(|q| &q.name).collect::<Vec<_>>()
        );
    }

    #[test]
    fn manifest_is_deterministic() {
        let m = manifest(0xC0FFEE, 4);
        assert_eq!(m, manifest(0xC0FFEE, 4));
        for class in ["class CQ:", "class DCQ:", "class ECQ:"] {
            assert!(m.contains(class), "{m}");
        }
    }

    #[test]
    fn suite_databases_scale_with_tuples_and_cover_both_relations() {
        let db = suite_database(42, 30);
        assert_eq!(write_facts(&db), write_facts(&suite_database(42, 30)));
        let r = db.signature().symbol("R").expect("ternary relation");
        assert_eq!(db.signature().arity(r), 3);
        assert!(db.signature().symbol("E").is_some());
        assert!(db.fact_count() > 0);
        let bigger = suite_database(42, 120);
        assert!(bigger.universe_size() > db.universe_size());
    }

    #[test]
    fn suite_request_mix_is_index_stable() {
        let a = suite_request_mix(QueryClass::ECQ, 0xFEED, 6);
        let longer = suite_request_mix(QueryClass::ECQ, 0xFEED, 12);
        assert_eq!(a[3].query, longer[3].query);
        assert_eq!(a[3].dbs, longer[3].dbs);
        assert_eq!(a[3].seed, longer[3].seed);
        for spec in &a {
            assert!(spec.query.starts_with("ans("), "{}", spec.query);
            for facts in &spec.dbs {
                cqc_data::parse_facts(facts).expect("suite facts parse back");
            }
        }
    }
}
