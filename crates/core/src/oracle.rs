//! The colour-coding `EdgeFree` oracle for the answer hypergraph `H(ϕ, D)`
//! (Section 3 of the paper: Definition 24, Lemma 30 and the simulation inside
//! Lemma 22).
//!
//! The oracle answers queries "does `H(ϕ, D)[V₁, …, V_ℓ]` contain a
//! hyperedge?", i.e. "is there an answer whose `i`-th free variable lies in
//! `V_i` for every `i`?", by
//!
//! 1. a *relaxation check*: one `Hom(Â(ϕ), B̂_relaxed)` query in which every
//!    element carries both colours — if even this fails there is certainly no
//!    answer in the region and the oracle reports edge-free with a single
//!    `Hom` call;
//! 2. otherwise `Q` rounds of colour coding: draw a colouring family `f`
//!    uniformly at random and ask `Hom(Â(ϕ), B̂(ϕ, D, V₁..V_ℓ, f))`; any
//!    positive round certifies a hyperedge (Lemma 30, forward direction),
//!    while `Q` negative rounds make a missed hyperedge exponentially
//!    unlikely (reverse direction plus the `4^{-|Δ|}` colouring-success
//!    probability of Lemma 22).

use cqc_data::{Structure, Val};
use cqc_dlm::EdgeFreeOracle;
use cqc_hom::HomDecider;
use cqc_query::colored::{build_a_hat, build_b_hat, ColouringFamily, PartiteSets};
use cqc_query::Query;
use cqc_runtime::{split_seed, Runtime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::borrow::Cow;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// The `EdgeFree` oracle for `H(ϕ, D)` used by the FPTRAS of Theorems 5
/// and 13.
pub struct AnswerOracle<'a, H: HomDecider> {
    query: &'a Query,
    b_structure: Structure,
    a_hat: Cow<'a, Structure>,
    decider: &'a H,
    /// Number of colour-coding repetitions `Q` per oracle call.
    repetitions: usize,
    universe_size: usize,
    /// Root of the oracle's seed tree. Repetition `r` of oracle call `c`
    /// draws its colouring from the stream `split_seed2(seed, c, r)` —
    /// never from a shared sequential stream — so the oracle's answers are
    /// bit-identical for any thread count (see `cqc-runtime`).
    seed: u64,
    runtime: Runtime,
    /// The all-true colouring used by the relaxation check; constant across
    /// calls, so it is built lazily on the first relaxation query (or
    /// borrowed from a batch scratch and never allocated here at all).
    relaxed_colouring: Option<Cow<'a, ColouringFamily>>,
    hom_calls: u64,
    oracle_calls: u64,
}

impl<'a, H: HomDecider> AnswerOracle<'a, H> {
    /// Create the oracle.
    ///
    /// `b_structure` must be `B(ϕ, D)` as produced by
    /// [`cqc_query::build_b_structure`]. `repetitions` is the number `Q` of
    /// colouring rounds per `EdgeFree` query; pass the value returned by
    /// [`AnswerOracle::recommended_repetitions`] (or the paper-faithful
    /// `⌈log(2Tℓ!/δ)⌉·4^{|Δ|}` if oracle-call-exact fidelity matters more
    /// than speed).
    pub fn new(
        query: &'a Query,
        b_structure: Structure,
        universe_size: usize,
        decider: &'a H,
        repetitions: usize,
        seed: u64,
    ) -> Self {
        let a_hat = Cow::Owned(build_a_hat(query));
        Self::with_cow_a_hat(
            query,
            b_structure,
            a_hat,
            universe_size,
            decider,
            repetitions,
            seed,
        )
    }

    /// Create the oracle from a pre-built `Â(ϕ)` (the prepared-plan hot
    /// path: `Â(ϕ)` is query-side, cached in
    /// [`crate::fptras::FptrasPlan`], and only ever read — so it is
    /// borrowed, not cloned, per evaluation).
    pub fn with_a_hat(
        query: &'a Query,
        b_structure: Structure,
        a_hat: &'a Structure,
        universe_size: usize,
        decider: &'a H,
        repetitions: usize,
        seed: u64,
    ) -> Self {
        Self::with_cow_a_hat(
            query,
            b_structure,
            Cow::Borrowed(a_hat),
            universe_size,
            decider,
            repetitions,
            seed,
        )
    }

    fn with_cow_a_hat(
        query: &'a Query,
        b_structure: Structure,
        a_hat: Cow<'a, Structure>,
        universe_size: usize,
        decider: &'a H,
        repetitions: usize,
        seed: u64,
    ) -> Self {
        AnswerOracle {
            query,
            b_structure,
            a_hat,
            decider,
            repetitions: repetitions.max(1),
            universe_size,
            seed,
            runtime: Runtime::serial(),
            relaxed_colouring: None,
            hom_calls: 0,
            oracle_calls: 0,
        }
    }

    /// Run the colour-coding repetitions of each `EdgeFree` call on the
    /// given runtime (default: serial). Bit-identical answers for any
    /// thread count — each repetition has its own seed-split RNG stream.
    pub fn with_runtime(mut self, runtime: Runtime) -> Self {
        self.runtime = runtime;
        self
    }

    /// Borrow a pre-built all-true relaxation colouring instead of
    /// allocating one (the per-thread batch scratch shares it across the
    /// databases of a `count_batch` run; dimensions must match
    /// `(|Δ(ϕ)|, |U(D)|)`).
    pub fn with_relaxed_colouring(mut self, colouring: &'a ColouringFamily) -> Self {
        debug_assert_eq!(colouring.red.len(), self.query.disequalities().len());
        debug_assert!(colouring
            .red
            .first()
            .map(|r| r.len() == self.universe_size)
            .unwrap_or(true));
        self.relaxed_colouring = Some(Cow::Borrowed(colouring));
        self
    }

    /// A practical default for the number of colouring rounds: with `|Δ|`
    /// disequalities a fixed witnessing solution is correctly coloured with
    /// probability `4^{-|Δ|}`, so `Q = ⌈4^{|Δ|} · (ln(1/δ) + 3)⌉` keeps the
    /// per-call failure probability below `e^{-(ln(1/δ)+3)} < δ/20`.
    pub fn recommended_repetitions(query: &Query, delta: f64) -> usize {
        let d = query.disequalities().len() as u32;
        let base = 4f64.powi(d as i32);
        ((base * ((1.0 / delta).ln() + 3.0)).ceil() as usize).clamp(1, 500_000)
    }

    /// Total `Hom` oracle queries issued so far.
    pub fn hom_calls(&self) -> u64 {
        self.hom_calls
    }

    /// Convert a per-class vertex subset into a [`PartiteSets`] value.
    fn to_partite_sets(&self, parts: &[BTreeSet<usize>]) -> PartiteSets {
        PartiteSets {
            sets: parts
                .iter()
                .map(|p| p.iter().map(|&v| Val(v as u32)).collect())
                .collect(),
        }
    }

    /// One `Hom(Â, B̂)` query for the given colouring.
    fn hom_query(&mut self, parts: &PartiteSets, colouring: &ColouringFamily) -> bool {
        let (b_hat, _) = build_b_hat(self.query, &self.b_structure, parts, colouring);
        self.hom_calls += 1;
        self.decider.decide(&self.a_hat, &b_hat)
    }

    /// The relaxation check: colour relations are replaced by full relations,
    /// so the query asks only for a solution ignoring the disequalities
    /// within the restricted region. A negative answer soundly certifies
    /// edge-freeness.
    fn relaxed_hom_query(&mut self, parts: &PartiteSets) -> bool {
        let colouring = self.relaxed_colouring.get_or_insert_with(|| {
            Cow::Owned(ColouringFamily::from_fn(
                self.query.disequalities().len(),
                self.universe_size,
                |_, _| true,
            ))
        });
        let (mut b_hat, decode) = build_b_hat(self.query, &self.b_structure, parts, colouring);
        // make every element carry *both* colours
        for d in 0..self.query.disequalities().len() {
            let blue = b_hat
                .signature()
                .symbol(&format!("Bd{d}"))
                .expect("colour relation present");
            for id in 0..decode.len() {
                b_hat
                    .insert_fact(blue, &[Val(id as u32)])
                    .expect("in range");
            }
        }
        self.hom_calls += 1;
        self.decider.decide(&self.a_hat, &b_hat)
    }
}

impl<'a, H: HomDecider + Sync> EdgeFreeOracle for AnswerOracle<'a, H> {
    fn num_classes(&self) -> usize {
        self.query.num_free_vars()
    }

    fn class_size(&self, _i: usize) -> usize {
        self.universe_size
    }

    fn edge_free(&mut self, parts: &[BTreeSet<usize>]) -> bool {
        self.oracle_calls += 1;
        // The call's span ID doubles as the root of its repetition seed
        // tree: both are `split_seed(seed, call_index)`.
        let call_seed = split_seed(self.seed, self.oracle_calls);
        let _span = cqc_obs::trace::Span::enter("oracle_call", call_seed);
        let partite = self.to_partite_sets(parts);
        if partite.sets.iter().any(|s| s.is_empty()) && !partite.sets.is_empty() {
            return true;
        }
        let num_diseq = self.query.disequalities().len();
        if num_diseq == 0 {
            // No colours needed: Lemma 30 degenerates to a single Hom query.
            return !self.hom_query(&partite, &ColouringFamily::empty());
        }
        // Relaxation: no solution even ignoring disequalities ⇒ edge-free.
        if !self.relaxed_hom_query(&partite) {
            return true;
        }
        // Colour-coding rounds, fanned out over the runtime. Repetition `r`
        // of this call draws its colouring from the private RNG stream
        // `split_seed2(seed, call, r)`, so the *set* of colourings is a pure
        // function of the seed and the call index. "Some round sees a
        // homomorphism" is an order-insensitive ∃ over that fixed set, hence
        // the answer is bit-identical for 1, 2, or N threads — only the
        // number of rounds actually evaluated (after a witness is found)
        // varies with scheduling, which is why `hom_calls` is telemetry, not
        // part of the determinism contract.
        let (query, b_structure, a_hat, decider) =
            (self.query, &self.b_structure, &*self.a_hat, self.decider);
        let universe_size = self.universe_size;
        // Fanning out pays a dispatch cost per oracle call; when a call's
        // total work is tiny (few rounds over a small `B̂`), the dispatch
        // exceeds the parallelised work, so small instances run serially.
        // The persistent worker pool (cqc-runtime's `pool`) replaced the
        // per-call thread spawn, which is why the top-level cutoff sits at
        // 256 rather than the 2048 the scoped-spawn runtime needed. A call
        // issued from *inside* a pool worker (count_batch / serve shards)
        // cannot use the pool and falls back to per-call scoped spawning,
        // so it keeps the old spawn-tax cutoff. Neither cutoff can affect
        // the answer — the set of colourings and hence the ∃ outcome is
        // the same either way.
        let work_proxy = self.repetitions * (universe_size + self.b_structure.fact_count());
        let cutoff = if cqc_runtime::pool::on_pool_worker() {
            2048
        } else {
            256
        };
        let runtime = if work_proxy >= cutoff {
            self.runtime
        } else {
            Runtime::serial()
        };
        let rounds_evaluated = AtomicU64::new(0);
        let witnessed = runtime.par_any_n(self.repetitions, |r| {
            let rep_seed = split_seed(call_seed, r as u64);
            // repetitions may run on pool workers: attach to the call's
            // span by explicit parent ID, not the worker's (empty) stack
            let _rep = cqc_obs::trace::Span::child_of(call_seed, "repetition", rep_seed);
            let mut rng = StdRng::seed_from_u64(rep_seed);
            let colouring =
                ColouringFamily::from_fn(num_diseq, universe_size, |_, _| rng.gen::<bool>());
            let (b_hat, _) = build_b_hat(query, b_structure, &partite, &colouring);
            rounds_evaluated.fetch_add(1, Ordering::Relaxed);
            decider.decide(a_hat, &b_hat)
        });
        self.hom_calls += rounds_evaluated.load(Ordering::Relaxed);
        !witnessed
    }

    fn calls(&self) -> u64 {
        self.oracle_calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_data::StructureBuilder;
    use cqc_hom::HybridDecider;
    use cqc_query::{build_b_structure, enumerate_answers, parse_query};

    fn friends_db() -> Structure {
        let mut b = StructureBuilder::new(5);
        b.relation("F", 2);
        b.fact("F", &[0, 1]).unwrap();
        b.fact("F", &[0, 2]).unwrap();
        b.fact("F", &[3, 0]).unwrap();
        b.fact("F", &[3, 4]).unwrap();
        b.build()
    }

    #[test]
    fn oracle_agrees_with_ground_truth_on_singletons() {
        // ϕ(x) = ∃y∃z F(x,y) ∧ F(x,z) ∧ y ≠ z — answers are exactly the
        // vertices with ≥ 2 distinct out-neighbours: {0, 3}.
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let db = friends_db();
        let b = build_b_structure(&q, &db).unwrap();
        let decider = HybridDecider::new();
        let mut oracle = AnswerOracle::new(&q, b, db.universe_size(), &decider, 24, 7);
        let answers = enumerate_answers(&q, &db);
        for v in 0..db.universe_size() {
            let parts = vec![[v].into_iter().collect::<BTreeSet<usize>>()];
            let expected_edge = answers.contains(&vec![Val(v as u32)]);
            assert_eq!(
                !oracle.edge_free(&parts),
                expected_edge,
                "vertex {v} misclassified"
            );
        }
        assert!(oracle.calls() >= 5);
        assert!(oracle.hom_calls() >= 5);
    }

    #[test]
    fn oracle_without_disequalities_is_exact() {
        let q = parse_query("ans(x, y) :- F(x, z), F(z, y)").unwrap();
        let db = friends_db();
        let b = build_b_structure(&q, &db).unwrap();
        let decider = HybridDecider::new();
        let mut oracle = AnswerOracle::new(&q, b, db.universe_size(), &decider, 1, 11);
        let answers = enumerate_answers(&q, &db);
        for x in 0..db.universe_size() {
            for y in 0..db.universe_size() {
                let parts = vec![
                    [x].into_iter().collect::<BTreeSet<usize>>(),
                    [y].into_iter().collect::<BTreeSet<usize>>(),
                ];
                let expected = answers.contains(&vec![Val(x as u32), Val(y as u32)]);
                assert_eq!(!oracle.edge_free(&parts), expected, "pair ({x},{y})");
            }
        }
    }

    #[test]
    fn empty_part_is_always_edge_free() {
        let q = parse_query("ans(x) :- F(x, y)").unwrap();
        let db = friends_db();
        let b = build_b_structure(&q, &db).unwrap();
        let decider = HybridDecider::new();
        let mut oracle = AnswerOracle::new(&q, b, db.universe_size(), &decider, 4, 3);
        assert!(oracle.edge_free(&[BTreeSet::new()]));
    }

    #[test]
    fn boolean_query_oracle() {
        let q = parse_query("ans() :- F(x, y), F(y, z)").unwrap();
        let db = friends_db();
        let b = build_b_structure(&q, &db).unwrap();
        let decider = HybridDecider::new();
        let mut oracle = AnswerOracle::new(&q, b, db.universe_size(), &decider, 4, 5);
        // 3 → 0 → 1 is a two-step path, so the (empty) answer exists
        assert!(!oracle.edge_free(&[]));
    }

    #[test]
    fn recommended_repetitions_scale_with_disequalities() {
        let q0 = parse_query("ans(x) :- F(x, y)").unwrap();
        let q1 = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let r0 = AnswerOracle::<HybridDecider>::recommended_repetitions(&q0, 0.05);
        let r1 = AnswerOracle::<HybridDecider>::recommended_repetitions(&q1, 0.05);
        assert!(r1 >= 4 * r0 - 4);
        assert!(r0 >= 1);
    }
}
