//! Approximately uniform sampling of answers (Section 6, first extension).
//!
//! The answer set `Ans(ϕ, D)` is exactly the hyperedge set of `H(ϕ, D)`
//! (Observation 25), so the self-reducible hyperedge sampler of `cqc-dlm`
//! driven by the colour-coding oracle yields answer samples. With exact
//! descent counts the distribution is uniform conditioned on the oracle never
//! erring; the colour-coding repetitions make oracle errors exponentially
//! unlikely (see `crate::oracle`).

use crate::api::ApproxConfig;
use crate::error::CoreError;
use crate::fptras::{plan_fptras, FptrasPlan};
use crate::oracle::AnswerOracle;
use cqc_data::{Structure, Val};
use cqc_dlm::sample_edge;
use cqc_hom::HybridDecider;
use cqc_query::{build_b_structure, Query};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// [`sample_answers`] with a prepared plan (the oracle skeleton `Â(ϕ)` and
/// the repetition budget are query-side and cached in [`FptrasPlan`]).
///
/// `plan` must come from [`crate::plan_fptras`] on the same `query`; the
/// pairing is not checked here (use [`crate::Engine::prepare`], which owns
/// it).
pub fn sample_answers_with_plan(
    query: &Query,
    plan: &FptrasPlan,
    db: &Structure,
    count: usize,
    config: &ApproxConfig,
) -> Result<Vec<Vec<Val>>, CoreError> {
    if !query.compatible_with(db.signature()) {
        return Err(CoreError::incompatible_database(
            "sig(ϕ) is not contained in sig(D)",
        ));
    }
    let b_structure = build_b_structure(query, db).map_err(CoreError::incompatible_database)?;
    let decider = HybridDecider::new();
    // The self-reduction descends sequentially, but each descent step's
    // colour-coding rounds fan out over the runtime; the oracle's per-call
    // seed-splitting keeps the drawn answers bit-identical for any thread
    // count.
    let mut oracle = AnswerOracle::with_a_hat(
        query,
        b_structure,
        &plan.a_hat,
        db.universe_size(),
        &decider,
        plan.repetitions,
        config.seed,
    )
    .with_runtime(config.runtime());
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x5A17));
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        match sample_edge(&mut oracle, &mut rng) {
            Some(edge) => out.push(edge.into_iter().map(|v| Val(v as u32)).collect()),
            None => break,
        }
    }
    Ok(out)
}

/// Draw `count` (approximately) uniform answers of `(ϕ, D)`. Returns fewer
/// than `count` tuples only when the query has no answers at all.
/// Each returned tuple lists the values of the free variables in head order.
///
/// Legacy wrapper over [`plan_fptras`] + [`sample_answers_with_plan`] —
/// when sampling against many databases, prefer [`crate::Engine::prepare`].
pub fn sample_answers(
    query: &Query,
    db: &Structure,
    count: usize,
    config: &ApproxConfig,
) -> Result<Vec<Vec<Val>>, CoreError> {
    config.validate()?;
    let plan = plan_fptras(query, config);
    sample_answers_with_plan(query, &plan, db, count, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_data::StructureBuilder;
    use cqc_query::{enumerate_answers, parse_query};
    use std::collections::BTreeMap;

    fn db() -> Structure {
        let mut b = StructureBuilder::new(6);
        b.relation("F", 2);
        for (u, v) in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (3, 0), (3, 5)] {
            b.fact("F", &[u, v]).unwrap();
        }
        b.build()
    }

    #[test]
    fn samples_are_answers_and_cover_the_support() {
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let db = db();
        let answers = enumerate_answers(&q, &db);
        assert!(answers.len() >= 2);
        let cfg = ApproxConfig::new(0.3, 0.05).with_seed(9);
        let samples = sample_answers(&q, &db, 60, &cfg).unwrap();
        assert_eq!(samples.len(), 60);
        let mut freq: BTreeMap<Vec<Val>, usize> = BTreeMap::new();
        for s in samples {
            assert!(answers.contains(&s), "sampled non-answer {s:?}");
            *freq.entry(s).or_insert(0) += 1;
        }
        // every answer appears at least once in 60 draws over a support of ≤ 4
        assert_eq!(freq.len(), answers.len());
    }

    #[test]
    fn sampling_empty_answer_set() {
        let q = parse_query("ans(x) :- F(x, x)").unwrap();
        let db = db();
        let cfg = ApproxConfig::new(0.3, 0.05).with_seed(10);
        let samples = sample_answers(&q, &db, 5, &cfg).unwrap();
        assert!(samples.is_empty());
    }

    #[test]
    fn two_free_variable_sampling() {
        let q = parse_query("ans(x, y) :- F(x, z), F(z, y)").unwrap();
        let db = db();
        let answers = enumerate_answers(&q, &db);
        let cfg = ApproxConfig::new(0.3, 0.05).with_seed(11);
        let samples = sample_answers(&q, &db, 30, &cfg).unwrap();
        for s in samples {
            assert!(answers.contains(&s));
        }
    }
}
