//! The FPTRAS of Theorems 5 and 13: approximate answer counting for ECQs of
//! bounded treewidth (bounded arity) and DCQs of bounded adaptive width
//! (unbounded arity).
//!
//! Pipeline (Section 3 / Section 4 / Section 5.1 of the paper):
//! `|Ans(ϕ, D)|` = number of hyperedges of `H(ϕ, D)` (Observation 25)
//! ≈ output of the Dell–Lapinskas–Meeks counter (`cqc-dlm`) run against the
//! colour-coding `EdgeFree` oracle ([`crate::AnswerOracle`]), whose `Hom`
//! queries are answered by a bounded-width engine (`cqc-hom`).

use crate::api::ApproxConfig;
use crate::error::CoreError;
use crate::oracle::AnswerOracle;
use crate::report::{CountMethod, EstimateReport, Telemetry};
use cqc_data::Structure;
use cqc_dlm::{approx_edge_count, ApproxMethod, DlmConfig, EdgeFreeOracle};
use cqc_hom::HybridDecider;
use cqc_obs::Stopwatch;
use cqc_query::colored::ColouringFamily;
use cqc_query::{build_a_hat, build_b_structure, Query};
use cqc_runtime::Runtime;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Legacy diagnostic report of an FPTRAS run, kept for the one-shot
/// [`fptras_count`] wrapper. Prefer [`crate::Engine::prepare`] +
/// [`crate::PreparedQuery::count`], which return the unified
/// [`EstimateReport`].
#[derive(Debug, Clone)]
pub struct FptrasReport {
    /// The `(ε, δ)`-estimate of `|Ans(ϕ, D)|`.
    pub estimate: f64,
    /// Whether the edge counter resolved the count exactly (sparse regime).
    pub exact: bool,
    /// Number of `EdgeFree` oracle calls made by the edge counter.
    pub oracle_calls: u64,
    /// Number of `Hom` queries issued while simulating the oracle.
    pub hom_calls: u64,
    /// Colour-coding repetitions used per oracle call.
    pub repetitions: usize,
    /// Treewidth of the query hypergraph `H(ϕ)` (the FPT parameter of
    /// Theorem 5), when it was cheap to compute.
    pub query_treewidth: Option<usize>,
}

/// The query-side plan of the FPTRAS of Theorems 5 / 13: everything that
/// depends only on `ϕ` (and the accuracy configuration), computed once by
/// [`plan_fptras`] (or [`crate::Engine::prepare`]) and reused across
/// databases.
#[derive(Debug)]
pub struct FptrasPlan {
    /// The coloured associated structure `Â(ϕ)` (Lemma 30) the oracle
    /// matches against.
    pub a_hat: Structure,
    /// Colour-coding repetitions `Q` per `EdgeFree` oracle call.
    pub repetitions: usize,
    /// Treewidth of `H(ϕ)`, computed lazily on first request (it is pure
    /// telemetry, and the exact DP is exponential in the variable count —
    /// sampling-only use of a plan must not pay for it).
    query_treewidth: std::sync::OnceLock<Option<usize>>,
}

impl FptrasPlan {
    /// Treewidth of `H(ϕ)` (the FPT parameter of Theorem 5), when it is
    /// cheap to compute. Computed on first call, cached in the plan.
    ///
    /// `query` must be the query this plan was built for (the value is
    /// cached unconditionally, so a different query returns the original
    /// query's treewidth). [`crate::PreparedQuery`] enforces the pairing;
    /// direct callers of the plan API must uphold it.
    pub fn query_treewidth(&self, query: &Query) -> Option<usize> {
        *self.query_treewidth.get_or_init(|| {
            if query.num_vars() <= 13 {
                let h = cqc_query::query_hypergraph(query);
                Some(cqc_hypergraph::treewidth::treewidth_exact(&h).0)
            } else {
                None
            }
        })
    }
}

/// Query-side planning for the FPTRAS of Theorems 5 / 13: build `Â(ϕ)` and
/// fix the colour-coding repetition budget.
pub fn plan_fptras(query: &Query, config: &ApproxConfig) -> FptrasPlan {
    let repetitions = config.colour_repetitions.unwrap_or_else(|| {
        AnswerOracle::<HybridDecider>::recommended_repetitions(query, config.delta)
    });
    FptrasPlan {
        a_hat: build_a_hat(query),
        repetitions,
        query_treewidth: std::sync::OnceLock::new(),
    }
}

/// Per-thread evaluation scratch for batch counting.
///
/// **Invariant (why reuse is sound):** everything in here is either
/// stateless across evaluations (the `Hom` decider — its only mutable state
/// is atomic telemetry counters) or a pure function of the query and the
/// database *dimensions* (the all-true relaxation colouring, which depends
/// only on `(|Δ(ϕ)|, |U(D)|)` and is revalidated against each database).
/// Reusing the scratch across the databases one worker evaluates in
/// [`crate::PreparedQuery::count_batch`] therefore cannot change any
/// estimate — it only removes per-database allocations. The scratch is
/// owned by exactly **one** worker thread (never shared), so reuse also
/// never introduces cross-thread contention.
#[derive(Default)]
pub struct EvalScratch {
    decider: HybridDecider,
    /// Cached relaxation colouring, keyed by `(|Δ(ϕ)|, |U(D)|)`: reused
    /// verbatim while consecutive databases share those dimensions.
    relaxed: Option<(usize, usize, ColouringFamily)>,
}

impl EvalScratch {
    /// A fresh scratch (one per worker thread).
    pub fn new() -> Self {
        Self::default()
    }

    /// Make sure the cached relaxation colouring matches the dimensions.
    fn ensure_relaxed(&mut self, num_diseq: usize, universe_size: usize) {
        let fits =
            matches!(&self.relaxed, Some((d, u, _)) if *d == num_diseq && *u == universe_size);
        if !fits {
            let family = ColouringFamily::from_fn(num_diseq, universe_size, |_, _| true);
            self.relaxed = Some((num_diseq, universe_size, family));
        }
    }
}

/// Data-side evaluation of a prepared FPTRAS plan against one database:
/// build `B(ϕ, D)` and run the Dell–Lapinskas–Meeks edge counter against
/// the colour-coding oracle.
///
/// `plan` must come from [`plan_fptras`] on the same `query`; the pairing
/// is not checked here (use [`crate::Engine::prepare`], which owns it).
pub fn fptras_count_with_plan(
    query: &Query,
    plan: &FptrasPlan,
    db: &Structure,
    config: &ApproxConfig,
) -> Result<EstimateReport, CoreError> {
    let mut scratch = EvalScratch::new();
    fptras_count_with_scratch(query, plan, db, config, config.runtime(), &mut scratch)
}

/// [`fptras_count_with_plan`] with an explicit runtime and a reusable
/// per-thread [`EvalScratch`] (the `count_batch` hot path).
pub fn fptras_count_with_scratch(
    query: &Query,
    plan: &FptrasPlan,
    db: &Structure,
    config: &ApproxConfig,
    runtime: Runtime,
    scratch: &mut EvalScratch,
) -> Result<EstimateReport, CoreError> {
    let start = Stopwatch::start();
    if !query.compatible_with(db.signature()) {
        return Err(CoreError::incompatible_database(
            "sig(ϕ) is not contained in sig(D)",
        ));
    }
    let b_structure = build_b_structure(query, db).map_err(CoreError::incompatible_database)?;
    scratch.ensure_relaxed(query.disequalities().len(), db.universe_size());
    let build_wall = start.elapsed();

    let relaxed = scratch
        .relaxed
        .as_ref()
        .map(|(_, _, c)| c)
        .expect("ensured");
    let mut oracle = AnswerOracle::with_a_hat(
        query,
        b_structure,
        &plan.a_hat,
        db.universe_size(),
        &scratch.decider,
        plan.repetitions,
        config.seed,
    )
    .with_runtime(runtime)
    .with_relaxed_colouring(relaxed);

    let count_start = Stopwatch::start();
    let dlm = DlmConfig::new(config.epsilon, config.delta);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x9E37));
    let result = approx_edge_count(&mut oracle, &dlm, &mut rng);
    let count_wall = count_start.elapsed();

    let exact = matches!(result.method, ApproxMethod::Exact) && query.disequalities().is_empty();
    let mut report = if exact {
        EstimateReport::exact_value(result.estimate, CountMethod::Fptras)
    } else {
        EstimateReport::approximate(
            result.estimate,
            CountMethod::Fptras,
            config.epsilon,
            config.delta,
        )
    };
    report.telemetry = Telemetry {
        oracle_calls: oracle.calls(),
        hom_calls: oracle.hom_calls(),
        colour_repetitions: plan.repetitions,
        query_treewidth: plan.query_treewidth(query),
        wall: start.elapsed(),
        threads_used: runtime.threads(),
        phase_walls: vec![("build_b", build_wall), ("count", count_wall)],
        ..Telemetry::default()
    };
    Ok(report)
}

/// One-shot FPTRAS of Theorem 5 (and, via the same code path with the
/// unbounded-arity `Hom` engine, Theorem 13) on `(ϕ, D)`: plan, then
/// evaluate.
///
/// Works for every ECQ; the fixed-parameter tractability guarantee applies
/// when the hypergraph `H(ϕ)` has bounded treewidth (bounded arity) or the
/// query is a DCQ of bounded adaptive width. Legacy wrapper over
/// [`plan_fptras`] + [`fptras_count_with_plan`] — when counting against
/// many databases, prefer [`crate::Engine::prepare`] so `Â(ϕ)` and the
/// repetition budget are computed once.
pub fn fptras_count(
    query: &Query,
    db: &Structure,
    config: &ApproxConfig,
) -> Result<FptrasReport, CoreError> {
    config.validate()?;
    let plan = plan_fptras(query, config);
    let r = fptras_count_with_plan(query, &plan, db, config)?;
    Ok(FptrasReport {
        estimate: r.estimate,
        exact: r.exact,
        oracle_calls: r.telemetry.oracle_calls,
        hom_calls: r.telemetry.hom_calls,
        repetitions: plan.repetitions,
        query_treewidth: plan.query_treewidth(query),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ApproxConfig;
    use cqc_data::StructureBuilder;
    use cqc_query::{count_answers_via_solutions, parse_query};

    fn config(eps: f64, delta: f64, seed: u64) -> ApproxConfig {
        ApproxConfig {
            epsilon: eps,
            delta,
            seed,
            ..ApproxConfig::default()
        }
    }

    fn random_graph(n: usize, edges: &[(u32, u32)]) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("F", 2);
        for &(u, v) in edges {
            b.fact("F", &[u, v]).unwrap();
        }
        b.build()
    }

    #[test]
    fn friends_query_equation_1() {
        // the paper's running example: people with ≥ 2 distinct friends
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let db = random_graph(
            6,
            &[
                (0, 1),
                (0, 2),
                (1, 2),
                (3, 0),
                (3, 4),
                (4, 5),
                (2, 5),
                (2, 0),
            ],
        );
        let truth = count_answers_via_solutions(&q, &db) as f64;
        let r = fptras_count(&q, &db, &config(0.2, 0.05, 1)).unwrap();
        assert!(
            (r.estimate - truth).abs() <= 0.25 * truth.max(1.0),
            "estimate {} vs truth {}",
            r.estimate,
            truth
        );
        assert_eq!(r.query_treewidth, Some(1));
        assert!(r.hom_calls > 0);
    }

    #[test]
    fn query_with_negation() {
        // pairs connected one way but not the other
        let q = parse_query("ans(x, y) :- F(x, y), !F(y, x)").unwrap();
        let db = random_graph(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 1)]);
        let truth = count_answers_via_solutions(&q, &db) as f64;
        let r = fptras_count(&q, &db, &config(0.2, 0.05, 2)).unwrap();
        assert!(
            (r.estimate - truth).abs() <= 0.25 * truth.max(1.0),
            "estimate {} vs truth {}",
            r.estimate,
            truth
        );
    }

    #[test]
    fn plain_cq_is_counted_exactly_in_sparse_regime() {
        let q = parse_query("ans(x, y) :- F(x, z), F(z, y)").unwrap();
        let db = random_graph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let truth = count_answers_via_solutions(&q, &db) as f64;
        let r = fptras_count(&q, &db, &config(0.3, 0.1, 3)).unwrap();
        assert_eq!(r.estimate, truth);
        assert!(r.exact);
    }

    #[test]
    fn boolean_query() {
        let q = parse_query("ans() :- F(x, y), F(y, z)").unwrap();
        let db = random_graph(4, &[(0, 1), (1, 2)]);
        let r = fptras_count(&q, &db, &config(0.3, 0.1, 4)).unwrap();
        assert_eq!(r.estimate, 1.0);
        let empty = random_graph(4, &[(0, 1)]);
        let r = fptras_count(&q, &empty, &config(0.3, 0.1, 5)).unwrap();
        assert_eq!(r.estimate, 0.0);
    }

    #[test]
    fn incompatible_database_is_rejected() {
        let q = parse_query("ans(x) :- Nope(x, y)").unwrap();
        let db = random_graph(3, &[(0, 1)]);
        assert!(fptras_count(&q, &db, &config(0.3, 0.1, 6)).is_err());
    }

    #[test]
    fn zero_answers_with_disequalities() {
        // nobody has two distinct friends in a perfect matching
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let db = random_graph(6, &[(0, 1), (2, 3), (4, 5)]);
        let r = fptras_count(&q, &db, &config(0.3, 0.1, 7)).unwrap();
        assert_eq!(r.estimate, 0.0);
    }
}
