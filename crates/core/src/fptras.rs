//! The FPTRAS of Theorems 5 and 13: approximate answer counting for ECQs of
//! bounded treewidth (bounded arity) and DCQs of bounded adaptive width
//! (unbounded arity).
//!
//! Pipeline (Section 3 / Section 4 / Section 5.1 of the paper):
//! `|Ans(ϕ, D)|` = number of hyperedges of `H(ϕ, D)` (Observation 25)
//! ≈ output of the Dell–Lapinskas–Meeks counter (`cqc-dlm`) run against the
//! colour-coding `EdgeFree` oracle ([`crate::AnswerOracle`]), whose `Hom`
//! queries are answered by a bounded-width engine (`cqc-hom`).

use crate::api::{ApproxConfig, CoreError};
use crate::oracle::AnswerOracle;
use cqc_data::Structure;
use cqc_dlm::{approx_edge_count, ApproxMethod, DlmConfig, EdgeFreeOracle};
use cqc_hom::HybridDecider;
use cqc_query::{build_b_structure, Query};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Diagnostic report of an FPTRAS run.
#[derive(Debug, Clone)]
pub struct FptrasReport {
    /// The `(ε, δ)`-estimate of `|Ans(ϕ, D)|`.
    pub estimate: f64,
    /// Whether the edge counter resolved the count exactly (sparse regime).
    pub exact: bool,
    /// Number of `EdgeFree` oracle calls made by the edge counter.
    pub oracle_calls: u64,
    /// Number of `Hom` queries issued while simulating the oracle.
    pub hom_calls: u64,
    /// Colour-coding repetitions used per oracle call.
    pub repetitions: usize,
    /// Treewidth of the query hypergraph `H(ϕ)` (the FPT parameter of
    /// Theorem 5), when it was cheap to compute.
    pub query_treewidth: Option<usize>,
}

/// Run the FPTRAS of Theorem 5 (and, via the same code path with the
/// unbounded-arity `Hom` engine, Theorem 13) on `(ϕ, D)`.
///
/// Works for every ECQ; the fixed-parameter tractability guarantee applies
/// when the hypergraph `H(ϕ)` has bounded treewidth (bounded arity) or the
/// query is a DCQ of bounded adaptive width.
pub fn fptras_count(
    query: &Query,
    db: &Structure,
    config: &ApproxConfig,
) -> Result<FptrasReport, CoreError> {
    if !query.compatible_with(db.signature()) {
        return Err(CoreError::IncompatibleDatabase(
            "sig(ϕ) is not contained in sig(D)".into(),
        ));
    }
    let b_structure =
        build_b_structure(query, db).map_err(CoreError::IncompatibleDatabase)?;

    let decider = HybridDecider::new();
    let repetitions = config
        .colour_repetitions
        .unwrap_or_else(|| AnswerOracle::<HybridDecider>::recommended_repetitions(query, config.delta));
    let mut oracle = AnswerOracle::new(
        query,
        b_structure,
        db.universe_size(),
        &decider,
        repetitions,
        config.seed,
    );

    let dlm = DlmConfig::new(config.epsilon, config.delta);
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x9E37));
    let result = approx_edge_count(&mut oracle, &dlm, &mut rng);

    let query_treewidth = if query.num_vars() <= 13 {
        let h = cqc_query::query_hypergraph(query);
        Some(cqc_hypergraph::treewidth::treewidth_exact(&h).0)
    } else {
        None
    };

    Ok(FptrasReport {
        estimate: result.estimate,
        exact: matches!(result.method, ApproxMethod::Exact)
            && query.disequalities().is_empty(),
        oracle_calls: oracle.calls(),
        hom_calls: oracle.hom_calls(),
        repetitions,
        query_treewidth,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ApproxConfig;
    use cqc_data::StructureBuilder;
    use cqc_query::{count_answers_via_solutions, parse_query};

    fn config(eps: f64, delta: f64, seed: u64) -> ApproxConfig {
        ApproxConfig {
            epsilon: eps,
            delta,
            seed,
            ..ApproxConfig::default()
        }
    }

    fn random_graph(n: usize, edges: &[(u32, u32)]) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("F", 2);
        for &(u, v) in edges {
            b.fact("F", &[u, v]).unwrap();
        }
        b.build()
    }

    #[test]
    fn friends_query_equation_1() {
        // the paper's running example: people with ≥ 2 distinct friends
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let db = random_graph(
            6,
            &[(0, 1), (0, 2), (1, 2), (3, 0), (3, 4), (4, 5), (2, 5), (2, 0)],
        );
        let truth = count_answers_via_solutions(&q, &db) as f64;
        let r = fptras_count(&q, &db, &config(0.2, 0.05, 1)).unwrap();
        assert!(
            (r.estimate - truth).abs() <= 0.25 * truth.max(1.0),
            "estimate {} vs truth {}",
            r.estimate,
            truth
        );
        assert_eq!(r.query_treewidth, Some(1));
        assert!(r.hom_calls > 0);
    }

    #[test]
    fn query_with_negation() {
        // pairs connected one way but not the other
        let q = parse_query("ans(x, y) :- F(x, y), !F(y, x)").unwrap();
        let db = random_graph(5, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 1)]);
        let truth = count_answers_via_solutions(&q, &db) as f64;
        let r = fptras_count(&q, &db, &config(0.2, 0.05, 2)).unwrap();
        assert!(
            (r.estimate - truth).abs() <= 0.25 * truth.max(1.0),
            "estimate {} vs truth {}",
            r.estimate,
            truth
        );
    }

    #[test]
    fn plain_cq_is_counted_exactly_in_sparse_regime() {
        let q = parse_query("ans(x, y) :- F(x, z), F(z, y)").unwrap();
        let db = random_graph(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let truth = count_answers_via_solutions(&q, &db) as f64;
        let r = fptras_count(&q, &db, &config(0.3, 0.1, 3)).unwrap();
        assert_eq!(r.estimate, truth);
        assert!(r.exact);
    }

    #[test]
    fn boolean_query() {
        let q = parse_query("ans() :- F(x, y), F(y, z)").unwrap();
        let db = random_graph(4, &[(0, 1), (1, 2)]);
        let r = fptras_count(&q, &db, &config(0.3, 0.1, 4)).unwrap();
        assert_eq!(r.estimate, 1.0);
        let empty = random_graph(4, &[(0, 1)]);
        let r = fptras_count(&q, &empty, &config(0.3, 0.1, 5)).unwrap();
        assert_eq!(r.estimate, 0.0);
    }

    #[test]
    fn incompatible_database_is_rejected() {
        let q = parse_query("ans(x) :- Nope(x, y)").unwrap();
        let db = random_graph(3, &[(0, 1)]);
        assert!(fptras_count(&q, &db, &config(0.3, 0.1, 6)).is_err());
    }

    #[test]
    fn zero_answers_with_disequalities() {
        // nobody has two distinct friends in a perfect matching
        let q = parse_query("ans(x) :- F(x, y), F(x, z), y != z").unwrap();
        let db = random_graph(6, &[(0, 1), (2, 3), (4, 5)]);
        let r = fptras_count(&q, &db, &config(0.3, 0.1, 7)).unwrap();
        assert_eq!(r.estimate, 0.0);
    }
}
