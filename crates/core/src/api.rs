//! Top-level configuration, result and dispatch types.

use crate::fpras::fpras_count;
use crate::fptras::fptras_count;
use cqc_data::Structure;
use cqc_query::{count_answers_via_solutions, Query, QueryClass};
use std::fmt;

/// Errors surfaced by the counting algorithms.
#[derive(Debug, Clone)]
pub enum CoreError {
    /// `sig(ϕ) ⊄ sig(D)` or another database/query mismatch.
    IncompatibleDatabase(String),
    /// The requested algorithm does not apply to this query class
    /// (e.g. FPRAS requested for a DCQ — ruled out by Observation 10).
    UnsupportedQueryClass(String),
    /// An internal invariant was violated (always a bug).
    InternalInvariant(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::IncompatibleDatabase(m) => write!(f, "incompatible database: {m}"),
            CoreError::UnsupportedQueryClass(m) => write!(f, "unsupported query class: {m}"),
            CoreError::InternalInvariant(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Configuration shared by all approximate counters.
#[derive(Debug, Clone)]
pub struct ApproxConfig {
    /// Relative error `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Failure probability `δ ∈ (0, 1)`.
    pub delta: f64,
    /// RNG seed (all algorithms are deterministic given the seed).
    pub seed: u64,
    /// Override for the number of colour-coding repetitions `Q` per
    /// `EdgeFree` oracle call (default: derived from `δ` and `|Δ(ϕ)|`, see
    /// [`crate::AnswerOracle::recommended_repetitions`]).
    pub colour_repetitions: Option<usize>,
    /// The FPRAS switches from the exact fixed-shape #TA counter to the
    /// sampling counter once the automaton has more states than this.
    pub fpras_exact_state_budget: usize,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            epsilon: 0.25,
            delta: 0.05,
            seed: 0xC0FFEE,
            colour_repetitions: None,
            fpras_exact_state_budget: 4_000,
        }
    }
}

impl ApproxConfig {
    /// A configuration with the given accuracy parameters and defaults
    /// elsewhere.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        ApproxConfig {
            epsilon,
            delta,
            ..Default::default()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Which algorithm produced a [`CountEstimate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountMethod {
    /// The FPRAS of Theorem 16 (CQs of bounded fractional hypertreewidth).
    Fpras,
    /// The FPTRAS of Theorems 5 / 13 (ECQs / DCQs).
    Fptras,
    /// Exact baseline.
    Exact,
}

/// The result of [`approx_count_answers`].
#[derive(Debug, Clone)]
pub struct CountEstimate {
    /// The estimate of `|Ans(ϕ, D)|`.
    pub estimate: f64,
    /// The algorithm used.
    pub method: CountMethod,
    /// Whether the value is exact rather than approximate.
    pub exact: bool,
}

/// Approximately count `|Ans(ϕ, D)|`, dispatching on the query class exactly
/// along the lines of Figure 1 of the paper:
///
/// * plain CQs → the FPRAS of Theorem 16,
/// * DCQs and ECQs → the FPTRAS of Theorems 5 / 13.
pub fn approx_count_answers(
    query: &Query,
    db: &Structure,
    config: &ApproxConfig,
) -> Result<CountEstimate, CoreError> {
    match query.class() {
        QueryClass::CQ => {
            let r = fpras_count(query, db, config)?;
            Ok(CountEstimate {
                estimate: r.estimate,
                method: CountMethod::Fpras,
                exact: r.exact,
            })
        }
        QueryClass::DCQ | QueryClass::ECQ => {
            let r = fptras_count(query, db, config)?;
            Ok(CountEstimate {
                estimate: r.estimate,
                method: CountMethod::Fptras,
                exact: r.exact,
            })
        }
    }
}

/// Exact answer counting (baseline; exponential in the query size).
pub fn exact_count_answers(query: &Query, db: &Structure) -> u64 {
    count_answers_via_solutions(query, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_data::StructureBuilder;
    use cqc_query::parse_query;

    fn tiny_db() -> Structure {
        let mut b = StructureBuilder::new(4);
        b.relation("E", 2);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            b.fact("E", &[u, v]).unwrap();
        }
        b.build()
    }

    #[test]
    fn dispatch_by_query_class() {
        let db = tiny_db();
        let cfg = ApproxConfig::new(0.25, 0.1).with_seed(1);

        let cq = parse_query("ans(x, y) :- E(x, z), E(z, y)").unwrap();
        let r = approx_count_answers(&cq, &db, &cfg).unwrap();
        assert_eq!(r.method, CountMethod::Fpras);
        assert_eq!(r.estimate, exact_count_answers(&cq, &db) as f64);

        let dcq = parse_query("ans(x) :- E(x, y), E(x, z), y != z").unwrap();
        let r = approx_count_answers(&dcq, &db, &cfg).unwrap();
        assert_eq!(r.method, CountMethod::Fptras);
        let truth = exact_count_answers(&dcq, &db) as f64;
        assert!((r.estimate - truth).abs() <= 0.3 * truth.max(1.0));

        let ecq = parse_query("ans(x, y) :- E(x, y), !E(y, x)").unwrap();
        let r = approx_count_answers(&ecq, &db, &cfg).unwrap();
        assert_eq!(r.method, CountMethod::Fptras);
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = ApproxConfig::default();
        assert!(c.epsilon > 0.0 && c.epsilon < 1.0);
        assert!(c.delta > 0.0 && c.delta < 1.0);
        assert!(c.fpras_exact_state_budget > 0);
    }

    #[test]
    fn error_display() {
        let e = CoreError::UnsupportedQueryClass("x".into());
        assert!(e.to_string().contains("unsupported"));
        let e = CoreError::IncompatibleDatabase("y".into());
        assert!(e.to_string().contains("incompatible"));
        let e = CoreError::InternalInvariant("z".into());
        assert!(e.to_string().contains("invariant"));
    }
}
