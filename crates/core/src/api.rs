//! Shared configuration plus the legacy one-shot entry points.
//!
//! The primary API is [`crate::Engine`] / [`crate::PreparedQuery`] (plan
//! once, count many). The free functions here — [`approx_count_answers`],
//! [`exact_count_answers`] — are thin wrappers kept for one-off calls and
//! backwards compatibility; they re-plan the query on every call.

use crate::engine::Engine;
use crate::error::CoreError;
use crate::report::CountMethod;
use cqc_data::Structure;
use cqc_query::{count_answers_via_solutions, Query};

/// Configuration shared by all approximate counters.
#[derive(Debug, Clone)]
pub struct ApproxConfig {
    /// Relative error `ε ∈ (0, 1)`.
    pub epsilon: f64,
    /// Failure probability `δ ∈ (0, 1)`.
    pub delta: f64,
    /// RNG seed (all algorithms are deterministic given the seed).
    pub seed: u64,
    /// Override for the number of colour-coding repetitions `Q` per
    /// `EdgeFree` oracle call (default: derived from `δ` and `|Δ(ϕ)|`, see
    /// [`crate::AnswerOracle::recommended_repetitions`]).
    pub colour_repetitions: Option<usize>,
    /// The FPRAS switches from the exact fixed-shape #TA counter to the
    /// sampling counter once the automaton has more states than this.
    pub fpras_exact_state_budget: usize,
    /// Worker threads for the parallel runtime (`0` = automatic: the
    /// `COUNTING_THREADS` environment variable, else the machine's available
    /// parallelism). Thanks to deterministic seed-splitting the thread count
    /// **never** affects estimates — only wall-clock time; see `cqc-runtime`.
    pub threads: usize,
    /// Worker pool the runtime dispatches on (`None` = the process-wide
    /// pool, sized by `COUNTING_POOL_WORKERS`). Like the thread count, the
    /// pool and its width never affect estimates, only wall times; the
    /// determinism matrix in `tests/parallel_determinism.rs` runs engines
    /// against pools of width 1, 2 and 8 and requires bit-identical
    /// estimates.
    pub worker_pool: Option<&'static cqc_runtime::pool::Pool>,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            epsilon: 0.25,
            delta: 0.05,
            seed: 0xC0FFEE,
            colour_repetitions: None,
            fpras_exact_state_budget: 4_000,
            threads: 0,
            worker_pool: None,
        }
    }
}

impl ApproxConfig {
    /// A configuration with the given accuracy parameters and defaults
    /// elsewhere.
    pub fn new(epsilon: f64, delta: f64) -> Self {
        ApproxConfig {
            epsilon,
            delta,
            ..Default::default()
        }
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The parallel runtime this configuration resolves to: `threads`
    /// workers dispatching on `worker_pool` (or the process-wide pool).
    pub fn runtime(&self) -> cqc_runtime::Runtime {
        let rt = cqc_runtime::Runtime::new(self.threads);
        match self.worker_pool {
            Some(pool) => rt.with_pool(pool),
            None => rt,
        }
    }

    /// Check that the accuracy parameters are usable: `ε, δ ∈ (0, 1)`.
    ///
    /// Called by [`crate::EngineBuilder::build`], [`crate::Engine::prepare`]
    /// and the legacy one-shot wrappers, so every entry point rejects an
    /// out-of-range configuration with the same
    /// [`PlanError::InvalidConfig`](crate::PlanError::InvalidConfig) instead
    /// of running the samplers with a nonsensical budget.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(0.0 < self.epsilon && self.epsilon < 1.0) {
            return Err(CoreError::invalid_config(format!(
                "ε must lie in (0, 1), got {}",
                self.epsilon
            )));
        }
        if !(0.0 < self.delta && self.delta < 1.0) {
            return Err(CoreError::invalid_config(format!(
                "δ must lie in (0, 1), got {}",
                self.delta
            )));
        }
        Ok(())
    }
}

/// The result of [`approx_count_answers`] (legacy; the engine API returns
/// the richer [`crate::EstimateReport`]).
#[derive(Debug, Clone)]
pub struct CountEstimate {
    /// The estimate of `|Ans(ϕ, D)|`.
    pub estimate: f64,
    /// The algorithm used.
    pub method: CountMethod,
    /// Whether the value is exact rather than approximate.
    pub exact: bool,
}

/// Approximately count `|Ans(ϕ, D)|`, dispatching on the query class exactly
/// along the lines of Figure 1 of the paper:
///
/// * plain CQs → the FPRAS of Theorem 16,
/// * DCQs and ECQs → the FPTRAS of Theorems 5 / 13.
///
/// Legacy one-shot wrapper over [`Engine::prepare`] +
/// [`crate::PreparedQuery::count`]: the query is re-planned on every call.
/// When evaluating the same query against several databases (or repeatedly),
/// prepare it once instead — the estimates are bit-identical for the same
/// seed.
pub fn approx_count_answers(
    query: &Query,
    db: &Structure,
    config: &ApproxConfig,
) -> Result<CountEstimate, CoreError> {
    let report = Engine::from_config(config.clone())
        .prepare(query)?
        .count(db)?;
    Ok(CountEstimate {
        estimate: report.estimate,
        method: report.method,
        exact: report.exact,
    })
}

/// Exact answer counting (baseline; exponential in the query size).
pub fn exact_count_answers(query: &Query, db: &Structure) -> u64 {
    count_answers_via_solutions(query, db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{EvalError, PlanError};
    use cqc_data::StructureBuilder;
    use cqc_query::parse_query;

    fn tiny_db() -> Structure {
        let mut b = StructureBuilder::new(4);
        b.relation("E", 2);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)] {
            b.fact("E", &[u, v]).unwrap();
        }
        b.build()
    }

    #[test]
    fn dispatch_by_query_class() {
        let db = tiny_db();
        let cfg = ApproxConfig::new(0.25, 0.1).with_seed(1);

        let cq = parse_query("ans(x, y) :- E(x, z), E(z, y)").unwrap();
        let r = approx_count_answers(&cq, &db, &cfg).unwrap();
        assert_eq!(r.method, CountMethod::Fpras);
        assert_eq!(r.estimate, exact_count_answers(&cq, &db) as f64);

        let dcq = parse_query("ans(x) :- E(x, y), E(x, z), y != z").unwrap();
        let r = approx_count_answers(&dcq, &db, &cfg).unwrap();
        assert_eq!(r.method, CountMethod::Fptras);
        let truth = exact_count_answers(&dcq, &db) as f64;
        assert!((r.estimate - truth).abs() <= 0.3 * truth.max(1.0));

        let ecq = parse_query("ans(x, y) :- E(x, y), !E(y, x)").unwrap();
        let r = approx_count_answers(&ecq, &db, &cfg).unwrap();
        assert_eq!(r.method, CountMethod::Fptras);
    }

    #[test]
    fn config_defaults_are_sane() {
        let c = ApproxConfig::default();
        assert!(c.epsilon > 0.0 && c.epsilon < 1.0);
        assert!(c.delta > 0.0 && c.delta < 1.0);
        assert!(c.fpras_exact_state_budget > 0);
    }

    #[test]
    fn error_display() {
        let e = CoreError::unsupported_query_class("x");
        assert!(e.to_string().contains("unsupported"));
        let e = CoreError::incompatible_database("y");
        assert!(e.to_string().contains("incompatible"));
        let e = CoreError::plan_internal("z");
        assert!(e.to_string().contains("invariant"));
        // the typed hierarchy splits plan-time from eval-time failures
        assert!(matches!(
            CoreError::unsupported_query_class("x"),
            CoreError::Plan(PlanError::UnsupportedQueryClass(_))
        ));
        assert!(matches!(
            CoreError::incompatible_database("y"),
            CoreError::Eval(EvalError::IncompatibleDatabase(_))
        ));
    }
}
