//! The typed error hierarchy of the counting engine.
//!
//! Errors are split along the same line as the [`crate::Engine`] API itself:
//! [`PlanError`] for query-side failures detected while *preparing* a query
//! (class dispatch, decomposition search, configuration validation — all
//! independent of any database), and [`EvalError`] for data-side failures
//! while *evaluating* a prepared plan against a concrete database.

use std::fmt;

/// A query-side failure: the query cannot be planned at all (no database
/// involved).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The requested algorithm does not apply to this query class
    /// (e.g. the FPRAS requested for a DCQ — ruled out by Observation 10).
    UnsupportedQueryClass(String),
    /// The engine configuration is invalid (e.g. `ε ∉ (0, 1)`).
    InvalidConfig(String),
    /// An internal invariant was violated while planning (always a bug).
    Internal(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::UnsupportedQueryClass(m) => write!(f, "unsupported query class: {m}"),
            PlanError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
            PlanError::Internal(m) => write!(f, "internal invariant violated while planning: {m}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// A data-side failure: a prepared plan cannot be evaluated against the
/// given database.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// `sig(ϕ) ⊄ sig(D)` or another database/query mismatch.
    IncompatibleDatabase(String),
    /// An internal invariant was violated while evaluating (always a bug).
    Internal(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::IncompatibleDatabase(m) => write!(f, "incompatible database: {m}"),
            EvalError::Internal(m) => {
                write!(f, "internal invariant violated while evaluating: {m}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Any error surfaced by the counting engine: either a [`PlanError`]
/// (query-side) or an [`EvalError`] (data-side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// Query-side planning failed.
    Plan(PlanError),
    /// Data-side evaluation failed.
    Eval(EvalError),
}

impl CoreError {
    /// Shorthand for [`PlanError::UnsupportedQueryClass`].
    pub fn unsupported_query_class(msg: impl Into<String>) -> Self {
        CoreError::Plan(PlanError::UnsupportedQueryClass(msg.into()))
    }

    /// Shorthand for [`PlanError::InvalidConfig`].
    pub fn invalid_config(msg: impl Into<String>) -> Self {
        CoreError::Plan(PlanError::InvalidConfig(msg.into()))
    }

    /// Shorthand for [`PlanError::Internal`].
    pub fn plan_internal(msg: impl Into<String>) -> Self {
        CoreError::Plan(PlanError::Internal(msg.into()))
    }

    /// Shorthand for [`EvalError::IncompatibleDatabase`].
    pub fn incompatible_database(msg: impl Into<String>) -> Self {
        CoreError::Eval(EvalError::IncompatibleDatabase(msg.into()))
    }

    /// Shorthand for [`EvalError::Internal`].
    pub fn eval_internal(msg: impl Into<String>) -> Self {
        CoreError::Eval(EvalError::Internal(msg.into()))
    }

    /// Whether this is a query-side (planning) error.
    pub fn is_plan(&self) -> bool {
        matches!(self, CoreError::Plan(_))
    }

    /// Whether this is a data-side (evaluation) error.
    pub fn is_eval(&self) -> bool {
        matches!(self, CoreError::Eval(_))
    }
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Plan(e) => e.fmt(f),
            CoreError::Eval(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Plan(e) => Some(e),
            CoreError::Eval(e) => Some(e),
        }
    }
}

impl From<PlanError> for CoreError {
    fn from(e: PlanError) -> Self {
        CoreError::Plan(e)
    }
}

impl From<EvalError> for CoreError {
    fn from(e: EvalError) -> Self {
        CoreError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_classification() {
        let e = CoreError::unsupported_query_class("x");
        assert!(e.to_string().contains("unsupported"));
        assert!(e.is_plan() && !e.is_eval());

        let e = CoreError::incompatible_database("y");
        assert!(e.to_string().contains("incompatible"));
        assert!(e.is_eval() && !e.is_plan());

        let e = CoreError::plan_internal("z");
        assert!(e.to_string().contains("invariant"));
        let e = CoreError::eval_internal("z");
        assert!(e.to_string().contains("invariant"));
        let e = CoreError::invalid_config("ε");
        assert!(e.to_string().contains("configuration"));
    }

    #[test]
    fn source_chain_exposes_the_inner_error() {
        use std::error::Error as _;
        let e = CoreError::Plan(PlanError::UnsupportedQueryClass("q".into()));
        assert!(e.source().is_some());
        let e = CoreError::Eval(EvalError::IncompatibleDatabase("d".into()));
        assert!(e.source().unwrap().to_string().contains("incompatible"));
    }
}
