//! The unified result type of every counting path.
//!
//! One [`EstimateReport`] is produced whether the estimate came from the
//! FPRAS of Theorem 16, the FPTRAS of Theorems 5/13, or an exact baseline;
//! it carries the estimate, the method, the `(ε, δ)` actually guaranteed
//! (`(0, 0)` when the value is exact), and per-run [`Telemetry`].

use std::fmt;
use std::time::Duration;

/// Which algorithm produced an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountMethod {
    /// The FPRAS of Theorem 16 (CQs of bounded fractional hypertreewidth).
    Fpras,
    /// The FPTRAS of Theorems 5 / 13 (ECQs / DCQs).
    Fptras,
    /// Exact baseline.
    Exact,
}

impl fmt::Display for CountMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CountMethod::Fpras => write!(f, "FPRAS (Theorem 16)"),
            CountMethod::Fptras => write!(f, "FPTRAS (Theorems 5/13)"),
            CountMethod::Exact => write!(f, "exact"),
        }
    }
}

/// Per-run evaluation telemetry, for observability of the hot path.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// `EdgeFree` oracle calls made by the edge counter (FPTRAS path).
    pub oracle_calls: u64,
    /// `Hom` queries issued while simulating the oracle (FPTRAS path).
    pub hom_calls: u64,
    /// Colour-coding repetitions per oracle call (FPTRAS path).
    pub colour_repetitions: usize,
    /// Number of tree-automaton states (FPRAS path).
    pub automaton_states: usize,
    /// Number of tree-decomposition nodes (FPRAS path).
    pub tree_nodes: usize,
    /// Fractional hypertreewidth of the decomposition used (FPRAS path).
    pub fhw: Option<f64>,
    /// Treewidth of `H(ϕ)` when it was cheap to compute (FPTRAS path).
    pub query_treewidth: Option<usize>,
    /// Wall-clock time of the evaluation (excluding query preparation).
    pub wall: Duration,
    /// The **configured** fan-out width of the parallel runtime for this
    /// evaluation (the resolved `threads` setting). The concurrency
    /// actually achieved can be lower — the persistent pool caps helpers at
    /// its own width (`COUNTING_POOL_WORKERS` / `--workers`), and small
    /// oracle calls run serially below the dispatch cutoff. Neither the
    /// configured nor the achieved width ever affects the estimate
    /// (deterministic seed-splitting), only the wall times.
    pub threads_used: usize,
    /// Wall-clock time per evaluation phase, in execution order (e.g.
    /// `build_b` / `count` for the FPTRAS, `build_automaton` / `count` for
    /// the FPRAS).
    pub phase_walls: Vec<(&'static str, Duration)>,
}

/// The unified result of one evaluation of a prepared query against a
/// database.
#[derive(Debug, Clone)]
pub struct EstimateReport {
    /// The estimate of `|Ans(ϕ, D)|`.
    pub estimate: f64,
    /// The algorithm used.
    pub method: CountMethod,
    /// Whether the value is exact rather than approximate.
    pub exact: bool,
    /// The relative error actually guaranteed (`0` when exact).
    pub epsilon: f64,
    /// The failure probability actually guaranteed (`0` when exact).
    pub delta: f64,
    /// Evaluation telemetry.
    pub telemetry: Telemetry,
}

impl EstimateReport {
    /// An exact result (guaranteed `(ε, δ) = (0, 0)`).
    pub fn exact_value(estimate: f64, method: CountMethod) -> Self {
        EstimateReport {
            estimate,
            method,
            exact: true,
            epsilon: 0.0,
            delta: 0.0,
            telemetry: Telemetry::default(),
        }
    }

    /// An `(ε, δ)`-approximate result.
    pub fn approximate(estimate: f64, method: CountMethod, epsilon: f64, delta: f64) -> Self {
        EstimateReport {
            estimate,
            method,
            exact: false,
            epsilon,
            delta,
            telemetry: Telemetry::default(),
        }
    }

    /// Attach telemetry (builder style).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }
}

impl fmt::Display for EstimateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exact {
            write!(f, "{} (exact, {})", self.estimate, self.method)
        } else {
            write!(
                f,
                "{} (±{:.0}% with probability {:.0}%, {})",
                self.estimate,
                self.epsilon * 100.0,
                (1.0 - self.delta) * 100.0,
                self.method
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_reports_zero_error() {
        let r = EstimateReport::exact_value(42.0, CountMethod::Fpras);
        assert!(r.exact);
        assert_eq!(r.epsilon, 0.0);
        assert_eq!(r.delta, 0.0);
        assert!(r.to_string().contains("exact"));
    }

    #[test]
    fn approximate_reports_the_guarantee() {
        let r = EstimateReport::approximate(10.0, CountMethod::Fptras, 0.25, 0.05);
        assert!(!r.exact);
        assert_eq!(r.epsilon, 0.25);
        assert!(r.to_string().contains("95%"));
        assert!(format!("{}", CountMethod::Fptras).contains("FPTRAS"));
        assert!(format!("{}", CountMethod::Exact).contains("exact"));
    }
}
