//! The FPRAS of Theorem 16: counting answers to conjunctive queries (without
//! disequalities or negations) whose hypergraph has bounded fractional
//! hypertreewidth.
//!
//! Pipeline (Section 5.2):
//! 1. a *nice* tree decomposition of `H(ϕ)` of small fractional
//!    hypertreewidth (Lemma 43; decomposition search in `cqc-hypergraph`);
//! 2. per-bag solution relations `Sol(ϕ, D, B_t)` (Definition 47) computed by
//!    the fractional-cover join of Lemma 48 (`cqc-hom::bag_partial_solutions`);
//! 3. the tree automaton of Lemma 52, whose accepted labellings of the fixed
//!    tree shape are in bijection with `Ans(ϕ, D)` (parsimonious reduction);
//! 4. #TA counting (Lemma 51): exact fixed-shape counting when the state
//!    space is small, the ACJR-style sampling counter otherwise.

use crate::api::ApproxConfig;
use crate::error::CoreError;
use crate::report::{CountMethod, EstimateReport, Telemetry};
use cqc_automata::{
    approx_count_fixed_shape_seeded, count_labelings_fixed_shape, TaApproxConfig, TransitionTarget,
    TreeAutomaton, TreeShape,
};
use cqc_data::{Structure, Val};
use cqc_hom::bag_partial_solutions;
use cqc_hypergraph::fwidth::WidthMeasure;
use cqc_hypergraph::NiceTreeDecomposition;
use cqc_obs::Stopwatch;
use cqc_query::{build_a_structure, build_b_structure, query_hypergraph, Query, QueryClass, Var};
use cqc_runtime::{split_seed, Runtime};
use std::collections::HashMap;

/// Legacy diagnostic report of an FPRAS run, kept for the one-shot
/// [`fpras_count`] wrapper. Prefer [`crate::Engine::prepare`] +
/// [`crate::PreparedQuery::count`], which return the unified
/// [`EstimateReport`].
#[derive(Debug, Clone)]
pub struct FprasReport {
    /// The estimate (exact when `exact` is set).
    pub estimate: f64,
    /// Whether the N-slice was counted exactly.
    pub exact: bool,
    /// Fractional hypertreewidth of the decomposition that was used.
    pub fhw: f64,
    /// Number of tree-decomposition nodes (= automaton tree size `N`).
    pub tree_nodes: usize,
    /// Number of automaton states (`Σ_t |Sol_t|`).
    pub states: usize,
}

/// The query-side plan of the FPRAS of Theorem 16: everything that depends
/// only on `ϕ`, computed once by [`plan_fpras`] (or
/// [`crate::Engine::prepare`]) and reused across databases.
#[derive(Debug)]
pub struct FprasPlan {
    /// A validated nice tree decomposition of `H(ϕ)` of small fractional
    /// hypertreewidth (Lemma 43).
    pub nice: NiceTreeDecomposition,
    /// The fractional hypertreewidth achieved by `nice`.
    pub fhw: f64,
    /// The associated structure `A(ϕ)` (Definition 18).
    pub a_structure: Structure,
    /// The automaton tree shape mirroring the decomposition tree. Query-side
    /// (a pure function of `nice`), so it is built once here instead of per
    /// evaluation — `count_batch` reuses it across every database.
    pub shape: TreeShape,
    /// Per-node bags as sorted variable-index lists (query-side, ditto).
    pub bags: Vec<Vec<usize>>,
}

/// The automaton tree shape and per-node sorted bags of a nice tree
/// decomposition (query-side; [`FprasPlan`] caches the result so
/// evaluations never rebuild it).
fn shape_and_bags(nice: &NiceTreeDecomposition) -> (TreeShape, Vec<Vec<usize>>) {
    let td = &nice.td;
    let n_nodes = td.num_nodes();
    let children: Vec<Vec<usize>> = (0..n_nodes).map(|t| td.children(t).to_vec()).collect();
    let shape = TreeShape::new(children, td.root());
    let bags: Vec<Vec<usize>> = (0..n_nodes)
        .map(|t| td.bag(t).iter().copied().collect())
        .collect();
    (shape, bags)
}

/// Query-side planning for the FPRAS of Theorem 16: class check,
/// decomposition search, and construction of `A(ϕ)`.
///
/// Returns a [`PlanError`](crate::PlanError) for queries with disequalities
/// or negations — by Observation 10 no FPRAS exists for those (unless
/// NP = RP); use the FPTRAS path instead.
pub fn plan_fpras(query: &Query) -> Result<FprasPlan, CoreError> {
    plan_fpras_with(query, &Runtime::serial())
}

/// [`plan_fpras`] with the decomposition candidate search fanned out over
/// the given runtime. The chosen decomposition — and hence every estimate
/// computed from the plan — is bit-identical for any thread count (the
/// parallel search keeps the first candidate attaining the minimum width,
/// exactly like the serial one).
pub fn plan_fpras_with(query: &Query, runtime: &Runtime) -> Result<FprasPlan, CoreError> {
    if query.class() != QueryClass::CQ {
        return Err(CoreError::unsupported_query_class(
            "the FPRAS of Theorem 16 applies to CQs without disequalities or negations \
             (Observation 10 rules out an FPRAS for DCQs/ECQs unless NP = RP)",
        ));
    }
    let h = query_hypergraph(query);
    // The decomposition search has no seed of its own; its span ID derives
    // from the enclosing `prepare` span (0 when prepared standalone).
    let _span =
        cqc_obs::trace::Span::enter("decompose", split_seed(cqc_obs::trace::current_span(), 1));
    let (fhw, td) = cqc_hypergraph::fwidth::minimise_width_par(
        &h,
        WidthMeasure::FractionalHypertreewidth,
        runtime,
    );
    let nice = td.into_nice();
    nice.validate_nice().map_err(CoreError::plan_internal)?;
    let (shape, bags) = shape_and_bags(&nice);
    Ok(FprasPlan {
        nice,
        fhw,
        a_structure: build_a_structure(query),
        shape,
        bags,
    })
}

/// Data-side evaluation of a prepared FPRAS plan against one database:
/// per-bag solutions, the Lemma 52 automaton, and #TA counting.
///
/// `plan` must come from [`plan_fpras`] on the same `query`; the pairing
/// is not checked here (use [`crate::Engine::prepare`], which owns it).
pub fn fpras_count_with_plan(
    query: &Query,
    plan: &FprasPlan,
    db: &Structure,
    config: &ApproxConfig,
) -> Result<EstimateReport, CoreError> {
    let runtime = config.runtime();
    let start = Stopwatch::start();
    if !query.compatible_with(db.signature()) {
        return Err(CoreError::incompatible_database(
            "sig(ϕ) is not contained in sig(D)",
        ));
    }

    // Steps 2 + 3 (Section 5.2): per-bag solutions and the Lemma 52 automaton.
    // The tree shape and bags are query-side and come from the plan.
    let (automaton, states) =
        build_automaton_in(query, &plan.a_structure, db, &plan.nice, &plan.bags)?;
    let tree_nodes = plan.shape.num_nodes();
    let build_wall = start.elapsed();

    // Step 4: count the accepted labellings of the fixed shape.
    // The exact subset-DP is used when the state space is small; otherwise the
    // sampling-based counter (Lemma 51 / ACJR) takes over, fanned out over
    // the runtime with per-(node, state) seed-split RNG streams — the
    // estimate is bit-identical for any thread count.
    let count_start = Stopwatch::start();
    let (estimate, exact) = if states <= config.fpras_exact_state_budget {
        (
            count_labelings_fixed_shape(&automaton, &plan.shape) as f64,
            true,
        )
    } else {
        let ta_config = TaApproxConfig::new(config.epsilon, config.delta);
        (
            approx_count_fixed_shape_seeded(
                &automaton,
                &plan.shape,
                &ta_config,
                split_seed(config.seed, 0x51CE),
                &runtime,
            ),
            false,
        )
    };
    let count_wall = count_start.elapsed();

    let mut report = if exact {
        EstimateReport::exact_value(estimate, CountMethod::Fpras)
    } else {
        EstimateReport::approximate(estimate, CountMethod::Fpras, config.epsilon, config.delta)
    };
    report.telemetry = Telemetry {
        automaton_states: states,
        tree_nodes,
        fhw: Some(plan.fhw),
        wall: start.elapsed(),
        threads_used: runtime.threads(),
        phase_walls: vec![("build_automaton", build_wall), ("count", count_wall)],
        ..Telemetry::default()
    };
    Ok(report)
}

/// The Lemma 52 construction: the tree automaton, its fixed shape, and
/// book-keeping sizes.
pub struct Lemma52Automaton {
    /// The constructed automaton.
    pub automaton: TreeAutomaton,
    /// The (fixed) tree shape mirroring the nice tree decomposition.
    pub shape: TreeShape,
    /// Number of states.
    pub states: usize,
}

/// One-shot FPRAS of Theorem 16 on a CQ: plan, then evaluate.
///
/// Legacy wrapper over [`plan_fpras`] + [`fpras_count_with_plan`] — when
/// counting against many databases, prefer [`crate::Engine::prepare`] so the
/// decomposition search is paid once.
pub fn fpras_count(
    query: &Query,
    db: &Structure,
    config: &ApproxConfig,
) -> Result<FprasReport, CoreError> {
    config.validate()?;
    let plan = plan_fpras(query)?;
    let r = fpras_count_with_plan(query, &plan, db, config)?;
    Ok(FprasReport {
        estimate: r.estimate,
        exact: r.exact,
        fhw: plan.fhw,
        tree_nodes: r.telemetry.tree_nodes,
        states: r.telemetry.automaton_states,
    })
}

/// Build the tree automaton of Lemma 52 for `(ϕ, D)` over the given nice tree
/// decomposition of `H(ϕ)`.
pub fn build_lemma52_automaton(
    query: &Query,
    db: &Structure,
    nice: &NiceTreeDecomposition,
) -> Result<Lemma52Automaton, CoreError> {
    let a_structure = build_a_structure(query);
    build_lemma52_automaton_with(query, &a_structure, db, nice)
}

/// [`build_lemma52_automaton`] with a pre-built `A(ϕ)` (the prepared-plan
/// hot path: `A(ϕ)` is query-side and cached in [`FprasPlan`]).
pub fn build_lemma52_automaton_with(
    query: &Query,
    a_structure: &Structure,
    db: &Structure,
    nice: &NiceTreeDecomposition,
) -> Result<Lemma52Automaton, CoreError> {
    let (shape, bags) = shape_and_bags(nice);
    let (automaton, states) = build_automaton_in(query, a_structure, db, nice, &bags)?;
    Ok(Lemma52Automaton {
        automaton,
        shape,
        states,
    })
}

/// The data-side core of the Lemma 52 construction, with the query-side
/// parts (`A(ϕ)`, the bags) supplied by the caller — [`FprasPlan`] caches
/// them so repeated evaluations (and `count_batch`) do not rebuild them.
fn build_automaton_in(
    query: &Query,
    a_structure: &Structure,
    db: &Structure,
    nice: &NiceTreeDecomposition,
    bags: &[Vec<usize>],
) -> Result<(TreeAutomaton, usize), CoreError> {
    let b_structure = build_b_structure(query, db).map_err(CoreError::incompatible_database)?;
    let td = &nice.td;
    let n_nodes = td.num_nodes();

    // Per-node solution relations Sol(ϕ, D, B_t) (Definition 47, Lemma 48).
    let sols: Vec<Vec<Vec<Val>>> = bags
        .iter()
        .map(|bag| bag_partial_solutions(a_structure, &b_structure, bag))
        .collect();

    // If the root (empty bag) has no solution, there are no answers at all:
    // represent this with a trivially empty automaton.
    if sols[td.root()].is_empty() {
        return Ok((TreeAutomaton::new(1, 1, 0), 1));
    }

    // States: (t, α); labels: (t, proj(α, free(ϕ))).
    let mut state_id: HashMap<(usize, Vec<Val>), usize> = HashMap::new();
    for (t, sol) in sols.iter().enumerate() {
        for alpha in sol {
            let id = state_id.len();
            state_id.entry((t, alpha.clone())).or_insert(id);
        }
    }
    let free: Vec<Var> = query.free_vars().to_vec();
    let project_free = |t: usize, alpha: &[Val]| -> Vec<Val> {
        bags[t]
            .iter()
            .zip(alpha)
            .filter(|(v, _)| free.contains(&Var(**v as u32)))
            .map(|(_, val)| *val)
            .collect()
    };
    let mut label_id: HashMap<(usize, Vec<Val>), usize> = HashMap::new();
    for (t, sol) in sols.iter().enumerate() {
        for alpha in sol {
            let lbl = (t, project_free(t, alpha));
            let id = label_id.len();
            label_id.entry(lbl).or_insert(id);
        }
    }

    let root_state = state_id[&(td.root(), vec![])];
    let mut automaton = TreeAutomaton::new(state_id.len(), label_id.len().max(1), root_state);

    // Helper: restriction of α (over bag of t) to the bag of another node.
    let restrict = |from: usize, alpha: &[Val], to_bag: &[usize]| -> Vec<Val> {
        to_bag
            .iter()
            .map(|v| {
                let pos = bags[from]
                    .iter()
                    .position(|x| x == v)
                    .expect("restriction target is a subset");
                alpha[pos]
            })
            .collect()
    };
    // Helper: are α (over bag of t) and α₁ (over bag of t1) consistent?
    let consistent = |t: usize, alpha: &[Val], t1: usize, alpha1: &[Val]| -> bool {
        bags[t]
            .iter()
            .zip(alpha)
            .all(|(v, val)| match bags[t1].iter().position(|x| x == v) {
                Some(p) => alpha1[p] == *val,
                None => true,
            })
    };

    for t in 0..n_nodes {
        let ch = td.children(t);
        for alpha in &sols[t] {
            let q = state_id[&(t, alpha.clone())];
            let lbl = label_id[&(t, project_free(t, alpha))];
            match ch.len() {
                0 => {
                    // leaf: empty bag, empty assignment
                    automaton.add_transition(q, lbl, TransitionTarget::Leaf);
                }
                1 => {
                    let c = ch[0];
                    if bags[c].iter().all(|v| bags[t].contains(v)) && bags[t].len() > bags[c].len()
                    {
                        // B_c ⊆ B_t, drop one variable: deterministic restriction
                        let beta = restrict(t, alpha, &bags[c]);
                        if let Some(&qc) = state_id.get(&(c, beta)) {
                            automaton.add_transition(q, lbl, TransitionTarget::Unary(qc));
                        }
                    } else {
                        // B_t ⊆ B_c, child introduces one variable: one
                        // transition per consistent child solution
                        for alpha1 in &sols[c] {
                            if consistent(t, alpha, c, alpha1) {
                                let qc = state_id[&(c, alpha1.clone())];
                                automaton.add_transition(q, lbl, TransitionTarget::Unary(qc));
                            }
                        }
                    }
                }
                _ => {
                    // join node: both children share the bag and the solution
                    let c1 = ch[0];
                    let c2 = ch[1];
                    if let (Some(&q1), Some(&q2)) = (
                        state_id.get(&(c1, alpha.clone())),
                        state_id.get(&(c2, alpha.clone())),
                    ) {
                        automaton.add_transition(q, lbl, TransitionTarget::Binary(q1, q2));
                    }
                }
            }
        }
    }

    let states = state_id.len();
    Ok((automaton, states))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ApproxConfig;
    use cqc_data::StructureBuilder;
    use cqc_query::{count_answers_via_solutions, parse_query};

    fn config(eps: f64, delta: f64, seed: u64) -> ApproxConfig {
        ApproxConfig {
            epsilon: eps,
            delta,
            seed,
            ..ApproxConfig::default()
        }
    }

    fn path_graph(n: usize) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("E", 2);
        for i in 0..n - 1 {
            b.fact("E", &[i as u32, (i + 1) as u32]).unwrap();
        }
        b.build()
    }

    fn random_graph(n: usize, seed: u64, m: usize) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("E", 2);
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..m {
            let u = (next() % n as u64) as u32;
            let v = (next() % n as u64) as u32;
            b.fact("E", &[u, v]).unwrap();
        }
        b.build()
    }

    #[test]
    fn exact_regime_matches_ground_truth() {
        // path query with an existential middle variable
        let q = parse_query("ans(x, y) :- E(x, z), E(z, y)").unwrap();
        for db in [path_graph(6), random_graph(8, 3, 14)] {
            let truth = count_answers_via_solutions(&q, &db) as f64;
            let r = fpras_count(&q, &db, &config(0.2, 0.05, 1)).unwrap();
            assert!(r.exact);
            assert_eq!(r.estimate, truth, "db answers {truth}");
            assert!(r.fhw <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn footnote_4_star_query_exact() {
        // ∃y E(y, x1) ∧ E(y, x2): decision easy, exact counting hard in
        // general — the FPRAS handles it.
        let q = parse_query("ans(x1, x2) :- E(y, x1), E(y, x2)").unwrap();
        for db in [path_graph(7), random_graph(9, 5, 18)] {
            let truth = count_answers_via_solutions(&q, &db) as f64;
            let r = fpras_count(&q, &db, &config(0.2, 0.05, 2)).unwrap();
            assert!(r.exact);
            assert_eq!(r.estimate, truth);
        }
    }

    #[test]
    fn approximate_regime_is_close() {
        // force the sampling path by shrinking the exact-state budget
        let q = parse_query("ans(x1, x2) :- E(y, x1), E(y, x2)").unwrap();
        let db = random_graph(12, 7, 40);
        let truth = count_answers_via_solutions(&q, &db) as f64;
        let mut cfg = config(0.2, 0.05, 3);
        cfg.fpras_exact_state_budget = 0;
        let r = fpras_count(&q, &db, &cfg).unwrap();
        assert!(!r.exact);
        assert!(
            (r.estimate - truth).abs() <= 0.3 * truth.max(1.0),
            "estimate {} vs truth {}",
            r.estimate,
            truth
        );
    }

    #[test]
    fn triangle_query_with_existential_apex() {
        let q = parse_query("ans(x, y) :- E(x, y), E(y, z), E(x, z)").unwrap();
        let mut b = StructureBuilder::new(5);
        b.relation("E", 2);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3), (1, 3), (3, 4)] {
            b.fact("E", &[u, v]).unwrap();
        }
        let db = b.build();
        let truth = count_answers_via_solutions(&q, &db) as f64;
        let r = fpras_count(&q, &db, &config(0.25, 0.1, 4)).unwrap();
        assert_eq!(r.estimate, truth);
    }

    #[test]
    fn no_answers_gives_zero() {
        let q = parse_query("ans(x) :- E(x, y), E(y, x)").unwrap();
        let db = path_graph(5); // no 2-cycles
        let r = fpras_count(&q, &db, &config(0.3, 0.1, 5)).unwrap();
        assert_eq!(r.estimate, 0.0);
    }

    #[test]
    fn dcq_is_rejected() {
        let q = parse_query("ans(x) :- E(x, y), E(x, z), y != z").unwrap();
        let db = path_graph(4);
        assert!(matches!(
            fpras_count(&q, &db, &config(0.3, 0.1, 6)),
            Err(CoreError::Plan(crate::PlanError::UnsupportedQueryClass(_)))
        ));
    }

    #[test]
    fn boolean_cq() {
        let q = parse_query("ans() :- E(x, y), E(y, z)").unwrap();
        let r = fpras_count(&q, &path_graph(4), &config(0.3, 0.1, 7)).unwrap();
        assert_eq!(r.estimate, 1.0);
        let r = fpras_count(&q, &path_graph(2), &config(0.3, 0.1, 8)).unwrap();
        assert_eq!(r.estimate, 0.0);
    }
}
