//! Counting answers to unions of (extended) conjunctive queries
//! (Section 6, second extension) via the Karp–Luby union estimator.

use crate::api::ApproxConfig;
use crate::error::CoreError;
use crate::fptras::{fptras_count_with_plan, plan_fptras};
use crate::sampling::sample_answers_with_plan;
use cqc_data::Structure;
use cqc_query::{is_answer, Query};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Estimate `|Ans(ϕ₁, D) ∪ … ∪ Ans(ϕ_m, D)|` for queries that share the same
/// number of free variables, using the classic Karp–Luby scheme:
/// estimate each `|Ans(ϕ_i, D)|`, then sample pairs `(i, τ)` with `i`
/// proportional to the estimates and `τ` an answer of `ϕ_i`, and count the
/// fraction of pairs for which `i` is the *first* query having `τ` as an
/// answer (membership is an exact polynomial-time check).
pub fn count_union(
    queries: &[Query],
    db: &Structure,
    trials: usize,
    config: &ApproxConfig,
) -> Result<f64, CoreError> {
    config.validate()?;
    if queries.is_empty() {
        return Ok(0.0);
    }
    let ell = queries[0].num_free_vars();
    if queries.iter().any(|q| q.num_free_vars() != ell) {
        return Err(CoreError::unsupported_query_class(
            "all queries of a union must have the same number of free variables",
        ));
    }
    // Plan each member query once; the plans are reused below by both the
    // per-query estimates and the Karp–Luby answer sampling.
    let plans: Vec<_> = queries.iter().map(|q| plan_fptras(q, config)).collect();
    // Per-query estimates.
    let mut weights = Vec::with_capacity(queries.len());
    for (i, q) in queries.iter().enumerate() {
        let cfg = ApproxConfig {
            seed: config.seed.wrapping_add(i as u64),
            ..config.clone()
        };
        weights.push(fptras_count_with_plan(q, &plans[i], db, &cfg)?.estimate);
    }
    let total: f64 = weights.iter().sum();
    if total == 0.0 {
        return Ok(0.0);
    }
    // Karp–Luby trials. Answer samples are drawn in batches per query to
    // amortise the sampler set-up.
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xCAFE));
    let mut per_query_trials = vec![0usize; queries.len()];
    for _ in 0..trials {
        let mut pick = rng.gen::<f64>() * total;
        let mut idx = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                idx = i;
                break;
            }
            pick -= w;
            idx = i;
        }
        per_query_trials[idx] += 1;
    }
    let mut canonical = 0usize;
    let mut used_trials = 0usize;
    for (i, &t) in per_query_trials.iter().enumerate() {
        if t == 0 {
            continue;
        }
        let cfg = ApproxConfig {
            seed: config.seed.wrapping_add(0xB00 + i as u64),
            ..config.clone()
        };
        let samples = sample_answers_with_plan(&queries[i], &plans[i], db, t, &cfg)?;
        for tau in samples {
            used_trials += 1;
            let first = queries.iter().position(|q| is_answer(q, db, &tau));
            if first == Some(i) {
                canonical += 1;
            }
        }
    }
    if used_trials == 0 {
        return Ok(0.0);
    }
    Ok(total * canonical as f64 / used_trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_data::StructureBuilder;
    use cqc_query::{enumerate_answers, parse_query};
    use std::collections::BTreeSet;

    fn db() -> Structure {
        let mut b = StructureBuilder::new(6);
        b.relation("E", 2);
        b.relation("F", 2);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)] {
            b.fact("E", &[u, v]).unwrap();
        }
        for (u, v) in [(0, 1), (2, 3), (5, 0)] {
            b.fact("F", &[u, v]).unwrap();
        }
        b.build()
    }

    fn exact_union(queries: &[Query], db: &Structure) -> usize {
        let mut all: BTreeSet<Vec<cqc_data::Val>> = BTreeSet::new();
        for q in queries {
            all.extend(enumerate_answers(q, db));
        }
        all.len()
    }

    #[test]
    fn union_of_overlapping_queries() {
        let q1 = parse_query("ans(x, y) :- E(x, y)").unwrap();
        let q2 = parse_query("ans(x, y) :- F(x, y)").unwrap();
        let queries = vec![q1, q2];
        let db = db();
        let truth = exact_union(&queries, &db) as f64; // E ∪ F with overlap (0,1),(2,3)
        let cfg = ApproxConfig::new(0.2, 0.05).with_seed(21);
        let est = count_union(&queries, &db, 400, &cfg).unwrap();
        assert!(
            (est - truth).abs() <= 0.25 * truth,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn union_with_existential_variables() {
        let q1 = parse_query("ans(x, y) :- E(x, z), E(z, y)").unwrap();
        let q2 = parse_query("ans(x, y) :- E(x, y)").unwrap();
        let queries = vec![q1, q2];
        let db = db();
        let truth = exact_union(&queries, &db) as f64;
        let cfg = ApproxConfig::new(0.2, 0.05).with_seed(22);
        let est = count_union(&queries, &db, 400, &cfg).unwrap();
        assert!(
            (est - truth).abs() <= 0.25 * truth,
            "estimate {est} vs truth {truth}"
        );
    }

    #[test]
    fn union_edge_cases() {
        let db = db();
        let cfg = ApproxConfig::new(0.3, 0.1).with_seed(23);
        assert_eq!(count_union(&[], &db, 10, &cfg).unwrap(), 0.0);
        // empty answer sets
        let q = parse_query("ans(x) :- E(x, x)").unwrap();
        assert_eq!(count_union(&[q], &db, 10, &cfg).unwrap(), 0.0);
        // mismatched arities rejected
        let q1 = parse_query("ans(x) :- E(x, y)").unwrap();
        let q2 = parse_query("ans(x, y) :- E(x, y)").unwrap();
        assert!(count_union(&[q1, q2], &db, 10, &cfg).is_err());
    }
}
