//! The `Engine` / `PreparedQuery` API: plan once, count many.
//!
//! The paper separates expensive *query-side* analysis — class dispatch
//! (Figure 1), the fractional-hypertreewidth decomposition search
//! (Lemma 43), the tree-automaton skeleton of Lemma 52, and the
//! colour-coding repetition budget of Lemma 22 — from *data-side*
//! evaluation, whose cost depends on the database. This module exposes that
//! separation: an [`Engine`] holds the accuracy configuration and backend
//! policy, [`Engine::prepare`] performs all query-side work once, and the
//! resulting [`PreparedQuery`] evaluates against any number of databases
//! via [`PreparedQuery::count`], [`PreparedQuery::count_batch`] and
//! [`PreparedQuery::sample`].
//!
//! ```
//! use cqc_core::{Engine, EstimateReport};
//! use cqc_data::StructureBuilder;
//! use cqc_query::parse_query;
//!
//! let engine = Engine::builder().accuracy(0.25, 0.05).seed(7).build().unwrap();
//! let query = parse_query("ans(x) :- E(x, y), E(x, z), y != z").unwrap();
//! let prepared = engine.prepare(&query).unwrap();
//!
//! let mut b = StructureBuilder::new(3);
//! b.relation("E", 2);
//! b.fact("E", &[0, 1]).unwrap();
//! b.fact("E", &[0, 2]).unwrap();
//! let db = b.build();
//!
//! let report: EstimateReport = prepared.count(&db).unwrap();
//! assert_eq!(report.estimate, 1.0); // only element 0 has two distinct friends
//! ```

use crate::api::{exact_count_answers, ApproxConfig};
use crate::error::CoreError;
use crate::fpras::{fpras_count_with_plan, plan_fpras_with, FprasPlan};
use crate::fptras::{
    fptras_count_with_plan, fptras_count_with_scratch, plan_fptras, EvalScratch, FptrasPlan,
};
use crate::report::{CountMethod, EstimateReport};
use crate::sampling::sample_answers_with_plan;
use cqc_data::{Structure, Val};
use cqc_obs::{split_seed, Stopwatch};
use cqc_query::{Query, QueryClass};
use std::sync::OnceLock;
use std::time::Duration;

/// Tag index deriving the `prepare` span ID from the engine seed
/// (`split_seed(seed, PREPARE_SPAN_TAG)`); any fixed constant works, it
/// only has to be stable across runs.
const PREPARE_SPAN_TAG: u64 = 0x5052_4550; // "PREP"

/// Which counting backend an [`Engine`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Dispatch on the query class along Figure 1 of the paper: plain CQs →
    /// FPRAS (Theorem 16), DCQs/ECQs → FPTRAS (Theorems 5/13).
    #[default]
    Auto,
    /// Force the FPRAS of Theorem 16 (fails to prepare for DCQs/ECQs —
    /// Observation 10 rules an FPRAS out unless NP = RP).
    Fpras,
    /// Force the FPTRAS of Theorems 5 / 13 (works for every query class).
    Fptras,
    /// Exact counting via solution enumeration (the baseline `cqc exact`
    /// uses; exponential in the query size in the worst case).
    Exact,
}

/// The method [`Backend::Auto`] selects for a query class — the Figure 1
/// dispatch, shared by [`Engine::prepare`] and diagnostic frontends (e.g.
/// `cqc classify`) so the policy lives in exactly one place.
pub fn auto_method(class: QueryClass) -> CountMethod {
    match class {
        QueryClass::CQ => CountMethod::Fpras,
        QueryClass::DCQ | QueryClass::ECQ => CountMethod::Fptras,
    }
}

/// Builder for [`Engine`]: accuracy, seed, budgets, backend selection.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    config: ApproxConfig,
    backend: Backend,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            config: ApproxConfig::default(),
            backend: Backend::Auto,
        }
    }
}

impl EngineBuilder {
    /// Start from the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start from an existing [`ApproxConfig`].
    pub fn from_config(config: ApproxConfig) -> Self {
        EngineBuilder {
            config,
            backend: Backend::Auto,
        }
    }

    /// Set the accuracy parameters: relative error `ε` and failure
    /// probability `δ` (both in `(0, 1)`; validated by [`build`]).
    ///
    /// [`build`]: EngineBuilder::build
    pub fn accuracy(mut self, epsilon: f64, delta: f64) -> Self {
        self.config.epsilon = epsilon;
        self.config.delta = delta;
        self
    }

    /// Set the RNG seed; every evaluation is deterministic given the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Override the colour-coding repetition budget `Q` per `EdgeFree`
    /// oracle call (default: derived from `δ` and `|Δ(ϕ)|`).
    pub fn colour_repetitions(mut self, repetitions: usize) -> Self {
        self.config.colour_repetitions = Some(repetitions);
        self
    }

    /// Set the automaton-state budget below which the FPRAS counts the
    /// fixed shape exactly instead of sampling.
    pub fn exact_state_budget(mut self, states: usize) -> Self {
        self.config.fpras_exact_state_budget = states;
        self
    }

    /// Select the counting backend (default [`Backend::Auto`]).
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Set the number of worker threads for the parallel runtime
    /// (`0` = automatic: the `COUNTING_THREADS` environment variable, else
    /// `std::thread::available_parallelism()`). Estimates are bit-identical
    /// for any thread count — the runtime derives every RNG stream from
    /// `(seed, work-item index)`, never from scheduling order.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Dispatch the parallel runtime on the given persistent worker pool
    /// instead of the process-wide one (sized by `COUNTING_POOL_WORKERS`).
    /// The pool — like the thread count — never affects estimates, only
    /// wall times; mainly useful for tests and embedders that want
    /// isolated pool sizing.
    pub fn worker_pool(mut self, pool: &'static cqc_runtime::pool::Pool) -> Self {
        self.config.worker_pool = Some(pool);
        self
    }

    /// Validate the configuration and build the engine.
    pub fn build(self) -> Result<Engine, CoreError> {
        self.config.validate()?;
        Ok(Engine {
            config: self.config,
            backend: self.backend,
        })
    }
}

/// The counting engine: accuracy configuration plus backend policy.
///
/// Cheap to construct and clone; the expensive per-query analysis lives in
/// [`PreparedQuery`], obtained from [`Engine::prepare`].
#[derive(Debug, Clone)]
pub struct Engine {
    config: ApproxConfig,
    backend: Backend,
}

impl Default for Engine {
    fn default() -> Self {
        Engine {
            config: ApproxConfig::default(),
            backend: Backend::Auto,
        }
    }
}

impl Engine {
    /// An engine with the default configuration (`ε = 0.25`, `δ = 0.05`,
    /// automatic Figure 1 dispatch).
    pub fn new() -> Self {
        Self::default()
    }

    /// Start building a customised engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Wrap an existing [`ApproxConfig`] (automatic dispatch).
    pub fn from_config(config: ApproxConfig) -> Self {
        Engine {
            config,
            backend: Backend::Auto,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ApproxConfig {
        &self.config
    }

    /// The engine's backend policy.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Perform all query-side analysis for `query` once: classify it
    /// (Figure 1), and — depending on the backend — search for a fractional
    /// hypertree decomposition and build the Lemma 52 automaton skeleton
    /// (FPRAS), or build the colour-coding oracle skeleton `Â(ϕ)` and fix
    /// the repetition budget (FPTRAS). The returned [`PreparedQuery`]
    /// amortises this work across any number of databases.
    pub fn prepare(&self, query: &Query) -> Result<PreparedQuery, CoreError> {
        // `Engine::new` / `Engine::from_config` skip the builder, so the
        // accuracy guard lives here too: planning is the first fallible step.
        self.config.validate()?;
        let started = Stopwatch::start();
        let _span =
            cqc_obs::trace::Span::enter("prepare", split_seed(self.config.seed, PREPARE_SPAN_TAG));
        let class = query.class();
        // The decomposition candidate search parallelises too; the chosen
        // plan is bit-identical for any thread count. Plans never consume
        // the seed — `PreparedQuery::count_with_seed` relies on that.
        let runtime = self.config.runtime();
        let plan = match self.backend {
            Backend::Auto => match auto_method(class) {
                CountMethod::Fpras => Plan::Fpras {
                    count: Box::new(plan_fpras_with(query, &runtime)?),
                    sample: OnceLock::new(),
                },
                CountMethod::Fptras | CountMethod::Exact => {
                    Plan::Fptras(plan_fptras(query, &self.config))
                }
            },
            Backend::Fpras => Plan::Fpras {
                count: Box::new(plan_fpras_with(query, &runtime)?),
                sample: OnceLock::new(),
            },
            Backend::Fptras => Plan::Fptras(plan_fptras(query, &self.config)),
            Backend::Exact => Plan::Exact {
                sample: OnceLock::new(),
            },
        };
        Ok(PreparedQuery {
            query: query.clone(),
            class,
            config: self.config.clone(),
            plan,
            planning_time: started.elapsed(),
        })
    }
}

/// The cached query-side plan inside a [`PreparedQuery`].
///
/// The FPRAS and exact backends still need the colour-coding oracle
/// skeleton to serve [`PreparedQuery::sample`]; it is built lazily on the
/// first `sample` call and cached thereafter.
enum Plan {
    /// FPRAS counting plan, plus the lazily built sampling plan.
    Fpras {
        count: Box<FprasPlan>,
        sample: OnceLock<FptrasPlan>,
    },
    /// FPTRAS counting plan (doubles as the sampling plan).
    Fptras(FptrasPlan),
    /// Exact brute force; the lazily built oracle skeleton backs `sample`.
    Exact { sample: OnceLock<FptrasPlan> },
}

/// Summary of what [`Engine::prepare`] computed, for logging and the CLI.
#[derive(Debug, Clone)]
pub struct PlanSummary {
    /// The method [`PreparedQuery::count`] will use.
    pub method: CountMethod,
    /// The query class (Figure 1 column).
    pub class: QueryClass,
    /// Fractional hypertreewidth of the cached decomposition (FPRAS plans).
    pub fhw: Option<f64>,
    /// Treewidth of `H(ϕ)` when it was cheap to compute (FPTRAS plans).
    pub query_treewidth: Option<usize>,
    /// Colour-coding repetitions per oracle call (FPTRAS plans).
    pub colour_repetitions: Option<usize>,
    /// Wall-clock time spent planning.
    pub planning_time: Duration,
}

/// A query with all query-side analysis done: classify + decompose +
/// automaton skeleton + oracle/repetition plan. Evaluate it against any
/// number of databases with [`count`], [`count_batch`] and [`sample`] —
/// none of which repeat the planning work.
///
/// [`count`]: PreparedQuery::count
/// [`count_batch`]: PreparedQuery::count_batch
/// [`sample`]: PreparedQuery::sample
pub struct PreparedQuery {
    query: Query,
    class: QueryClass,
    config: ApproxConfig,
    plan: Plan,
    planning_time: Duration,
}

impl PreparedQuery {
    /// The underlying query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// The query class (Figure 1 column).
    pub fn class(&self) -> QueryClass {
        self.class
    }

    /// The method [`count`](PreparedQuery::count) will use.
    pub fn method(&self) -> CountMethod {
        match &self.plan {
            Plan::Fpras { .. } => CountMethod::Fpras,
            Plan::Fptras(_) => CountMethod::Fptras,
            Plan::Exact { .. } => CountMethod::Exact,
        }
    }

    /// The configuration the plan was prepared under.
    pub fn config(&self) -> &ApproxConfig {
        &self.config
    }

    /// What planning computed and how long it took.
    pub fn plan_summary(&self) -> PlanSummary {
        let (fhw, query_treewidth, colour_repetitions) = match &self.plan {
            Plan::Fpras { count, .. } => (Some(count.fhw), None, None),
            Plan::Fptras(p) => (None, p.query_treewidth(&self.query), Some(p.repetitions)),
            Plan::Exact { .. } => (None, None, None),
        };
        PlanSummary {
            method: self.method(),
            class: self.class,
            fhw,
            query_treewidth,
            colour_repetitions,
            planning_time: self.planning_time,
        }
    }

    /// Estimate `|Ans(ϕ, D)|` against one database, reusing the cached
    /// plan. Deterministic given the engine seed: repeated calls (and the
    /// legacy one-shot API with the same configuration) return bit-identical
    /// estimates.
    pub fn count(&self, db: &Structure) -> Result<EstimateReport, CoreError> {
        self.count_with_config(db, &self.config)
    }

    /// [`count`](PreparedQuery::count) with the engine seed replaced by
    /// `seed` for this one evaluation, reusing the cached plan.
    ///
    /// Plans are **seed-independent** (class dispatch, the decomposition
    /// search and the oracle skeleton never consume randomness), so
    /// `count_with_seed(db, engine_seed)` is bit-identical to `count(db)`,
    /// and evaluations under different seeds still share all query-side
    /// work. This is the primitive the sharded serving front end
    /// (`cqc-serve`) builds on: work item `i` of a request is always
    /// evaluated under `split_seed(request_seed, i)`, so any partition of
    /// the items across shards merges back — in shard-index order — to
    /// exactly the single-node answer.
    pub fn count_with_seed(&self, db: &Structure, seed: u64) -> Result<EstimateReport, CoreError> {
        if seed == self.config.seed {
            return self.count(db);
        }
        let mut config = self.config.clone();
        config.seed = seed;
        self.count_with_config(db, &config)
    }

    fn count_with_config(
        &self,
        db: &Structure,
        config: &ApproxConfig,
    ) -> Result<EstimateReport, CoreError> {
        match &self.plan {
            Plan::Fpras { count, .. } => fpras_count_with_plan(&self.query, count, db, config),
            Plan::Fptras(plan) => fptras_count_with_plan(&self.query, plan, db, config),
            Plan::Exact { .. } => {
                let started = Stopwatch::start();
                if !self.query.compatible_with(db.signature()) {
                    return Err(CoreError::incompatible_database(
                        "sig(ϕ) is not contained in sig(D)",
                    ));
                }
                let mut report = EstimateReport::exact_value(
                    exact_count_answers(&self.query, db) as f64,
                    CountMethod::Exact,
                );
                report.telemetry.wall = started.elapsed();
                Ok(report)
            }
        }
    }

    /// Evaluate against many databases with one cached plan (the amortised
    /// hot path), fanned out over the engine's parallel runtime.
    ///
    /// Deterministic: the *estimates* are bit-identical to
    /// `dbs.iter().map(|db| self.count(db))` for any thread count, because
    /// database `i`'s estimate depends only on the plan, the seed and
    /// `dbs[i]` — deliberately **not** on its batch position. The flip side
    /// of that contract is that all databases share the engine's seed, so
    /// estimation errors across a batch of near-identical snapshots are
    /// correlated; callers that want independent errors (e.g. to average
    /// across snapshots) should vary the engine seed, not rely on batch
    /// position. Each worker thread owns one [`EvalScratch`] that it reuses
    /// across all the databases it evaluates, dropping the per-database
    /// allocations the serial loop used to pay (see the invariant on
    /// [`EvalScratch`]). Telemetry may differ from the serial loop:
    /// `threads_used` records this batch's worker count, and `hom_calls`
    /// can vary with scheduling (early-exit colour rounds evaluate a
    /// scheduling-dependent number of speculative repetitions). Returns
    /// the error of the first failing database (by index) if any fail.
    pub fn count_batch(&self, dbs: &[Structure]) -> Result<Vec<EstimateReport>, CoreError> {
        let runtime = self.config.runtime();
        match &self.plan {
            // The FPTRAS path parallelises *across* databases first; any
            // worker threads the batch cannot use (fewer databases than
            // threads) are handed to the inner per-evaluation runtime so a
            // 2-database batch on an 8-thread engine still runs the colour
            // rounds 4-wide instead of stranding 6 workers.
            Plan::Fptras(plan) => {
                let chunk = dbs.len().div_ceil(runtime.threads()).max(1);
                let chunks: Vec<&[Structure]> = dbs.chunks(chunk).collect();
                let inner = runtime.with_threads((runtime.threads() / chunks.len().max(1)).max(1));
                let per_chunk: Vec<Vec<Result<EstimateReport, CoreError>>> =
                    runtime.par_map(&chunks, |_, chunk| {
                        // per-thread scratch, reused across this worker's databases
                        let mut scratch = EvalScratch::new();
                        chunk
                            .iter()
                            .map(|db| {
                                fptras_count_with_scratch(
                                    &self.query,
                                    plan,
                                    db,
                                    &self.config,
                                    inner,
                                    &mut scratch,
                                )
                                .map(|mut report| {
                                    // the evaluation itself ran serially, but
                                    // the batch ran on this many workers
                                    report.telemetry.threads_used = runtime.threads();
                                    report
                                })
                            })
                            .collect()
                    });
                per_chunk.into_iter().flatten().collect()
            }
            // The FPRAS and exact paths parallelise inside each evaluation
            // (sampling counter / decomposition reuse), so the batch loop
            // stays serial here and delegates.
            _ => dbs.iter().map(|db| self.count(db)).collect(),
        }
    }

    /// Draw `count` (approximately) uniform answers of `(ϕ, D)`
    /// (Section 6), reusing the cached oracle skeleton. Returns fewer than
    /// `count` tuples only when the query has no answers at all.
    pub fn sample(&self, db: &Structure, count: usize) -> Result<Vec<Vec<Val>>, CoreError> {
        let plan = match &self.plan {
            Plan::Fpras { sample, .. } | Plan::Exact { sample } => {
                sample.get_or_init(|| plan_fptras(&self.query, &self.config))
            }
            Plan::Fptras(plan) => plan,
        };
        sample_answers_with_plan(&self.query, plan, db, count, &self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::approx_count_answers;
    use crate::{fpras_count, fptras_count, sample_answers, PlanError};
    use cqc_data::StructureBuilder;
    use cqc_query::parse_query;

    fn graph(n: usize, edges: &[(u32, u32)]) -> Structure {
        let mut b = StructureBuilder::new(n);
        b.relation("E", 2);
        for &(u, v) in edges {
            b.fact("E", &[u, v]).unwrap();
        }
        b.build()
    }

    fn three_dbs() -> Vec<Structure> {
        vec![
            graph(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
            graph(6, &[(0, 1), (0, 2), (1, 3), (3, 0), (3, 5), (4, 2)]),
            graph(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (0, 2)]),
        ]
    }

    #[test]
    fn builder_validates_accuracy() {
        assert!(Engine::builder().accuracy(0.0, 0.05).build().is_err());
        assert!(Engine::builder().accuracy(0.2, 1.0).build().is_err());
        let err = Engine::builder().accuracy(1.5, 0.05).build().unwrap_err();
        assert!(matches!(err, CoreError::Plan(PlanError::InvalidConfig(_))));
        let engine = Engine::builder()
            .accuracy(0.2, 0.05)
            .seed(3)
            .colour_repetitions(12)
            .exact_state_budget(100)
            .backend(Backend::Fptras)
            .build()
            .unwrap();
        assert_eq!(engine.config().seed, 3);
        assert_eq!(engine.backend(), Backend::Fptras);
    }

    #[test]
    fn prepared_count_matches_one_shot_bit_for_bit() {
        let engine = Engine::builder()
            .accuracy(0.25, 0.05)
            .seed(11)
            .build()
            .unwrap();
        let cfg = engine.config().clone();
        for text in [
            "ans(x, y) :- E(x, z), E(z, y)",      // CQ → FPRAS
            "ans(x) :- E(x, y), E(x, z), y != z", // DCQ → FPTRAS
            "ans(x, y) :- E(x, y), !E(y, x)",     // ECQ → FPTRAS
        ] {
            let q = parse_query(text).unwrap();
            let prepared = engine.prepare(&q).unwrap();
            for db in three_dbs() {
                let r = prepared.count(&db).unwrap();
                let one_shot = approx_count_answers(&q, &db, &cfg).unwrap();
                assert_eq!(r.estimate, one_shot.estimate, "{text}");
                assert_eq!(r.method, one_shot.method, "{text}");
                // and against the raw legacy entry points
                match r.method {
                    CountMethod::Fpras => {
                        assert_eq!(r.estimate, fpras_count(&q, &db, &cfg).unwrap().estimate)
                    }
                    CountMethod::Fptras => {
                        assert_eq!(r.estimate, fptras_count(&q, &db, &cfg).unwrap().estimate)
                    }
                    CountMethod::Exact => {}
                }
            }
        }
    }

    #[test]
    fn count_batch_equals_individual_counts() {
        let engine = Engine::builder()
            .accuracy(0.3, 0.1)
            .seed(5)
            .build()
            .unwrap();
        let q = parse_query("ans(x) :- E(x, y), E(x, z), y != z").unwrap();
        let prepared = engine.prepare(&q).unwrap();
        let dbs = three_dbs();
        let batch = prepared.count_batch(&dbs).unwrap();
        assert_eq!(batch.len(), dbs.len());
        for (db, r) in dbs.iter().zip(&batch) {
            assert_eq!(r.estimate, prepared.count(db).unwrap().estimate);
        }
    }

    #[test]
    fn prepared_sampling_matches_one_shot() {
        let engine = Engine::builder()
            .accuracy(0.3, 0.05)
            .seed(9)
            .build()
            .unwrap();
        let cfg = engine.config().clone();
        let q = parse_query("ans(x) :- E(x, y), E(x, z), y != z").unwrap();
        let prepared = engine.prepare(&q).unwrap();
        for db in three_dbs() {
            let a = prepared.sample(&db, 8).unwrap();
            let b = sample_answers(&q, &db, 8, &cfg).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn sampling_works_for_cqs_through_the_fpras_plan() {
        let engine = Engine::new();
        let q = parse_query("ans(x, y) :- E(x, z), E(z, y)").unwrap();
        let prepared = engine.prepare(&q).unwrap();
        assert_eq!(prepared.method(), CountMethod::Fpras);
        let db = graph(5, &[(0, 1), (1, 2), (2, 3)]);
        let samples = prepared.sample(&db, 5).unwrap();
        assert!(!samples.is_empty());
        let answers = cqc_query::enumerate_answers(&q, &db);
        for s in samples {
            assert!(answers.contains(&s));
        }
    }

    #[test]
    fn backend_policies_dispatch_as_requested() {
        let q_cq = parse_query("ans(x, y) :- E(x, y)").unwrap();
        let q_dcq = parse_query("ans(x) :- E(x, y), E(x, z), y != z").unwrap();
        let db = graph(4, &[(0, 1), (0, 2), (1, 3)]);

        let forced = Engine::builder().backend(Backend::Fptras).build().unwrap();
        assert_eq!(forced.prepare(&q_cq).unwrap().method(), CountMethod::Fptras);

        let fpras = Engine::builder().backend(Backend::Fpras).build().unwrap();
        assert!(matches!(
            fpras.prepare(&q_dcq),
            Err(CoreError::Plan(PlanError::UnsupportedQueryClass(_)))
        ));

        let exact = Engine::builder().backend(Backend::Exact).build().unwrap();
        let prepared = exact.prepare(&q_dcq).unwrap();
        let r = prepared.count(&db).unwrap();
        assert!(r.exact);
        assert_eq!(r.epsilon, 0.0);
        assert_eq!(r.estimate, 1.0); // only element 0 has two distinct out-neighbours
    }

    #[test]
    fn plan_summary_reflects_the_backend() {
        let q_cq = parse_query("ans(x, y) :- E(x, z), E(z, y)").unwrap();
        let q_dcq = parse_query("ans(x) :- E(x, y), E(x, z), y != z").unwrap();
        let engine = Engine::new();

        let s = engine.prepare(&q_cq).unwrap().plan_summary();
        assert_eq!(s.method, CountMethod::Fpras);
        assert!(s.fhw.is_some());
        assert!(s.colour_repetitions.is_none());

        let s = engine.prepare(&q_dcq).unwrap().plan_summary();
        assert_eq!(s.method, CountMethod::Fptras);
        assert_eq!(s.query_treewidth, Some(1));
        assert!(s.colour_repetitions.unwrap() >= 4);
    }

    #[test]
    fn incompatible_database_is_an_eval_error() {
        let engine = Engine::new();
        let q = parse_query("ans(x) :- Nope(x, y)").unwrap();
        let prepared = engine.prepare(&q).unwrap();
        let db = graph(3, &[(0, 1)]);
        let err = prepared.count(&db).unwrap_err();
        assert!(err.is_eval());
    }
}
