//! # cqc-core — approximately counting answers to conjunctive queries with
//! disequalities and negations
//!
//! The public API of the reproduction of Focke, Goldberg, Roth and Živný,
//! *Approximately Counting Answers to Conjunctive Queries with Disequalities
//! and Negations* (PODS 2022).
//!
//! ## The engine API (plan once, count many)
//!
//! The primary entry point is [`Engine`]: configure accuracy, seed and
//! backend with [`EngineBuilder`], run the expensive query-side analysis
//! once with [`Engine::prepare`], then evaluate the resulting
//! [`PreparedQuery`] against any number of databases:
//!
//! * [`PreparedQuery::count`] — one database, returning the unified
//!   [`EstimateReport`] (estimate, method, guaranteed `(ε, δ)`, telemetry);
//! * [`PreparedQuery::count_batch`] — many databases, one plan;
//! * [`PreparedQuery::sample`] — approximately uniform answers (Section 6).
//!
//! Errors split into query-side [`PlanError`]s and data-side [`EvalError`]s
//! under the [`CoreError`] umbrella.
//!
//! ## Legacy one-shot entry points
//!
//! * [`approx_count_answers`] — dispatching front end: FPRAS (Theorem 16)
//!   for plain CQs, FPTRAS (Theorems 5 / 13) for queries with disequalities
//!   and/or negations. Re-plans the query on every call.
//! * [`fptras_count`] — the FPTRAS of Theorems 5 and 13: the
//!   Dell–Lapinskas–Meeks edge counter driven by a colour-coding `EdgeFree`
//!   oracle simulated through `Hom` queries (Section 3, Lemmas 22 and 30).
//! * [`fpras_count`] — the FPRAS of Theorem 16 for CQs of bounded fractional
//!   hypertreewidth: nice tree decomposition → per-bag solutions (Lemma 48)
//!   → tree automaton (Lemma 52) → #TA counting (Lemma 51).
//! * [`exact_count_answers`] / [`naive_monte_carlo`] — baselines.
//! * [`sample_answers`] — approximately uniform answer sampling (Section 6).
//! * [`count_union`] — Karp–Luby counting for unions of queries (Section 6).
//! * [`count_locally_injective_homomorphisms`] — Corollary 6.
//! * [`hamiltonian_path_query`] — the Observation 10 construction.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod baseline;
pub mod engine;
pub mod error;
pub mod fpras;
pub mod fptras;
pub mod hamiltonian;
pub mod lihom;
pub mod oracle;
pub mod report;
pub mod sampling;
pub mod unions;

pub use api::{approx_count_answers, exact_count_answers, ApproxConfig, CountEstimate};
pub use baseline::{bruteforce_count, naive_monte_carlo};
pub use engine::{auto_method, Backend, Engine, EngineBuilder, PlanSummary, PreparedQuery};
pub use error::{CoreError, EvalError, PlanError};
pub use fpras::{
    fpras_count, fpras_count_with_plan, plan_fpras, plan_fpras_with, FprasPlan, FprasReport,
};
pub use fptras::{
    fptras_count, fptras_count_with_plan, fptras_count_with_scratch, plan_fptras, EvalScratch,
    FptrasPlan, FptrasReport,
};
pub use hamiltonian::{hamiltonian_path_query, undirected_graph_database};
pub use lihom::{count_locally_injective_homomorphisms, locally_injective_query};
pub use oracle::AnswerOracle;
pub use report::{CountMethod, EstimateReport, Telemetry};
pub use sampling::{sample_answers, sample_answers_with_plan};
pub use unions::count_union;
