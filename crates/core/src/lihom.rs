//! Counting locally injective homomorphisms (the application of Corollary 6).
//!
//! A homomorphism `h : G → G'` is locally injective when it is injective on
//! every neighbourhood `N_G(v)`. The paper encodes this as the ECQ
//!
//! ```text
//! ϕ(x₁, …, x_k) = ⋀_{{i,j} ∈ E(G)} E(x_i, x_j)  ∧  ⋀_{(i,j) ∈ cn(G)} x_i ≠ x_j
//! ```
//!
//! where `cn(G)` is the set of pairs of distinct vertices with a common
//! neighbour; answers over `D(G')` are exactly the locally injective
//! homomorphisms. The hypergraph of `ϕ` is `G` itself (the disequalities add
//! no hyperedges), so bounded-treewidth patterns give an FPTRAS
//! (Corollary 6).

use crate::api::ApproxConfig;
use crate::error::CoreError;
use crate::fptras::{fptras_count, FptrasReport};
use cqc_data::{Structure, StructureBuilder};
use cqc_query::{Query, QueryBuilder};
use std::collections::BTreeSet;

/// A simple undirected pattern graph given by its vertex count and edge list.
#[derive(Debug, Clone)]
pub struct PatternGraph {
    /// Number of vertices (vertices are `0..n`).
    pub n: usize,
    /// Undirected edges.
    pub edges: Vec<(usize, usize)>,
}

impl PatternGraph {
    /// A path with `n` vertices.
    pub fn path(n: usize) -> Self {
        PatternGraph {
            n,
            edges: (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect(),
        }
    }

    /// A cycle with `n ≥ 3` vertices.
    pub fn cycle(n: usize) -> Self {
        PatternGraph {
            n,
            edges: (0..n).map(|i| (i, (i + 1) % n)).collect(),
        }
    }

    /// A star with `leaves` leaves (vertex 0 is the centre).
    pub fn star(leaves: usize) -> Self {
        PatternGraph {
            n: leaves + 1,
            edges: (1..=leaves).map(|i| (0, i)).collect(),
        }
    }

    /// The pairs of distinct vertices that share a common neighbour
    /// (`cn(G)` in the paper).
    pub fn common_neighbour_pairs(&self) -> Vec<(usize, usize)> {
        let mut adj = vec![BTreeSet::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u].insert(v);
            adj[v].insert(u);
        }
        let mut out = BTreeSet::new();
        for nbrs in &adj {
            let neigh: Vec<usize> = nbrs.iter().copied().collect();
            for i in 0..neigh.len() {
                for j in (i + 1)..neigh.len() {
                    out.insert((neigh[i].min(neigh[j]), neigh[i].max(neigh[j])));
                }
            }
        }
        out.into_iter().collect()
    }
}

/// Build the ECQ `ϕ(G)` of Corollary 6 for an undirected pattern graph.
/// The signature has a single binary symmetric relation `E`; one atom is
/// emitted per undirected pattern edge (the host database stores both
/// orientations, see [`host_graph_database`]).
pub fn locally_injective_query(pattern: &PatternGraph) -> Query {
    let mut b = QueryBuilder::new();
    let vars: Vec<_> = (0..pattern.n).map(|i| b.var(&format!("x{i}"))).collect();
    b.free(&vars);
    for &(u, v) in &pattern.edges {
        b.atom("E", &[vars[u], vars[v]]);
    }
    for (u, v) in pattern.common_neighbour_pairs() {
        b.disequality(vars[u], vars[v]);
    }
    b.build().expect("locally injective query is well-formed")
}

/// Build the database `D(G')` of Corollary 6 for an undirected host graph:
/// the relation `E` holds both orientations of every edge.
pub fn host_graph_database(n: usize, edges: &[(usize, usize)]) -> Structure {
    let mut b = StructureBuilder::new(n);
    b.relation("E", 2);
    for &(u, v) in edges {
        b.fact("E", &[u as u32, v as u32]).unwrap();
        b.fact("E", &[v as u32, u as u32]).unwrap();
    }
    b.build()
}

/// Approximately count the locally injective homomorphisms from `pattern`
/// into the host graph, using the FPTRAS of Theorem 5 (Corollary 6).
pub fn count_locally_injective_homomorphisms(
    pattern: &PatternGraph,
    host_n: usize,
    host_edges: &[(usize, usize)],
    config: &ApproxConfig,
) -> Result<FptrasReport, CoreError> {
    let query = locally_injective_query(pattern);
    let db = host_graph_database(host_n, host_edges);
    fptras_count(&query, &db, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_query::count_answers_via_solutions;

    #[test]
    fn common_neighbour_pairs_of_a_star() {
        let star = PatternGraph::star(3);
        // all pairs of leaves share the centre
        assert_eq!(star.common_neighbour_pairs(), vec![(1, 2), (1, 3), (2, 3)]);
        let path = PatternGraph::path(3);
        assert_eq!(path.common_neighbour_pairs(), vec![(0, 2)]);
    }

    #[test]
    fn query_encoding_shape() {
        let q = locally_injective_query(&PatternGraph::path(4));
        assert_eq!(q.num_vars(), 4);
        assert_eq!(q.num_free_vars(), 4);
        assert_eq!(q.positive_atoms().count(), 3);
        assert_eq!(q.disequalities().len(), 2); // (0,2) and (1,3)
                                                // hypergraph is the path: treewidth 1
        let h = cqc_query::query_hypergraph(&q);
        assert_eq!(cqc_hypergraph::treewidth::treewidth_exact(&h).0, 1);
    }

    #[test]
    fn exact_counts_on_small_hosts() {
        // locally injective homs from P3 (path on 3 vertices) into a triangle:
        // middle vertex has 2 neighbours which must land on distinct vertices:
        // every injective placement works: 3 · 2 · 1 = 6... plus mappings where
        // the endpoints coincide are forbidden (they share the middle as a
        // common neighbour). Ground truth from the brute-force counter.
        let pattern = PatternGraph::path(3);
        let q = locally_injective_query(&pattern);
        let host = host_graph_database(3, &[(0, 1), (1, 2), (0, 2)]);
        let truth = count_answers_via_solutions(&q, &host);
        assert_eq!(truth, 6);
        let cfg = ApproxConfig::new(0.2, 0.05).with_seed(31);
        let r = count_locally_injective_homomorphisms(&pattern, 3, &[(0, 1), (1, 2), (0, 2)], &cfg)
            .unwrap();
        assert!(
            (r.estimate - truth as f64).abs() <= 0.25 * truth as f64,
            "estimate {} vs truth {}",
            r.estimate,
            truth
        );
    }

    #[test]
    fn star_pattern_counts() {
        // locally injective homs from a 2-leaf star into a path 0-1-2
        // (centre must map to a vertex with ≥ 2 distinct neighbours): centre → 1,
        // leaves → {0, 2} in 2 orders.
        let pattern = PatternGraph::star(2);
        let q = locally_injective_query(&pattern);
        let host = host_graph_database(3, &[(0, 1), (1, 2)]);
        assert_eq!(count_answers_via_solutions(&q, &host), 2);
        let cfg = ApproxConfig::new(0.25, 0.05).with_seed(32);
        let r =
            count_locally_injective_homomorphisms(&pattern, 3, &[(0, 1), (1, 2)], &cfg).unwrap();
        assert!((r.estimate - 2.0).abs() <= 1.0);
    }

    #[test]
    fn cycle_pattern_into_larger_graph() {
        let pattern = PatternGraph::cycle(4);
        let q = locally_injective_query(&pattern);
        let host_edges = [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)];
        let host = host_graph_database(4, &host_edges);
        let truth = count_answers_via_solutions(&q, &host) as f64;
        let cfg = ApproxConfig::new(0.25, 0.05).with_seed(33);
        let r = count_locally_injective_homomorphisms(&pattern, 4, &host_edges, &cfg).unwrap();
        assert!(
            (r.estimate - truth).abs() <= 0.3 * truth.max(1.0),
            "estimate {} vs truth {}",
            r.estimate,
            truth
        );
    }
}
