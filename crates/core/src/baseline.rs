//! Baselines: exact brute force and naive Monte Carlo.
//!
//! These implement the two "obvious" algorithms the paper's machinery is
//! measured against: the `‖D‖^{O(‖ϕ‖)}` brute force of Section 1.1 and the
//! naive sampling estimator whose failure on sparse answer sets motivates the
//! oracle-based framework (ablation A2 in EXPERIMENTS.md).

use cqc_data::{Structure, Val};
use cqc_query::{count_answers_bruteforce, is_answer, Query};
use rand::Rng;

/// The brute-force exact counter (re-exported for the benchmark harness):
/// iterate over all `|U(D)|^ℓ` assignments of the free variables and test
/// extendability.
pub fn bruteforce_count(query: &Query, db: &Structure) -> u64 {
    count_answers_bruteforce(query, db)
}

/// The naive Monte Carlo estimator: sample `samples` uniform assignments of
/// the free variables, test each for being an answer, and scale the hit rate
/// by `|U(D)|^ℓ`.
///
/// Unbiased, but its relative variance is `≈ |U(D)|^ℓ / |Ans(ϕ, D)|`, which is
/// astronomically large exactly when answers are sparse — the regime where
/// the FPTRAS still works. Used in the ablation experiment A2.
pub fn naive_monte_carlo<R: Rng>(
    query: &Query,
    db: &Structure,
    samples: usize,
    rng: &mut R,
) -> f64 {
    let ell = query.num_free_vars();
    let n = db.universe_size();
    if ell == 0 {
        return if is_answer(query, db, &[]) { 1.0 } else { 0.0 };
    }
    if n == 0 || samples == 0 {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut tau = vec![Val(0); ell];
    for _ in 0..samples {
        for t in tau.iter_mut() {
            *t = Val(rng.gen_range(0..n as u32));
        }
        if is_answer(query, db, &tau) {
            hits += 1;
        }
    }
    let space = (n as f64).powi(ell as i32);
    space * hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_data::StructureBuilder;
    use cqc_query::parse_query;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn db() -> Structure {
        let mut b = StructureBuilder::new(6);
        b.relation("E", 2);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)] {
            b.fact("E", &[u, v]).unwrap();
        }
        b.build()
    }

    #[test]
    fn monte_carlo_converges_on_dense_answers() {
        // every edge endpoint pair: 6 answers out of 36 cells
        let q = parse_query("ans(x, y) :- E(x, y)").unwrap();
        let db = db();
        let truth = bruteforce_count(&q, &db) as f64;
        let mut rng = StdRng::seed_from_u64(1);
        let est = naive_monte_carlo(&q, &db, 20_000, &mut rng);
        assert!((est - truth).abs() <= 0.15 * truth);
    }

    #[test]
    fn monte_carlo_misses_sparse_answers_with_few_samples() {
        // Hamiltonian-ish sparse query: very few answers in a large space —
        // with a handful of samples the naive estimator returns 0.
        let q = parse_query(
            "ans(x1, x2, x3, x4) :- E(x1, x2), E(x2, x3), E(x3, x4), \
             x1 != x3, x2 != x4, x1 != x4",
        )
        .unwrap();
        let db = db();
        let truth = bruteforce_count(&q, &db) as f64;
        assert!(truth > 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let est = naive_monte_carlo(&q, &db, 20, &mut rng);
        // 6 answers in 1296 cells: 20 samples almost surely miss them all
        assert_eq!(est, 0.0, "truth was {truth}");
    }

    #[test]
    fn boolean_and_degenerate_cases() {
        let q = parse_query("ans() :- E(x, y)").unwrap();
        let db = db();
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(naive_monte_carlo(&q, &db, 10, &mut rng), 1.0);
        let q2 = parse_query("ans(x) :- E(x, x)").unwrap();
        assert_eq!(naive_monte_carlo(&q2, &db, 0, &mut rng), 0.0);
    }
}
