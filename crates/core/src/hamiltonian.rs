//! The Observation 10 construction: counting Hamiltonian paths as a DCQ of
//! treewidth 1.
//!
//! Given an `n`-vertex graph `G`, the query
//!
//! ```text
//! ϕ(x₁, …, x_n) = ⋀_{i<n} E(x_i, x_{i+1}) ∧ ⋀_{i<j} x_i ≠ x_j
//! ```
//!
//! has `H(ϕ)` equal to a path (treewidth 1, arity 2), yet its answers over
//! `D(G)` are exactly the Hamiltonian paths of `G`. This is the paper's proof
//! that no FPRAS exists for #DCQ even at treewidth 1 (unless NP = RP) — and
//! also a stress test for the FPTRAS, whose running time may be exponential
//! in `‖ϕ‖` (here `Θ(n²)` because of the `n(n−1)/2` disequalities) but stays
//! polynomial in `‖D‖`.

use cqc_data::{Structure, StructureBuilder};
use cqc_query::{Query, QueryBuilder};

/// Build the Hamiltonian-path query of Observation 10 for `n` vertices.
pub fn hamiltonian_path_query(n: usize) -> Query {
    assert!(n >= 2, "a Hamiltonian path needs at least two vertices");
    let mut b = QueryBuilder::new();
    let vars: Vec<_> = (0..n).map(|i| b.var(&format!("x{}", i + 1))).collect();
    b.free(&vars);
    for i in 0..n - 1 {
        b.atom("E", &[vars[i], vars[i + 1]]);
    }
    for i in 0..n {
        for j in (i + 1)..n {
            b.disequality(vars[i], vars[j]);
        }
    }
    b.build().expect("Hamiltonian path query is well-formed")
}

/// The database `D(G)` of Observation 10 for an *undirected* graph: the
/// relation `E` holds both orientations of every edge, so each undirected
/// Hamiltonian path is counted twice (once per traversal direction).
pub fn undirected_graph_database(n: usize, edges: &[(usize, usize)]) -> Structure {
    let mut b = StructureBuilder::new(n);
    b.relation("E", 2);
    for &(u, v) in edges {
        b.fact("E", &[u as u32, v as u32]).unwrap();
        b.fact("E", &[v as u32, u as u32]).unwrap();
    }
    b.build()
}

/// The database for a *directed* graph (answers are directed Hamiltonian
/// paths).
pub fn directed_graph_database(n: usize, edges: &[(usize, usize)]) -> Structure {
    let mut b = StructureBuilder::new(n);
    b.relation("E", 2);
    for &(u, v) in edges {
        b.fact("E", &[u as u32, v as u32]).unwrap();
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::ApproxConfig;
    use crate::fptras::fptras_count;
    use cqc_query::{count_answers_via_solutions, query_hypergraph, QueryClass};

    #[test]
    fn query_shape_matches_observation_10() {
        let q = hamiltonian_path_query(5);
        assert_eq!(q.num_vars(), 5);
        assert_eq!(q.num_free_vars(), 5);
        assert_eq!(q.positive_atoms().count(), 4);
        assert_eq!(q.disequalities().len(), 10);
        assert_eq!(q.class(), QueryClass::DCQ);
        let h = query_hypergraph(&q);
        assert_eq!(h.arity(), 2);
        assert_eq!(cqc_hypergraph::treewidth::treewidth_exact(&h).0, 1);
    }

    #[test]
    fn counts_hamiltonian_paths_exactly_on_small_graphs() {
        // path graph: exactly one undirected Hamiltonian path → 2 directed answers
        let q = hamiltonian_path_query(4);
        let db = undirected_graph_database(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(count_answers_via_solutions(&q, &db), 2);
        // complete graph K4: 4!/... every permutation is a path: 24 answers
        let k4_edges = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        let db = undirected_graph_database(4, &k4_edges);
        assert_eq!(count_answers_via_solutions(&q, &db), 24);
        // cycle C4: undirected Hamiltonian paths = 4 (remove one edge), ×2 directions
        let c4_edges = [(0, 1), (1, 2), (2, 3), (3, 0)];
        let db = undirected_graph_database(4, &c4_edges);
        assert_eq!(count_answers_via_solutions(&q, &db), 8);
    }

    #[test]
    fn directed_graph_counts() {
        let q = hamiltonian_path_query(3);
        let db = directed_graph_database(3, &[(0, 1), (1, 2), (2, 0)]);
        // directed C3: three directed Hamiltonian paths (start anywhere)
        assert_eq!(count_answers_via_solutions(&q, &db), 3);
    }

    #[test]
    fn fptras_estimates_hamiltonian_path_count() {
        // Small instance (n = 3, so |Δ| = 3 and the per-round colouring
        // success probability is 4⁻³ = 1/64): the FPTRAS must recover the
        // exact count. Larger n are exercised by the benchmark harness with
        // the full repetition budget — the exponential dependence on ‖ϕ‖ is
        // precisely the FPTRAS-vs-FPRAS gap the paper proves unavoidable.
        let q = hamiltonian_path_query(3);
        let db = undirected_graph_database(3, &[(0, 1), (1, 2), (2, 0)]);
        let truth = count_answers_via_solutions(&q, &db) as f64;
        assert_eq!(truth, 6.0);
        let cfg = ApproxConfig {
            epsilon: 0.3,
            delta: 0.2,
            seed: 41,
            colour_repetitions: Some(400),
            ..Default::default()
        };
        let r = fptras_count(&q, &db, &cfg).unwrap();
        assert!(
            (r.estimate - truth).abs() <= 0.35 * truth,
            "estimate {} vs truth {}",
            r.estimate,
            truth
        );
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn degenerate_size_rejected() {
        hamiltonian_path_query(1);
    }
}
