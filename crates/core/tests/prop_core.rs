//! Property-based tests for the top-level algorithms: on random small
//! databases, the FPTRAS (Theorems 5/13), the FPRAS (Theorem 16) and the
//! dispatcher must track the exact baseline, the sampler must only emit real
//! answers, and the Figure 1 dispatch must route each query class to the
//! scheme the classification allows.
//!
//! Instances are kept tiny (≤ 12-element universes, ≤ 2 free variables) so
//! the whole suite stays well under a minute; statistical tolerances are
//! twice the configured ε to keep the suite deterministic in practice.

use cqc_core::{
    approx_count_answers, count_union, exact_count_answers, fpras_count, fptras_count,
    naive_monte_carlo, sample_answers, ApproxConfig, CountMethod,
};
use cqc_data::{Structure, StructureBuilder};
use cqc_query::{enumerate_answers, parse_query, Query, QueryClass};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random directed graph database over the single binary relation `E`.
#[derive(Debug, Clone)]
struct RawGraph {
    n: usize,
    edges: Vec<(u32, u32)>,
}

fn raw_graph(max_n: usize, max_edges: usize) -> impl Strategy<Value = RawGraph> {
    (3usize..=max_n).prop_flat_map(move |n| {
        let m = n as u32;
        proptest::collection::vec((0..m, 0..m), 1..max_edges)
            .prop_map(move |edges| RawGraph { n, edges })
    })
}

fn graph_db(raw: &RawGraph) -> Structure {
    let mut b = StructureBuilder::new(raw.n);
    b.relation("E", 2);
    for &(u, v) in &raw.edges {
        b.fact("E", &[u, v]).unwrap();
    }
    b.build()
}

/// The fixed pool of bounded-treewidth queries the properties range over.
fn query_pool() -> Vec<(&'static str, Query)> {
    vec![
        (
            "path2",
            parse_query("ans(x, y) :- E(x, z), E(z, y)").unwrap(),
        ),
        (
            "friends",
            parse_query("ans(x) :- E(x, y), E(x, z), y != z").unwrap(),
        ),
        (
            "asym",
            parse_query("ans(x, y) :- E(x, y), !E(y, x)").unwrap(),
        ),
        (
            "loopless",
            parse_query("ans(x) :- E(x, y), x != y").unwrap(),
        ),
        ("boolean", parse_query("ans() :- E(x, y), E(y, z)").unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The FPTRAS tracks the exact count for every query in the pool.
    #[test]
    fn fptras_tracks_exact(raw in raw_graph(9, 18), seed in any::<u64>()) {
        let db = graph_db(&raw);
        let cfg = ApproxConfig::new(0.25, 0.02).with_seed(seed);
        for (name, q) in query_pool() {
            let truth = exact_count_answers(&q, &db) as f64;
            let r = fptras_count(&q, &db, &cfg).unwrap();
            prop_assert!(
                (r.estimate - truth).abs() <= 0.5 * truth.max(1.0),
                "{name}: fptras {} vs exact {}",
                r.estimate,
                truth
            );
        }
    }

    /// The FPRAS (Theorem 16) tracks the exact count on plain CQs.
    #[test]
    fn fpras_tracks_exact_on_cqs(raw in raw_graph(10, 22), seed in any::<u64>()) {
        let db = graph_db(&raw);
        let cfg = ApproxConfig::new(0.25, 0.02).with_seed(seed);
        for (name, q) in query_pool() {
            if q.class() != QueryClass::CQ {
                continue;
            }
            let truth = exact_count_answers(&q, &db) as f64;
            let r = fpras_count(&q, &db, &cfg).unwrap();
            prop_assert!(
                (r.estimate - truth).abs() <= 0.5 * truth.max(1.0),
                "{name}: fpras {} vs exact {}",
                r.estimate,
                truth
            );
        }
    }

    /// Figure 1 dispatch: plain CQs go to the FPRAS, queries with
    /// disequalities or negations go to the FPTRAS, and the estimate always
    /// tracks the exact count.
    #[test]
    fn dispatcher_routes_by_query_class(raw in raw_graph(9, 18), seed in any::<u64>()) {
        let db = graph_db(&raw);
        let cfg = ApproxConfig::new(0.25, 0.02).with_seed(seed);
        for (name, q) in query_pool() {
            let r = approx_count_answers(&q, &db, &cfg).unwrap();
            match q.class() {
                QueryClass::CQ => prop_assert!(
                    r.method == CountMethod::Fpras || r.method == CountMethod::Exact,
                    "{name}: CQ dispatched to {:?}",
                    r.method
                ),
                QueryClass::DCQ | QueryClass::ECQ => prop_assert!(
                    r.method == CountMethod::Fptras || r.method == CountMethod::Exact,
                    "{name}: {:?} dispatched to {:?}",
                    q.class(),
                    r.method
                ),
            }
            let truth = exact_count_answers(&q, &db) as f64;
            prop_assert!(
                (r.estimate - truth).abs() <= 0.5 * truth.max(1.0),
                "{name}: estimate {} vs exact {}",
                r.estimate,
                truth
            );
        }
    }

    /// The answer sampler only returns genuine answers, and returns nothing
    /// exactly when the answer set is empty (Section 6).
    #[test]
    fn sampler_emits_only_answers(raw in raw_graph(8, 14), seed in any::<u64>()) {
        let db = graph_db(&raw);
        let cfg = ApproxConfig::new(0.3, 0.05).with_seed(seed);
        for (name, q) in query_pool() {
            let answers = enumerate_answers(&q, &db);
            let samples = sample_answers(&q, &db, 8, &cfg).unwrap();
            if answers.is_empty() {
                prop_assert!(samples.is_empty(), "{name}: sampled from an empty answer set");
            } else {
                prop_assert!(!samples.is_empty(), "{name}: no samples despite answers");
                for s in &samples {
                    prop_assert!(answers.contains(s), "{name}: sampled non-answer {:?}", s);
                }
            }
        }
    }

    /// Karp–Luby union counting (Section 6) tracks the exact union size and
    /// is always at least the largest individual answer set (up to the
    /// statistical tolerance) and at most the sum.
    #[test]
    fn union_counting_tracks_exact(raw in raw_graph(8, 16), seed in any::<u64>()) {
        let db = graph_db(&raw);
        let q1 = parse_query("ans(x, y) :- E(x, y)").unwrap();
        let q2 = parse_query("ans(x, y) :- E(y, x)").unwrap();
        let q3 = parse_query("ans(x, y) :- E(x, z), E(z, y)").unwrap();
        let queries = vec![q1, q2, q3];
        let mut union = std::collections::BTreeSet::new();
        let mut sum = 0usize;
        for q in &queries {
            let a = enumerate_answers(q, &db);
            sum += a.len();
            union.extend(a);
        }
        let truth = union.len() as f64;
        let cfg = ApproxConfig::new(0.2, 0.02).with_seed(seed);
        let est = count_union(&queries, &db, 600, &cfg).unwrap();
        prop_assert!(
            (est - truth).abs() <= 0.4 * truth.max(1.0),
            "union estimate {est} vs exact {truth}"
        );
        prop_assert!(est <= sum as f64 + 1e-9);
    }

    /// The naive Monte-Carlo baseline is unbiased enough on dense answer
    /// sets to land near the truth with a large sample budget — and the
    /// exact baselines agree with the brute-force definition.
    #[test]
    fn baselines_are_consistent(raw in raw_graph(7, 14), seed in any::<u64>()) {
        let db = graph_db(&raw);
        let q = parse_query("ans(x, y) :- E(x, y)").unwrap();
        let truth = exact_count_answers(&q, &db) as f64;
        prop_assert_eq!(truth as usize, enumerate_answers(&q, &db).len());
        let mut rng = StdRng::seed_from_u64(seed);
        let est = naive_monte_carlo(&q, &db, 40_000, &mut rng);
        prop_assert!(
            (est - truth).abs() <= 0.35 * truth.max(1.0),
            "naive {} vs exact {}",
            est,
            truth
        );
    }
}
