//! Span-tree determinism: with a serial runtime, two same-seed runs must
//! record the **identical** span forest — same names, same deterministic
//! span IDs (every ID is `split_seed` of the seed and a structural index,
//! never scheduling state), same parentage, same child order. Timestamps
//! legitimately differ, so the comparison goes through the duration-free
//! [`SpanForest::shape`] rendering.
//!
//! Serial (`threads(1)`) is the strongest claim the tracer can make:
//! under a parallel runtime `par_any_n`'s early exit legitimately changes
//! *which* repetition spans exist between runs (the estimates still
//! match bit for bit — that is `trace_invisibility`'s job in `cqc-net`).

use cqc_core::{Backend, Engine};
use cqc_data::StructureBuilder;
use cqc_obs::trace::{build_forest, drain, set_enabled};
use cqc_query::parse_query;

fn graph_db() -> cqc_data::Structure {
    let mut b = StructureBuilder::new(6);
    b.relation("E", 2);
    for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (5, 0)] {
        b.fact("E", &[u, v]).unwrap();
    }
    b.build()
}

/// One traced prepare + count under a serial runtime; returns the shape.
fn traced_shape(query: &str, backend: Backend, seed: u64) -> String {
    let engine = Engine::builder()
        .seed(seed)
        .threads(1)
        .backend(backend)
        .build()
        .unwrap();
    let query = parse_query(query).unwrap();
    let db = graph_db();
    set_enabled(true);
    let prepared = engine.prepare(&query).unwrap();
    let report = prepared.count(&db).unwrap();
    set_enabled(false);
    let trace = drain();
    assert!(report.estimate.is_finite());
    assert!(!trace.events.is_empty(), "a traced run must record spans");
    assert_eq!(trace.dropped, 0, "the buffer must not overflow this test");
    build_forest(&trace.events).shape()
}

#[test]
fn same_seed_serial_runs_record_identical_span_trees() {
    set_enabled(false);
    let _ = drain(); // isolate from anything the harness ran before us
    for (query, backend) in [
        // CQ via the FPRAS: prepare > decompose, then the sampling count
        ("ans(x, y) :- E(x, z), E(z, y)", Backend::Fpras),
        // DCQ via the FPTRAS: oracle_call > repetition colour-coding spans
        ("ans(x) :- E(x, y), E(x, z), y != z", Backend::Fptras),
    ] {
        let first = traced_shape(query, backend, 0xC0FFEE);
        let second = traced_shape(query, backend, 0xC0FFEE);
        assert_eq!(first, second, "span tree drifted for `{query}`");
        // a different seed must yield different span IDs (same names)
        let reseeded = traced_shape(query, backend, 0xBEEF);
        assert_ne!(first, reseeded, "span IDs must derive from the seed");
        assert!(first.contains("prepare "), "{first}");
    }
}

#[test]
fn fptras_span_trees_nest_repetitions_under_oracle_calls() {
    set_enabled(false);
    let _ = drain();
    let shape = traced_shape(
        "ans(x) :- E(x, y), E(x, z), y != z",
        Backend::Fptras,
        0xC0FFEE,
    );
    assert!(shape.contains("oracle_call "), "{shape}");
    assert!(shape.contains("repetition "), "{shape}");
    // repetitions are children of oracle calls: indented one level deeper
    let oracle_depth = shape
        .lines()
        .find(|l| l.trim_start().starts_with("oracle_call"))
        .map(|l| l.len() - l.trim_start().len())
        .unwrap();
    let repetition_depth = shape
        .lines()
        .find(|l| l.trim_start().starts_with("repetition"))
        .map(|l| l.len() - l.trim_start().len())
        .unwrap();
    assert_eq!(repetition_depth, oracle_depth + 2, "{shape}");
}
