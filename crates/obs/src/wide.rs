//! Wide-event request logs: one structured record per served request.
//!
//! A **wide event** is the post-hoc unit of observability — everything the
//! server knew about one request flattened into a single NDJSON object:
//! protocol and endpoint, query class, queue wait, per-phase wall times,
//! outcome classification (ok / error / shed / panic), response payload
//! size, and the connection slab token that ties the record back to the
//! event loop's slot table. Aggregate counters answer "how many"; the wide
//! event answers "what happened to *this* request".
//!
//! ## Structure
//!
//! * [`WideEvent`] — the record itself, rendered by
//!   [`WideEvent::to_json_line`].
//! * [`WideLog`] — a bounded in-memory tail (drop-oldest, counted) plus an
//!   optional append-only NDJSON file sink (`cqc serve --request-log`).
//!   The tail backs `GET /debug/requests`; the file is the durable log
//!   `cqc report requests` consumes.
//! * a thread-local **phase accumulator** ([`phases_begin`] /
//!   [`note_phase`] / [`note_class`] / [`note_trace`] / [`phases_take`])
//!   that lets the serve layer annotate phase timings onto the request the
//!   dispatch worker is currently executing without threading a context
//!   parameter through every call.
//!
//! ## Invisibility
//!
//! Recording is gated on one relaxed [`AtomicBool`] — off, [`WideLog::record`]
//! is a branch and [`phases_active`] a thread-local read. Nothing on the
//! request path reads wide-event state back, so estimates and wire bytes
//! are byte-identical with the log on or off (pinned by
//! `trace_invisibility.rs` in `cqc-net`).

use crate::trace::escape_json;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fs::File;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn wide-event recording on or off process-wide. Estimates and wire
/// bytes are identical either way.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether wide-event recording is enabled (one relaxed load).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// How a request left the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Handled, 2xx.
    Ok,
    /// Handled, but the engine classified the request as an error (4xx).
    Error,
    /// Refused by admission control (connection cap or dispatch queue).
    Shed,
    /// The handler panicked; the peer got a 500-class response.
    Panic,
}

impl Outcome {
    /// The stable wire name of the outcome.
    pub fn as_str(&self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Error => "error",
            Outcome::Shed => "shed",
            Outcome::Panic => "panic",
        }
    }
}

/// One wide event: everything known about one request, flattened.
#[derive(Debug, Clone)]
pub struct WideEvent {
    /// Log-assigned sequence number (order of admission to the log).
    pub seq: u64,
    /// Nanoseconds since the trace epoch when the record was emitted.
    pub t_ns: u64,
    /// Wire protocol: `"http"` or `"ndjson"`.
    pub protocol: &'static str,
    /// Logical endpoint: `"count"`, `"stream"` or `"line"`.
    pub endpoint: &'static str,
    /// Query class reported by the planner (empty if the request never
    /// reached planning).
    pub class: String,
    /// Outcome classification.
    pub outcome: Outcome,
    /// HTTP status (NDJSON responses borrow the same convention).
    pub status: u16,
    /// Wall time spent queued before a dispatch worker picked the job up.
    pub queue_ns: u64,
    /// Total handler wall time (zero for shed requests).
    pub handle_ns: u64,
    /// Planning/preparation phase wall time within the handler.
    pub prepare_ns: u64,
    /// Evaluation phase wall time within the handler.
    pub evaluate_ns: u64,
    /// Response payload bytes (body only, excluding HTTP framing).
    pub bytes: u64,
    /// Event-loop slot index of the connection.
    pub slot: usize,
    /// Slot generation at dispatch time.
    pub gen: u64,
    /// Ordinal of this request on its connection (1-based).
    pub conn_req: u64,
    /// Trace correlation id (`traceparent` header or request `trace`
    /// member), empty if absent.
    pub trace: String,
}

impl WideEvent {
    /// Render the record as one NDJSON line (without trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!(
            "{{\"type\":\"wide\",\"seq\":{},\"t_ns\":{},\"protocol\":\"{}\",\"endpoint\":\"{}\"",
            self.seq, self.t_ns, self.protocol, self.endpoint
        ));
        out.push_str(",\"class\":\"");
        escape_json(&self.class, &mut out);
        out.push_str(&format!(
            "\",\"outcome\":\"{}\",\"status\":{},\"queue_ns\":{},\"handle_ns\":{},\"prepare_ns\":{},\"evaluate_ns\":{},\"bytes\":{},\"slot\":{},\"gen\":{},\"conn_req\":{}",
            self.outcome.as_str(),
            self.status,
            self.queue_ns,
            self.handle_ns,
            self.prepare_ns,
            self.evaluate_ns,
            self.bytes,
            self.slot,
            self.gen,
            self.conn_req
        ));
        out.push_str(",\"trace\":\"");
        escape_json(&self.trace, &mut out);
        out.push_str("\"}");
        out
    }
}

struct LogState {
    next_seq: u64,
    tail: VecDeque<WideEvent>,
    cap: usize,
    dropped: u64,
    file: Option<File>,
}

/// A bounded in-memory tail of recent wide events plus an optional NDJSON
/// file sink. The tail drops oldest on overflow (counted); the file, when
/// attached, receives every record.
pub struct WideLog {
    state: Mutex<LogState>,
}

impl WideLog {
    /// Create a log whose in-memory tail holds at most `cap` events.
    pub fn new(cap: usize) -> WideLog {
        WideLog {
            state: Mutex::new(LogState {
                next_seq: 0,
                tail: VecDeque::new(),
                cap: cap.max(1),
                dropped: 0,
                file: None,
            }),
        }
    }

    /// Attach an append sink: every subsequent record is also written to
    /// `file` as one NDJSON line.
    pub fn attach_file(&self, file: File) {
        lock(&self.state).file = Some(file);
    }

    /// Record one wide event (no-op when recording is [`enabled`] off).
    /// Assigns the log sequence number, appends to the bounded tail
    /// (dropping the oldest entry if full), writes the file sink if one is
    /// attached, and mirrors the record into the flight recorder.
    pub fn record(&self, mut event: WideEvent) {
        if !enabled() {
            return;
        }
        let mut state = lock(&self.state);
        event.seq = state.next_seq;
        state.next_seq += 1;
        crate::flight::record_wide(&event);
        if let Some(file) = state.file.as_mut() {
            let mut line = event.to_json_line();
            line.push('\n');
            let _ = file.write_all(line.as_bytes());
        }
        if state.tail.len() >= state.cap {
            state.tail.pop_front();
            state.dropped += 1;
        }
        state.tail.push_back(event);
    }

    /// Render the in-memory tail as NDJSON (oldest first). If any events
    /// were evicted from the tail, a final `{"type":"dropped",…}` line
    /// reports how many, so a truncated tail can never pass for complete.
    pub fn tail_ndjson(&self) -> String {
        let state = lock(&self.state);
        let mut out = String::new();
        for event in &state.tail {
            out.push_str(&event.to_json_line());
            out.push('\n');
        }
        if state.dropped > 0 {
            out.push_str(&format!(
                "{{\"type\":\"dropped\",\"count\":{}}}\n",
                state.dropped
            ));
        }
        out
    }

    /// Total events recorded since construction.
    pub fn recorded(&self) -> u64 {
        lock(&self.state).next_seq
    }

    /// Events evicted from the in-memory tail (they may still be in the
    /// file sink).
    pub fn dropped(&self) -> u64 {
        lock(&self.state).dropped
    }
}

/// Poison-safe lock: wide-event state is only appended to, so a panicking
/// writer leaves it consistent.
fn lock(mutex: &Mutex<LogState>) -> std::sync::MutexGuard<'_, LogState> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

// ---------------------------------------------------------------------------
// Phase accumulator: serve-layer annotations for the in-flight request.
// ---------------------------------------------------------------------------

/// Phase annotations accumulated while one request executes on a dispatch
/// worker, drained into its [`WideEvent`].
#[derive(Debug, Default, Clone)]
pub struct Phases {
    /// Planning/preparation wall time.
    pub prepare_ns: u64,
    /// Evaluation wall time.
    pub evaluate_ns: u64,
    /// Query class reported by the planner.
    pub class: String,
    /// Trace correlation id from the request body, if any.
    pub trace: String,
}

thread_local! {
    static PHASES: RefCell<Option<Phases>> = const { RefCell::new(None) };
}

/// Arm the phase accumulator for the request about to execute on this
/// thread. Called by the dispatch worker before invoking the handler.
pub fn phases_begin() {
    PHASES.with(|p| *p.borrow_mut() = Some(Phases::default()));
}

/// Whether a phase accumulator is armed on this thread. The serve layer
/// checks this before starting phase stopwatches, so annotation costs one
/// thread-local read when wide events are off.
#[inline]
pub fn phases_active() -> bool {
    PHASES.with(|p| p.borrow().is_some())
}

/// Add wall time to a named phase (`"prepare"` or `"evaluate"`) of the
/// in-flight request. Unknown names are ignored. No-op when no accumulator
/// is armed.
pub fn note_phase(name: &str, ns: u64) {
    PHASES.with(|p| {
        if let Some(phases) = p.borrow_mut().as_mut() {
            match name {
                "prepare" => phases.prepare_ns += ns,
                "evaluate" => phases.evaluate_ns += ns,
                _ => {}
            }
        }
    });
}

/// Record the planner's query class for the in-flight request.
pub fn note_class(class: &str) {
    PHASES.with(|p| {
        if let Some(phases) = p.borrow_mut().as_mut() {
            phases.class = class.to_string();
        }
    });
}

/// Record the request-body trace correlation id for the in-flight request.
pub fn note_trace(trace: &str) {
    PHASES.with(|p| {
        if let Some(phases) = p.borrow_mut().as_mut() {
            phases.trace = trace.to_string();
        }
    });
}

/// Take the accumulated phases for the request that just finished,
/// disarming the accumulator. Returns defaults if nothing was armed.
pub fn phases_take() -> Phases {
    PHASES.with(|p| p.borrow_mut().take().unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(seq_hint: u64) -> WideEvent {
        WideEvent {
            seq: seq_hint,
            t_ns: 42,
            protocol: "http",
            endpoint: "count",
            class: "Quantifier".into(),
            outcome: Outcome::Ok,
            status: 200,
            queue_ns: 1_000,
            handle_ns: 2_000,
            prepare_ns: 500,
            evaluate_ns: 1_200,
            bytes: 64,
            slot: 3,
            gen: 7,
            conn_req: 1,
            trace: "00-abc-def-01".into(),
        }
    }

    #[test]
    fn json_line_has_all_fields_and_escapes() {
        let mut e = event(9);
        e.class = "say \"hi\"".into();
        let line = e.to_json_line();
        assert!(line.starts_with("{\"type\":\"wide\",\"seq\":9,"), "{line}");
        assert!(line.contains("\"class\":\"say \\\"hi\\\"\""), "{line}");
        assert!(line.contains("\"outcome\":\"ok\""), "{line}");
        assert!(line.contains("\"queue_ns\":1000"), "{line}");
        assert!(line.contains("\"conn_req\":1"), "{line}");
        assert!(line.ends_with("\"trace\":\"00-abc-def-01\"}"), "{line}");
    }

    #[test]
    fn log_is_gated_bounded_and_counts_evictions() {
        let log = WideLog::new(2);

        // Disabled: nothing lands.
        set_enabled(false);
        log.record(event(0));
        assert_eq!(log.recorded(), 0);
        assert_eq!(log.tail_ndjson(), "");

        set_enabled(true);
        for _ in 0..5 {
            log.record(event(0));
        }
        set_enabled(false);
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.dropped(), 3);
        let tail = log.tail_ndjson();
        // Two survivors (the newest) plus the eviction marker.
        assert_eq!(tail.lines().count(), 3, "{tail}");
        assert!(tail.contains("\"seq\":3"), "{tail}");
        assert!(tail.contains("\"seq\":4"), "{tail}");
        assert!(
            tail.ends_with("{\"type\":\"dropped\",\"count\":3}\n"),
            "{tail}"
        );
    }

    #[test]
    fn file_sink_receives_every_record() {
        let path =
            std::env::temp_dir().join(format!("cqc-widelog-test-{}.ndjson", std::process::id()));
        let log = WideLog::new(1);
        log.attach_file(File::create(&path).unwrap());
        set_enabled(true);
        for _ in 0..3 {
            log.record(event(0));
        }
        set_enabled(false);
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(text.lines().count(), 3, "{text}");
        assert!(text.contains("\"seq\":0"), "{text}");
        assert!(text.contains("\"seq\":2"), "{text}");
    }

    #[test]
    fn phase_accumulator_is_per_thread_and_take_disarms() {
        assert!(!phases_active());
        note_phase("prepare", 10); // unarmed: ignored
        phases_begin();
        assert!(phases_active());
        note_phase("prepare", 100);
        note_phase("evaluate", 200);
        note_phase("evaluate", 50);
        note_phase("mystery", 999);
        note_class("Join");
        note_trace("t-1");
        let phases = phases_take();
        assert!(!phases_active());
        assert_eq!(phases.prepare_ns, 100);
        assert_eq!(phases.evaluate_ns, 250);
        assert_eq!(phases.class, "Join");
        assert_eq!(phases.trace, "t-1");
        // A fresh take without arming yields defaults.
        assert_eq!(phases_take().prepare_ns, 0);
    }
}
