//! The unified metrics registry: counters, gauges and log-spaced
//! histograms rendered in the Prometheus text exposition format.
//!
//! Everything here is observation-only — values are updated with relaxed
//! atomics off the hot path and can never influence a response body, so
//! the wire-determinism contract is untouched. A [`Registry`] renders its
//! series **in registration order**, which is what lets `cqc-net` keep the
//! `/metrics` byte format of its pre-registry implementation: register the
//! same series in the same order and the bytes match. It is also the
//! idle-server fix: every series is registered (and therefore rendered,
//! zero-valued) at startup, not on first touch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A free-standing counter (use [`Registry::counter`] to expose one).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins gauge (pool width, open connections, queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A free-standing gauge (use [`Registry::gauge`] to expose one).
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the current value.
    pub fn set(&self, value: u64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Increment by one — for gauges tracking a live population (open
    /// connections, queued jobs) rather than a sampled snapshot.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrement by one, saturating at zero so a mismatched `dec` can never
    /// wrap the gauge to `u64::MAX`.
    pub fn dec(&self) {
        let _ = self
            .value
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(1))
            });
    }
}

/// Upper bounds of the duration histogram buckets, in nanoseconds
/// (≈ log-spaced from 100 µs to 10 s, plus the implicit `+Inf`). These are
/// the bounds `cqc-net` has always exposed for request latency; reusing
/// them keeps `/metrics` bytes stable.
pub const LATENCY_BUCKET_BOUNDS_NANOS: &[u64] = &[
    100_000,        // 100 µs
    316_000,        // 316 µs
    1_000_000,      // 1 ms
    3_160_000,      // 3.16 ms
    10_000_000,     // 10 ms
    31_600_000,     // 31.6 ms
    100_000_000,    // 100 ms
    316_000_000,    // 316 ms
    1_000_000_000,  // 1 s
    3_160_000_000,  // 3.16 s
    10_000_000_000, // 10 s
];

/// A fixed-bucket cumulative histogram of durations.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // one per bound, plus +Inf
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Default for Histogram {
    /// A histogram over [`LATENCY_BUCKET_BOUNDS_NANOS`].
    fn default() -> Self {
        Histogram::new(LATENCY_BUCKET_BOUNDS_NANOS)
    }
}

impl Histogram {
    /// A histogram with the given bucket upper bounds (nanoseconds,
    /// ascending); `+Inf` is implicit.
    pub fn new(bounds: &[u64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    pub fn record(&self, duration: Duration) {
        self.record_nanos(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one observation given directly in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        let slot = self
            .bounds
            .iter()
            .position(|&bound| nanos <= bound)
            .unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Render in Prometheus text format under `name` (cumulative buckets
    /// in seconds, then `_sum` and `_count`). No `# HELP` line — the
    /// format `cqc-net` has always emitted for its latency histogram.
    pub fn render(&self, name: &str, out: &mut String) {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, &bound) in self.bounds.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                bound as f64 / 1e9
            ));
        }
        cumulative += self.buckets[self.bounds.len()].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!(
            "{name}_sum {}\n",
            self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
        ));
        out.push_str(&format!("{name}_count {cumulative}\n"));
    }
}

/// One registered series.
enum Series {
    Counter {
        name: String,
        help: String,
        value: Arc<Counter>,
    },
    Gauge {
        name: String,
        help: String,
        value: Arc<Gauge>,
    },
    Histogram {
        name: String,
        value: Arc<Histogram>,
    },
}

impl Series {
    fn name(&self) -> &str {
        match self {
            Series::Counter { name, .. }
            | Series::Gauge { name, .. }
            | Series::Histogram { name, .. } => name,
        }
    }
}

/// An ordered collection of metric series, rendered by `GET /metrics`.
///
/// Registration order is rendering order. Registering a name twice returns
/// the existing series (so independent subsystems can share a counter by
/// name without coordinating).
#[derive(Default)]
pub struct Registry {
    series: Mutex<Vec<Series>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let series = self.lock();
        f.debug_struct("Registry")
            .field(
                "series",
                &series.iter().map(Series::name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Series>> {
        // A poisoned registry only means a panic elsewhere mid-render;
        // the data (relaxed atomics) is still sound to read.
        self.series.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Create (or fetch) a counter series.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.register_counter(name, help, Arc::new(Counter::new()))
    }

    /// Register an existing counter under `name`. If the name is already
    /// registered the existing counter wins and is returned.
    pub fn register_counter(&self, name: &str, help: &str, value: Arc<Counter>) -> Arc<Counter> {
        let mut series = self.lock();
        for s in series.iter() {
            if let Series::Counter { name: n, value, .. } = s {
                if n == name {
                    return Arc::clone(value);
                }
            }
        }
        series.push(Series::Counter {
            name: name.to_string(),
            help: help.to_string(),
            value: Arc::clone(&value),
        });
        value
    }

    /// Create (or fetch) a gauge series.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        let mut series = self.lock();
        for s in series.iter() {
            if let Series::Gauge { name: n, value, .. } = s {
                if n == name {
                    return Arc::clone(value);
                }
            }
        }
        let value = Arc::new(Gauge::new());
        series.push(Series::Gauge {
            name: name.to_string(),
            help: help.to_string(),
            value: Arc::clone(&value),
        });
        value
    }

    /// Create (or fetch) a histogram series over the given bucket bounds.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Arc<Histogram> {
        self.register_histogram(name, Arc::new(Histogram::new(bounds)))
    }

    /// Register an existing histogram under `name`. If the name is already
    /// registered the existing histogram wins and is returned.
    pub fn register_histogram(&self, name: &str, value: Arc<Histogram>) -> Arc<Histogram> {
        let mut series = self.lock();
        for s in series.iter() {
            if let Series::Histogram { name: n, value } = s {
                if n == name {
                    return Arc::clone(value);
                }
            }
        }
        series.push(Series::Histogram {
            name: name.to_string(),
            value: Arc::clone(&value),
        });
        value
    }

    /// Render every series, in registration order, in the Prometheus text
    /// exposition format.
    pub fn render(&self) -> String {
        let series = self.lock();
        let mut out = String::new();
        for s in series.iter() {
            match s {
                Series::Counter { name, help, value } => {
                    out.push_str(&format!(
                        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {}\n",
                        value.get()
                    ));
                }
                Series::Gauge { name, help, value } => {
                    out.push_str(&format!(
                        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {}\n",
                        value.get()
                    ));
                }
                Series::Histogram { name, value } => value.render(name, &mut out),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_inc_dec_saturates_at_zero() {
        let g = Gauge::new();
        g.inc();
        g.inc();
        assert_eq!(g.get(), 2);
        g.dec();
        g.dec();
        g.dec(); // extra dec must not wrap
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.record(Duration::from_micros(50)); // below first bound
        h.record(Duration::from_millis(2)); // 3.16 ms bucket
        h.record(Duration::from_secs(60)); // +Inf
        assert_eq!(h.count(), 3);
        let mut out = String::new();
        h.render("lat", &mut out);
        assert!(out.contains("lat_bucket{le=\"0.0001\"} 1\n"), "{out}");
        assert!(out.contains("lat_bucket{le=\"0.00316\"} 2\n"), "{out}");
        assert!(out.contains("lat_bucket{le=\"+Inf\"} 3\n"), "{out}");
        assert!(out.contains("lat_count 3\n"), "{out}");
    }

    #[test]
    fn registry_renders_in_registration_order() {
        let registry = Registry::new();
        let b = registry.counter("bbb_total", "second alphabetically, first registered");
        let a = registry.counter("aaa_total", "first alphabetically, second registered");
        let g = registry.gauge("width", "a gauge");
        b.add(2);
        a.inc();
        g.set(8);
        let text = registry.render();
        let b_at = text.find("bbb_total 2").unwrap();
        let a_at = text.find("aaa_total 1").unwrap();
        let g_at = text.find("# TYPE width gauge\nwidth 8").unwrap();
        assert!(b_at < a_at && a_at < g_at, "{text}");
    }

    #[test]
    fn registering_twice_shares_the_series() {
        let registry = Registry::new();
        let first = registry.counter("dup_total", "once");
        let second = registry.counter("dup_total", "twice");
        first.inc();
        second.inc();
        assert_eq!(first.get(), 2);
        // rendered once, with the first help text
        let text = registry.render();
        assert_eq!(text.matches("dup_total").count(), 3, "{text}"); // HELP, TYPE, sample
        assert!(text.contains("# HELP dup_total once"), "{text}");
    }

    #[test]
    fn zero_valued_series_render_immediately() {
        // the idle-server contract: registering is enough to be scraped
        let registry = Registry::new();
        registry.counter("idle_total", "never touched");
        registry.histogram("idle_seconds", LATENCY_BUCKET_BOUNDS_NANOS);
        let text = registry.render();
        assert!(text.contains("idle_total 0\n"), "{text}");
        assert!(text.contains("idle_seconds_count 0\n"), "{text}");
    }
}
