//! # cqc-obs — the observability substrate
//!
//! Everything in this crate observes; nothing decides. The workspace-wide
//! invariant — estimates and wire transcripts are byte-identical whether
//! tracing is on or off — holds because the types here are strictly
//! write-only from the perspective of the computation: counters and
//! histograms are relaxed atomics nothing reads back on the request path,
//! spans land in per-thread buffers that only [`trace::drain`] consumes,
//! and wall-clock reads are confined to [`clock`] (the sole site the
//! `cqc-audit` `wall-clock` rule sanctions), feeding telemetry fields that
//! never reach a branch or an estimate.
//!
//! The crate is the workspace's dependency root (it depends on nothing),
//! which is why [`seed::split_seed`] lives here: the runtime, the engines
//! and the tracer all derive identifiers from `(seed, work-item index)`
//! with the same SplitMix64 finaliser, and the tracer cannot depend on the
//! runtime without a cycle. `cqc-runtime` re-exports the functions, so the
//! established `cqc_runtime::split_seed` path keeps working.
//!
//! Modules:
//!
//! * [`seed`] — deterministic SplitMix64 seed/ID derivation.
//! * [`clock`] — [`Stopwatch`] and the tracer's monotonic epoch; the only
//!   sanctioned `Instant::now` in the workspace.
//! * [`metrics`] — [`Counter`]/[`Gauge`]/[`Histogram`] and the ordered
//!   [`Registry`] rendered by `GET /metrics`.
//! * [`trace`] — the structured span tracer: deterministic span IDs,
//!   per-thread ring buffers, NDJSON export, span forests and folded
//!   flame stacks.
//! * [`wide`] — wide-event request logs: one structured NDJSON record per
//!   served request, with a bounded in-memory tail and optional file sink.
//! * [`flight`] — the flight recorder: bounded per-thread rings of recent
//!   trace + wide events, snapshotted on demand or on anomaly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod flight;
pub mod metrics;
pub mod seed;
pub mod trace;
pub mod wide;

pub use clock::Stopwatch;
pub use flight::{FlightEntry, FlightSnapshot};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use seed::{split_seed, split_seed2};
pub use trace::Span;
pub use wide::{Outcome, WideEvent, WideLog};
