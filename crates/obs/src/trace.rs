//! Structured span tracing with deterministic identifiers.
//!
//! ## Model
//!
//! A **span** is a named interval of work with a `u64` identifier derived
//! from `(seed, work-item index)` via [`crate::seed::split_seed`] — never
//! from the wall clock or ambient randomness — so two runs with the same
//! seed produce identical span *trees* (names, IDs, parentage, counts).
//! Only the nanosecond timestamps differ between runs, which is why the
//! deterministic comparison helpers exclude them.
//!
//! Spans nest two ways:
//!
//! * [`Span::enter`] — parent is the innermost open span **on the same
//!   thread** (a thread-local stack), the common synchronous case;
//! * [`Span::child_of`] — explicit parent ID, for work dispatched to pool
//!   workers (`oracle_call → repetition`, `request → work_item`), where
//!   the parent span lives on another thread's stack.
//!
//! [`instant`] records a point event (pool dispatches, chunk steals,
//! traceparent echoes) with a free-form detail string.
//!
//! ## Invisibility
//!
//! Recording is gated on one relaxed [`AtomicBool`] load — tracing off
//! costs a branch. Enabled, events append to **per-thread** buffers
//! (bounded; overflow increments a drop counter instead of growing), so
//! the request path never contends a global lock. Nothing on the request
//! path ever *reads* trace state — the only consumer is [`drain`], called
//! by `--trace` exporters after the work — which is the structural reason
//! tracing cannot perturb estimates or wire bytes (pinned by the
//! trace-on/off byte-identity matrix in `cqc-net`).
//!
//! ## Export
//!
//! [`drain`] merges the buffers in deterministic `(thread, seq)` order.
//! [`Trace::to_ndjson`] renders one JSON object per event (the `--trace
//! FILE` format); [`build_forest`] reassembles span trees; [`fold_stacks`]
//! renders flamegraph-compatible folded stacks and [`phase_totals`] a
//! per-phase wall-time table (`cqc report flame`).

use crate::clock;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cap on buffered events per thread; overflow is counted, not stored.
const MAX_EVENTS_PER_THREAD: usize = 1 << 20;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn tracing on or off process-wide. Estimates and wire bytes are
/// identical either way; only the buffers fill.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether tracing is currently enabled (one relaxed load — the entire
/// cost of the tracer when off).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Ordinal of the recording thread (registration order, stable for the
    /// thread's lifetime).
    pub thread: u32,
    /// Per-thread sequence number (contiguous per thread).
    pub seq: u64,
    /// Nanoseconds since the process trace epoch ([`clock::now_nanos`]).
    /// Scheduling-dependent; excluded from deterministic comparisons.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The payload of an [`Event`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened.
    Enter {
        /// Span name (`request`, `prepare`, `oracle_call`, …).
        name: String,
        /// Deterministic span ID (`split_seed` of seed and coordinates).
        id: u64,
        /// Parent span ID, `0` for roots.
        parent: u64,
    },
    /// A span closed.
    Exit {
        /// Span name (matches the `Enter`).
        name: String,
        /// Span ID (matches the `Enter`).
        id: u64,
    },
    /// A point event.
    Instant {
        /// Event name (`pool_dispatch`, `steal`, `traceparent`, …).
        name: String,
        /// Free-form detail.
        detail: String,
    },
}

struct ThreadBuf {
    ordinal: u32,
    seq: u64,
    events: Vec<Event>,
    dropped: u64,
}

type SharedBuf = Arc<Mutex<ThreadBuf>>;

fn registry() -> &'static Mutex<Vec<SharedBuf>> {
    static REGISTRY: OnceLock<Mutex<Vec<SharedBuf>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_BUF: RefCell<Option<SharedBuf>> = const { RefCell::new(None) };
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

fn with_local_buf(f: impl FnOnce(&mut ThreadBuf)) {
    LOCAL_BUF.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            let mut all = registry().lock().unwrap_or_else(|e| e.into_inner());
            let buf = Arc::new(Mutex::new(ThreadBuf {
                ordinal: all.len() as u32,
                seq: 0,
                events: Vec::new(),
                dropped: 0,
            }));
            all.push(Arc::clone(&buf));
            *slot = Some(buf);
        }
        if let Some(buf) = slot.as_ref() {
            let mut buf = buf.lock().unwrap_or_else(|e| e.into_inner());
            f(&mut buf);
        }
    });
}

fn record(kind: EventKind) {
    // The flight recorder mirrors every trace event into its own bounded
    // per-thread ring, independently of whether the exporter buffers are
    // filling — `--trace` off with the recorder on still remembers the
    // last few seconds.
    if crate::flight::enabled() {
        crate::flight::record_trace(kind.clone());
    }
    if !enabled() {
        return;
    }
    with_local_buf(|buf| {
        if buf.events.len() >= MAX_EVENTS_PER_THREAD {
            buf.dropped += 1;
            return;
        }
        let event = Event {
            thread: buf.ordinal,
            seq: buf.seq,
            t_ns: clock::now_nanos(),
            kind,
        };
        buf.seq += 1;
        buf.events.push(event);
    });
}

/// The ID of the innermost open span on this thread (`0` if none). Capture
/// it *before* fanning work out to pool threads, then attach the fanned
/// spans with [`Span::child_of`].
pub fn current_span() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// Record a point event (no-op when tracing is off). Format `detail`
/// behind an [`enabled`] check when it allocates.
pub fn instant(name: &'static str, detail: &str) {
    if !enabled() && !crate::flight::enabled() {
        return;
    }
    record(EventKind::Instant {
        name: name.to_string(),
        detail: detail.to_string(),
    });
}

/// An RAII span guard: records `Enter` on construction and `Exit` on drop.
/// Inert (records nothing, costs one atomic load) when tracing is off.
#[must_use = "a span measures the scope it is bound to"]
pub struct Span {
    name: &'static str,
    id: u64,
    recorded: bool,
}

impl Span {
    /// Open a span whose parent is the innermost open span on this thread.
    pub fn enter(name: &'static str, id: u64) -> Span {
        let parent = if enabled() || crate::flight::enabled() {
            current_span()
        } else {
            0
        };
        Span::open(name, id, parent)
    }

    /// Open a span under an explicit parent ID — for closures executing on
    /// pool workers, where the logical parent is open on another thread.
    pub fn child_of(parent: u64, name: &'static str, id: u64) -> Span {
        Span::open(name, id, parent)
    }

    fn open(name: &'static str, id: u64, parent: u64) -> Span {
        if !enabled() && !crate::flight::enabled() {
            return Span {
                name,
                id,
                recorded: false,
            };
        }
        record(EventKind::Enter {
            name: name.to_string(),
            id,
            parent,
        });
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        Span {
            name,
            id,
            recorded: true,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.recorded {
            return;
        }
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        record(EventKind::Exit {
            name: self.name.to_string(),
            id: self.id,
        });
    }
}

/// A drained trace: events in `(thread, seq)` order plus the number of
/// events lost to per-thread buffer caps (`0` in any healthy run).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The merged events.
    pub events: Vec<Event>,
    /// Events dropped because a per-thread buffer hit its cap.
    pub dropped: u64,
}

/// Drain every thread's buffer, merging in deterministic `(thread, seq)`
/// order. Buffers are emptied but stay registered (their ordinals and
/// sequence counters persist for the thread's lifetime).
pub fn drain() -> Trace {
    let all = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut trace = Trace::default();
    for buf in all.iter() {
        let mut buf = buf.lock().unwrap_or_else(|e| e.into_inner());
        trace.events.append(&mut buf.events);
        trace.dropped += buf.dropped;
        buf.dropped = 0;
    }
    trace.events.sort_by_key(|e| (e.thread, e.seq));
    trace
}

pub(crate) fn escape_json(raw: &str, out: &mut String) {
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render one event as a single NDJSON line (with trailing newline) in the
/// `--trace FILE` format. Shared by [`Trace::to_ndjson`] and the flight
/// recorder's snapshot rendering, so both streams parse identically.
pub(crate) fn render_event_line(e: &Event, out: &mut String) {
    out.push_str(&format!(
        "{{\"type\":\"{}\",\"thread\":{},\"seq\":{},\"t_ns\":{}",
        match &e.kind {
            EventKind::Enter { .. } => "enter",
            EventKind::Exit { .. } => "exit",
            EventKind::Instant { .. } => "instant",
        },
        e.thread,
        e.seq,
        e.t_ns
    ));
    match &e.kind {
        EventKind::Enter { name, id, parent } => {
            out.push_str(",\"name\":\"");
            escape_json(name, out);
            out.push_str(&format!(
                "\",\"id\":\"{id:016x}\",\"parent\":\"{parent:016x}\""
            ));
        }
        EventKind::Exit { name, id } => {
            out.push_str(",\"name\":\"");
            escape_json(name, out);
            out.push_str(&format!("\",\"id\":\"{id:016x}\""));
        }
        EventKind::Instant { name, detail } => {
            out.push_str(",\"name\":\"");
            escape_json(name, out);
            out.push_str("\",\"detail\":\"");
            escape_json(detail, out);
            out.push('"');
        }
    }
    out.push_str("}\n");
}

impl Trace {
    /// Render the trace as NDJSON, one event object per line (the
    /// `--trace FILE` format). IDs are 16-digit hex strings — JSON numbers
    /// cannot carry a full u64. If any events were dropped, a final
    /// `{"type":"dropped",…}` line says how many, so a truncated trace can
    /// never pass for a complete one.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            render_event_line(e, &mut out);
        }
        if self.dropped > 0 {
            out.push_str(&format!(
                "{{\"type\":\"dropped\",\"count\":{}}}\n",
                self.dropped
            ));
        }
        out
    }
}

/// One reassembled span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Deterministic span ID.
    pub id: u64,
    /// Parent span ID (`0` for roots).
    pub parent: u64,
    /// Total wall time of the span in nanoseconds (`0` if its `Exit` was
    /// never recorded). Scheduling-dependent — excluded from
    /// [`SpanForest::shape`].
    pub total_ns: u64,
    /// Child node indices into [`SpanForest::nodes`], in `(thread, seq)`
    /// order of their `Enter` events.
    pub children: Vec<usize>,
}

/// Span trees reassembled from a drained (or parsed) event stream.
#[derive(Debug, Clone, Default)]
pub struct SpanForest {
    /// Every span, in `(thread, seq)` order of its `Enter` event.
    pub nodes: Vec<SpanNode>,
    /// Indices of the roots (spans whose parent was never seen).
    pub roots: Vec<usize>,
}

impl SpanForest {
    /// A duration-free rendering of the forest — names, IDs, parentage and
    /// child order only. Two same-seed runs must produce equal shapes
    /// (pinned by the span-tree determinism test); timestamps legitimately
    /// differ.
    pub fn shape(&self) -> String {
        fn walk(forest: &SpanForest, idx: usize, depth: usize, out: &mut String) {
            let node = &forest.nodes[idx];
            out.push_str(&format!(
                "{}{} id={:016x} parent={:016x}\n",
                "  ".repeat(depth),
                node.name,
                node.id,
                node.parent
            ));
            for &child in &node.children {
                walk(forest, child, depth + 1, out);
            }
        }
        let mut out = String::new();
        for &root in &self.roots {
            walk(self, root, 0, &mut out);
        }
        out
    }
}

/// Reassemble span trees from an event stream in `(thread, seq)` order.
///
/// `Enter`/`Exit` pairing is per-thread by proper nesting (spans are RAII
/// guards, so a thread's spans nest properly). Cross-thread parentage uses
/// the explicit parent ID: a child attaches to the most recently entered
/// span with that ID. Instant events do not create nodes.
pub fn build_forest(events: &[Event]) -> SpanForest {
    let mut forest = SpanForest::default();
    let mut entered_at: Vec<u64> = Vec::new(); // node idx -> enter t_ns
    let mut last_with_id: std::collections::BTreeMap<u64, usize> =
        std::collections::BTreeMap::new();
    let mut open_per_thread: std::collections::BTreeMap<u32, Vec<usize>> =
        std::collections::BTreeMap::new();
    for e in events {
        match &e.kind {
            EventKind::Enter { name, id, parent } => {
                let idx = forest.nodes.len();
                forest.nodes.push(SpanNode {
                    name: name.clone(),
                    id: *id,
                    parent: *parent,
                    total_ns: 0,
                    children: Vec::new(),
                });
                entered_at.push(e.t_ns);
                match last_with_id.get(parent) {
                    Some(&p) if *parent != 0 => forest.nodes[p].children.push(idx),
                    _ => forest.roots.push(idx),
                }
                last_with_id.insert(*id, idx);
                open_per_thread.entry(e.thread).or_default().push(idx);
            }
            EventKind::Exit { id, .. } => {
                if let Some(stack) = open_per_thread.get_mut(&e.thread) {
                    // proper nesting: the top of this thread's stack is the
                    // span exiting; tolerate mismatches from partial traces
                    if let Some(pos) = stack.iter().rposition(|&i| forest.nodes[i].id == *id) {
                        let idx = stack.remove(pos);
                        forest.nodes[idx].total_ns = e.t_ns.saturating_sub(entered_at[idx]);
                    }
                }
            }
            EventKind::Instant { .. } => {}
        }
    }
    forest
}

/// Render flamegraph-compatible folded stacks: one `path;to;span value`
/// line per distinct stack, value = **self** time in microseconds (total
/// minus the children's totals). Lines are sorted by path, so the output
/// is stable for a fixed trace.
pub fn fold_stacks(forest: &SpanForest) -> Vec<(String, u64)> {
    fn walk(
        forest: &SpanForest,
        idx: usize,
        prefix: &str,
        folded: &mut std::collections::BTreeMap<String, u64>,
    ) {
        let node = &forest.nodes[idx];
        let path = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix};{}", node.name)
        };
        let children_ns: u64 = node
            .children
            .iter()
            .map(|&c| forest.nodes[c].total_ns)
            .sum();
        let self_us = node.total_ns.saturating_sub(children_ns) / 1_000;
        *folded.entry(path.clone()).or_insert(0) += self_us;
        for &child in &node.children {
            walk(forest, child, &path, folded);
        }
    }
    let mut folded = std::collections::BTreeMap::new();
    for &root in &forest.roots {
        walk(forest, root, "", &mut folded);
    }
    folded.into_iter().collect()
}

/// Per-phase wall-time table: `(span name, spans, total nanoseconds)`,
/// sorted by descending total.
pub fn phase_totals(forest: &SpanForest) -> Vec<(String, u64, u64)> {
    let mut totals: std::collections::BTreeMap<&str, (u64, u64)> =
        std::collections::BTreeMap::new();
    for node in &forest.nodes {
        let entry = totals.entry(&node.name).or_insert((0, 0));
        entry.0 += 1;
        entry.1 += node.total_ns;
    }
    let mut rows: Vec<(String, u64, u64)> = totals
        .into_iter()
        .map(|(name, (count, ns))| (name.to_string(), count, ns))
        .collect();
    rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seed::split_seed;

    /// The tracer is process-global state; exercise it from one test so
    /// parallel test threads cannot interleave buffers.
    #[test]
    fn spans_nest_record_and_reassemble() {
        set_enabled(true);
        let _ = drain(); // isolate from any earlier traffic on this thread
        {
            let request = Span::enter("request", split_seed(7, 0));
            {
                let _prepare = Span::enter("prepare", split_seed(7, 1));
                instant("traceparent", "00-abc-def-01");
            }
            // a "pool worker" attaching by explicit parent ID
            let _work = Span::child_of(request.id, "work_item", split_seed(7, 2));
        }
        set_enabled(false);
        let trace = drain();
        assert_eq!(trace.dropped, 0);
        // enter request, enter prepare, instant, exit prepare,
        // enter work_item, exit work_item, exit request
        assert_eq!(trace.events.len(), 7);
        let forest = build_forest(&trace.events);
        assert_eq!(forest.roots.len(), 1);
        let shape = forest.shape();
        assert!(shape.starts_with("request "), "{shape}");
        assert!(shape.contains("\n  prepare "), "{shape}");
        assert!(shape.contains("\n  work_item "), "{shape}");

        // NDJSON renders one line per event (no drop marker)
        let ndjson = trace.to_ndjson();
        assert_eq!(ndjson.lines().count(), 7, "{ndjson}");
        assert!(ndjson.contains("\"type\":\"instant\""), "{ndjson}");
        assert!(
            ndjson.contains(&format!("\"id\":\"{:016x}\"", split_seed(7, 1))),
            "{ndjson}"
        );

        // folded stacks and the phase table see all three spans
        let folded = fold_stacks(&forest);
        let paths: Vec<&str> = folded.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(
            paths,
            ["request", "request;prepare", "request;work_item"],
            "{folded:?}"
        );
        let phases = phase_totals(&forest);
        assert_eq!(phases.len(), 3);
        assert!(phases.iter().all(|(_, count, _)| *count == 1));

        // disabled tracing records nothing
        let _quiet = Span::enter("quiet", 1);
        drop(_quiet);
        assert!(drain().events.is_empty());
    }

    #[test]
    fn json_detail_strings_are_escaped() {
        let trace = Trace {
            events: vec![Event {
                thread: 0,
                seq: 0,
                t_ns: 5,
                kind: EventKind::Instant {
                    name: "note".into(),
                    detail: "say \"hi\"\\\n".into(),
                },
            }],
            dropped: 2,
        };
        let ndjson = trace.to_ndjson();
        assert!(ndjson.contains(r#""detail":"say \"hi\"\\\n""#), "{ndjson}");
        assert!(
            ndjson.ends_with("{\"type\":\"dropped\",\"count\":2}\n"),
            "{ndjson}"
        );
    }
}
