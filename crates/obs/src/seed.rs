//! Deterministic seed and identifier derivation.
//!
//! Sequential Monte-Carlo code conventionally threads *one* RNG stream
//! through every loop iteration, which makes the i-th draw depend on how
//! many draws iterations `0..i` consumed — and therefore on scheduling.
//! The workspace removes that dependency: each logical work item
//! (repetition index, trial index, database index, candidate index)
//! derives its own RNG stream from the pair `(seed, item_index)` via
//! [`split_seed`], a SplitMix64-style bit-mix finaliser:
//!
//! ```text
//! z  = seed ⊕ (index · 0x9E3779B97F4A7C15)      // golden-ratio spacing
//! z  = (z ⊕ (z ≫ 30)) · 0xBF58476D1CE4E5B9
//! z  = (z ⊕ (z ≫ 27)) · 0x94D049BB133111EB
//! s' = z ⊕ (z ≫ 31)                             // the item's stream seed
//! ```
//!
//! Because every item's randomness is a pure function of the engine seed
//! and the item's logical coordinates, any order-insensitive reduction of
//! the item outcomes is independent of thread count and scheduling.
//!
//! The tracer reuses the same derivation for span identifiers: a span's ID
//! is `split_seed` of its seed and work-item coordinates, never a wall
//! clock or ambient randomness, so two runs with the same seed produce
//! identical span trees.

/// Derive the RNG stream seed (or span ID) of work item `index` from a
/// parent `seed` (SplitMix64 finaliser over golden-ratio-spaced inputs;
/// see the module docs for the full scheme and the determinism argument).
#[inline]
pub fn split_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hierarchical split for doubly indexed work items, e.g.
/// `(oracle_call, repetition)`: `split_seed(split_seed(seed, a), b)`.
#[inline]
pub fn split_seed2(seed: u64, a: u64, b: u64) -> u64 {
    split_seed(split_seed(seed, a), b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn split_seed_is_a_pure_injective_looking_mix() {
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        let seeds: BTreeSet<u64> = (0..10_000).map(|i| split_seed(42, i)).collect();
        assert_eq!(seeds.len(), 10_000);
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        assert_ne!(split_seed2(9, 1, 2), split_seed2(9, 2, 1));
    }

    #[test]
    fn split_seed_values_are_pinned() {
        // The derivation is part of the reproducibility contract: seeds,
        // item seeds and span IDs recorded in old traces must stay
        // decodable. Pin a few values so the mix can never drift silently.
        assert_eq!(split_seed(0, 0), 0);
        assert_eq!(split_seed(0xC0FFEE, 1), 0x0f0d_f74b_5773_412a);
        assert_eq!(split_seed2(7, 3, 9), 0x8d4e_8d47_cc11_cf16);
    }
}
