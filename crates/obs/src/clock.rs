//! The workspace's sole sanctioned wall clock.
//!
//! The `cqc-audit` `wall-clock` rule flags every `Instant::now()` /
//! `SystemTime` read outside this crate: timing that leaks into an
//! estimate or a branch is a determinism hazard, so all of it funnels
//! through here, where the API makes the read-only contract structural —
//! a [`Stopwatch`] yields `Duration`s that land in telemetry fields and
//! trace events, and nothing else.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A started monotonic timer. The only way the workspace reads the clock:
/// start it, ask for the elapsed time, feed the `Duration` to telemetry.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Time elapsed since [`Stopwatch::start`] (or the last
    /// [`Stopwatch::restart`]).
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Reset the timer to now (idle-deadline tracking: restart on every
    /// successful read, expire when `elapsed` crosses the timeout).
    pub fn restart(&mut self) {
        self.started = Instant::now();
    }
}

/// The tracer's time base: a process-wide epoch fixed on first use.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the process-wide trace epoch. Used only to
/// stamp trace events — the values are scheduling-dependent, which is why
/// the deterministic span-tree comparison excludes them.
pub fn now_nanos() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Milliseconds since the Unix epoch, for naming artefacts that must be
/// orderable across process restarts (flight-recorder dump files). Like
/// every read in this module the value feeds telemetry only — it never
/// reaches an estimate or a branch on the request path.
pub fn unix_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_forward_time() {
        let mut sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        sw.restart();
        assert!(sw.elapsed() <= b + Duration::from_secs(1));
    }

    #[test]
    fn trace_epoch_is_monotonic() {
        let a = now_nanos();
        let b = now_nanos();
        assert!(b >= a);
    }
}
