//! The flight recorder: bounded per-thread rings of recent activity.
//!
//! Where [`crate::trace`] is an opt-in exporter (enable, run, drain) and
//! [`crate::wide`] is the per-request log, the flight recorder is the
//! **always-on last-few-seconds memory** of the server: every trace event
//! and every wide event is mirrored into a small per-thread ring buffer
//! that drops its oldest entry on overflow (counted, never blocking). When
//! something anomalous happens — a handler panic, a shed burst, a request
//! over the slow threshold — the server snapshots the rings into a
//! timestamped dump file, capturing what the process was doing *just
//! before* the anomaly. `GET /debug/flight` serves the same snapshot live.
//!
//! ## Cost model
//!
//! Off (the default), mirroring is one relaxed [`AtomicBool`] load at each
//! trace/wide recording site. On, each event costs one push into a
//! thread-local ring behind an uncontended mutex (the only other lock
//! holder is [`snapshot`], which is rare). The rings are bounded at
//! [`MAX_ENTRIES_PER_THREAD`] entries, so memory is fixed regardless of
//! uptime. Nothing on the request path reads flight state back —
//! invisibility is pinned by `trace_invisibility.rs` in `cqc-net`.

use crate::clock;
use crate::trace::{render_event_line, Event, EventKind};
use crate::wide::WideEvent;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cap on ring entries per thread; overflow drops the oldest (counted).
pub const MAX_ENTRIES_PER_THREAD: usize = 2048;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the flight recorder on or off process-wide. Estimates and wire
/// bytes are identical either way.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the flight recorder is enabled (one relaxed load — the entire
/// cost when off).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One ring entry: a mirrored trace event or a mirrored wide event.
#[derive(Debug, Clone)]
pub enum FlightEntry {
    /// A span enter/exit or instant, as recorded by the tracer.
    Trace(Event),
    /// A completed request's wide event.
    Wide(WideEvent),
}

impl FlightEntry {
    /// Timestamp of the entry (nanoseconds since the trace epoch).
    pub fn t_ns(&self) -> u64 {
        match self {
            FlightEntry::Trace(e) => e.t_ns,
            FlightEntry::Wide(w) => w.t_ns,
        }
    }
}

struct Ring {
    ordinal: u32,
    seq: u64,
    entries: VecDeque<FlightEntry>,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, entry: FlightEntry) {
        if self.entries.len() >= MAX_ENTRIES_PER_THREAD {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
        self.seq += 1;
    }
}

type SharedRing = Arc<Mutex<Ring>>;

fn registry() -> &'static Mutex<Vec<SharedRing>> {
    static REGISTRY: OnceLock<Mutex<Vec<SharedRing>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: RefCell<Option<SharedRing>> = const { RefCell::new(None) };
}

fn with_local_ring(f: impl FnOnce(&mut Ring)) {
    LOCAL_RING.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_none() {
            let mut all = registry().lock().unwrap_or_else(|e| e.into_inner());
            let ring = Arc::new(Mutex::new(Ring {
                ordinal: all.len() as u32,
                seq: 0,
                entries: VecDeque::new(),
                dropped: 0,
            }));
            all.push(Arc::clone(&ring));
            *slot = Some(ring);
        }
        if let Some(ring) = slot.as_ref() {
            let mut ring = ring.lock().unwrap_or_else(|e| e.into_inner());
            f(&mut ring);
        }
    });
}

/// Mirror one trace event kind into this thread's ring. Called by the
/// tracer's recording path when the recorder is [`enabled`]; stamps the
/// ring's own thread ordinal and sequence.
pub(crate) fn record_trace(kind: EventKind) {
    with_local_ring(|ring| {
        let event = Event {
            thread: ring.ordinal,
            seq: ring.seq,
            t_ns: clock::now_nanos(),
            kind,
        };
        ring.push(FlightEntry::Trace(event));
    });
}

/// Mirror one wide event into this thread's ring. Called by
/// [`crate::wide::WideLog::record`]; a no-op when the recorder is off.
pub(crate) fn record_wide(event: &WideEvent) {
    if !enabled() {
        return;
    }
    with_local_ring(|ring| ring.push(FlightEntry::Wide(event.clone())));
}

/// A copied snapshot of every thread's ring, merged by timestamp.
#[derive(Debug, Clone, Default)]
pub struct FlightSnapshot {
    /// The merged entries, oldest first.
    pub entries: Vec<FlightEntry>,
    /// Total entries dropped from rings since the last [`reset`].
    pub dropped: u64,
}

/// Copy every ring (without draining it) and merge the entries by
/// timestamp. The rings keep recording; a snapshot never loses data.
pub fn snapshot() -> FlightSnapshot {
    let all = registry().lock().unwrap_or_else(|e| e.into_inner());
    let mut snap = FlightSnapshot::default();
    for ring in all.iter() {
        let ring = ring.lock().unwrap_or_else(|e| e.into_inner());
        snap.entries.extend(ring.entries.iter().cloned());
        snap.dropped += ring.dropped;
    }
    snap.entries.sort_by_key(|e| e.t_ns());
    snap
}

/// Total entries dropped from the rings (overflow evictions) since the
/// last [`reset`].
pub fn dropped_total() -> u64 {
    let all = registry().lock().unwrap_or_else(|e| e.into_inner());
    all.iter()
        .map(|r| r.lock().unwrap_or_else(|e| e.into_inner()).dropped)
        .sum()
}

/// Clear every ring and its drop counter (ordinals and sequence counters
/// persist). Used by tests and by back-to-back benchmark runs.
pub fn reset() {
    let all = registry().lock().unwrap_or_else(|e| e.into_inner());
    for ring in all.iter() {
        let mut ring = ring.lock().unwrap_or_else(|e| e.into_inner());
        ring.entries.clear();
        ring.dropped = 0;
    }
}

impl FlightSnapshot {
    /// Render the snapshot as NDJSON: a header line with entry and drop
    /// counts, then one line per entry (trace events in the `--trace`
    /// format, wide events in the request-log format). This is both the
    /// `GET /debug/flight` body and the anomaly dump-file format.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"type\":\"flight\",\"entries\":{},\"dropped\":{}}}\n",
            self.entries.len(),
            self.dropped
        ));
        for entry in &self.entries {
            match entry {
                FlightEntry::Trace(e) => render_event_line(e, &mut out),
                FlightEntry::Wide(w) => {
                    out.push_str(&w.to_json_line());
                    out.push('\n');
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder is process-global state; exercise it from one test so
    /// parallel test threads cannot interleave rings.
    #[test]
    fn rings_bound_drop_oldest_and_snapshot() {
        reset();
        set_enabled(true);

        // Overflow one thread's ring: the oldest entries go, counted.
        for i in 0..(MAX_ENTRIES_PER_THREAD + 5) {
            record_trace(EventKind::Instant {
                name: "tick".into(),
                detail: format!("{i}"),
            });
        }
        let snap = snapshot();
        set_enabled(false);
        assert!(snap.dropped >= 5, "dropped {}", snap.dropped);
        let this_thread: Vec<&FlightEntry> = snap
            .entries
            .iter()
            .filter(|e| matches!(e, FlightEntry::Trace(ev) if matches!(&ev.kind, EventKind::Instant { name, .. } if name == "tick")))
            .collect();
        assert_eq!(this_thread.len(), MAX_ENTRIES_PER_THREAD);
        // The survivor set is the newest window.
        if let FlightEntry::Trace(first) = this_thread[0] {
            if let EventKind::Instant { detail, .. } = &first.kind {
                assert_eq!(detail, "5");
            }
        }

        // Snapshot renders a header plus one line per entry.
        let ndjson = snap.to_ndjson();
        let header = ndjson.lines().next().unwrap();
        assert!(
            header.starts_with("{\"type\":\"flight\",\"entries\":"),
            "{header}"
        );
        assert_eq!(ndjson.lines().count(), 1 + snap.entries.len());

        // Disabled: nothing new lands.
        record_trace(EventKind::Instant {
            name: "quiet".into(),
            detail: String::new(),
        });
        // record_trace is pub(crate) and unconditionally pushes; the gate
        // lives at the tracer call site — but record_wide gates itself:
        let w = WideEvent {
            seq: 0,
            t_ns: 1,
            protocol: "http",
            endpoint: "count",
            class: String::new(),
            outcome: crate::wide::Outcome::Ok,
            status: 200,
            queue_ns: 0,
            handle_ns: 0,
            prepare_ns: 0,
            evaluate_ns: 0,
            bytes: 0,
            slot: 0,
            gen: 0,
            conn_req: 0,
            trace: String::new(),
        };
        record_wide(&w);
        let after = snapshot();
        assert!(!after
            .entries
            .iter()
            .any(|e| matches!(e, FlightEntry::Wide(_))));
        reset();
        assert_eq!(dropped_total(), 0);
        assert!(snapshot().entries.is_empty());
    }
}
