//! The bounded dispatch queue between the readiness loop and the engine.
//!
//! The event thread frames requests and pushes [`Job`]s here; a small pool
//! of dispatch workers executes them against the shared [`cqc_serve`]
//! server (which in turn fans work across the `cqc-runtime` pool) and
//! pushes fully rendered response bytes back as [`Completion`]s, waking the
//! event thread through its wake socket. The queue is the admission-control
//! point: [`Dispatcher::try_enqueue`] refuses work beyond the configured
//! bound, and the event loop turns that refusal into a load-shed response
//! (HTTP 503 / NDJSON error line) instead of queueing without limit.
//!
//! A worker wraps every job in `catch_unwind`: a panicking handler is
//! counted (`cqc_connection_panics_total`) and answered with a 500-class
//! response rather than silently killing the connection — the
//! thread-per-connection model swallowed those panics on `JoinHandle` reap.

use crate::http::{finish_chunks, write_chunk, write_chunked_head, write_response_with};
use crate::server::{error_body, Shared};
use cqc_obs::wide::Outcome;
use cqc_obs::{Stopwatch, WideEvent};
use std::collections::VecDeque;
use std::net::TcpStream;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// Identifies a connection slot in the event loop, with a generation
/// counter so a completion for a closed connection can never be delivered
/// to an unrelated connection that reused the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Token {
    /// Index into the event loop's slot table.
    pub slot: usize,
    /// The slot's generation at dispatch time.
    pub gen: u64,
}

/// One dispatched request, owned by the queue until a worker takes it.
pub(crate) struct Job {
    /// The connection awaiting the response.
    pub token: Token,
    /// Ordinal of this request on its connection (1-based), for the wide
    /// event.
    pub conn_req: u64,
    /// Started at enqueue; its elapsed time at dequeue is the wide event's
    /// queue wait.
    pub queued: Stopwatch,
    /// What to execute.
    pub kind: JobKind,
}

/// The work a job carries; each variant renders to complete response bytes.
pub(crate) enum JobKind {
    /// `POST /count`: one request line, one JSON response.
    Count {
        /// The UTF-8 request body (validated by the event loop).
        text: String,
        /// `traceparent` header to echo, if the request carried one.
        traceparent: Option<String>,
        /// Whether the response must carry `Connection: close`.
        close: bool,
    },
    /// `POST /stream`: a batch of request lines, streamed back chunked
    /// (HTTP/1.1) or length-delimited (HTTP/1.0).
    Stream {
        /// The UTF-8 request body.
        text: String,
        /// HTTP/1.0 peer: buffer the lines instead of chunking.
        http10: bool,
        /// Whether the response must carry `Connection: close`.
        close: bool,
    },
    /// One raw NDJSON request line.
    Line {
        /// The request line, without its newline.
        line: String,
    },
}

/// A finished job: the rendered response bytes for one connection.
pub(crate) struct Completion {
    /// The connection the bytes belong to.
    pub token: Token,
    /// The complete response (headers and all, for HTTP).
    pub bytes: Vec<u8>,
    /// Close the connection once the bytes are flushed.
    pub close: bool,
}

struct QueueState {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
    /// Jobs queued or executing — the admission-control count.
    in_flight: AtomicU64,
    completions: Mutex<Vec<Completion>>,
}

/// Poison-safe lock: a worker panic is already counted and answered by
/// `catch_unwind`, so the queue data a poisoned lock guards is still
/// consistent — take it.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// The bounded dispatch queue plus its worker threads.
pub(crate) struct Dispatcher {
    state: Arc<QueueState>,
    /// Maximum `in_flight` before `try_enqueue` refuses.
    limit: u64,
    workers: Vec<JoinHandle<()>>,
}

impl Dispatcher {
    /// Spawn `workers` dispatch workers draining the queue into `shared`'s
    /// serve layer. `wake` is written one byte per completion so the event
    /// loop's `poll` returns promptly.
    pub fn start(
        shared: Arc<Shared>,
        workers: usize,
        limit: usize,
        wake: Arc<TcpStream>,
    ) -> Dispatcher {
        let state = Arc::new(QueueState {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            in_flight: AtomicU64::new(0),
            completions: Mutex::new(Vec::new()),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let state = Arc::clone(&state);
                let shared = Arc::clone(&shared);
                let wake = Arc::clone(&wake);
                std::thread::Builder::new()
                    .name(format!("cqc-net-worker-{i}"))
                    .spawn(move || worker_loop(&state, &shared, &wake))
            })
            .filter_map(Result::ok)
            .collect();
        Dispatcher {
            state,
            limit: limit.max(1) as u64,
            workers: handles,
        }
    }

    /// Admit a job unless the queue is at its bound. Refusal leaves the
    /// queue untouched — the caller sheds the request.
    pub fn try_enqueue(&self, job: Job) -> bool {
        let mut jobs = lock(&self.state.jobs);
        if self.state.in_flight.load(Ordering::Relaxed) >= self.limit {
            return false;
        }
        self.state.in_flight.fetch_add(1, Ordering::Relaxed);
        jobs.push_back(job);
        self.state.available.notify_one();
        true
    }

    /// Take every finished completion.
    pub fn drain_completions(&self) -> Vec<Completion> {
        std::mem::take(&mut *lock(&self.state.completions))
    }

    /// Jobs queued or executing right now (the `cqc_dispatch_queue_depth`
    /// gauge, sampled at scrape time).
    pub fn depth(&self) -> u64 {
        self.state.in_flight.load(Ordering::Relaxed)
    }

    /// Stop and join the workers. The event loop only calls this once the
    /// queue has drained (`depth() == 0`), so no job is abandoned.
    pub fn shutdown(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        {
            let _jobs = lock(&self.state.jobs);
            self.state.available.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(state: &QueueState, shared: &Shared, wake: &TcpStream) {
    loop {
        let job = {
            let mut jobs = lock(&state.jobs);
            loop {
                if let Some(job) = jobs.pop_front() {
                    break job;
                }
                if state.stop.load(Ordering::SeqCst) {
                    return;
                }
                jobs = state
                    .available
                    .wait(jobs)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        };
        let token = job.token;
        // Captured before execution so a panicking handler can still be
        // answered in the right protocol framing (and classified in its
        // wide event).
        let is_http = matches!(&job.kind, JobKind::Count { .. } | JobKind::Stream { .. });
        let (protocol, endpoint): (&'static str, &'static str) = match &job.kind {
            JobKind::Count { .. } => ("http", "count"),
            JobKind::Stream { .. } => ("http", "stream"),
            JobKind::Line { .. } => ("ndjson", "line"),
        };
        let wide_ctx = WideCtx {
            token,
            conn_req: job.conn_req,
            queue_ns: if cqc_obs::wide::enabled() {
                job.queued.elapsed().as_nanos().min(u64::MAX as u128) as u64
            } else {
                0
            },
        };
        let exec = Stopwatch::start();
        let (bytes, close) =
            match catch_unwind(AssertUnwindSafe(|| execute(shared, job.kind, &wide_ctx))) {
                Ok(rendered) => rendered,
                Err(_) => {
                    shared.metrics.connection_panics.inc();
                    cqc_obs::trace::instant("net_panic", if is_http { "http" } else { "ndjson" });
                    let body = error_body("request handler panicked");
                    // The panicking request's wide event is recorded *before*
                    // the flight dump below, so the dump always contains it —
                    // the phase accumulator keeps whatever the handler noted
                    // before unwinding.
                    if cqc_obs::wide::enabled() {
                        let handle_ns = exec.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                        emit_wide(
                            shared,
                            &wide_ctx,
                            protocol,
                            endpoint,
                            Outcome::Panic,
                            500,
                            handle_ns,
                            body.len(),
                            None,
                        );
                    }
                    shared.flight_dumps.dump("panic", true);
                    let mut out = Vec::new();
                    if is_http {
                        let _ = crate::http::write_response(
                            &mut out,
                            500,
                            "application/json",
                            body.as_bytes(),
                            true,
                        );
                    } else {
                        out.extend_from_slice(body.as_bytes());
                        out.push(b'\n');
                    }
                    (out, true)
                }
            };
        state.in_flight.fetch_sub(1, Ordering::Relaxed);
        lock(&state.completions).push(Completion {
            token,
            bytes,
            close,
        });
        // Wake the event loop; WouldBlock means a wake byte is already
        // pending, which is just as good.
        let mut wake_ref: &TcpStream = wake;
        let _ = std::io::Write::write(&mut wake_ref, &[1]);
    }
}

/// The wide-event coordinates of the job a worker is executing: slab
/// token, per-connection request ordinal, and the queue wait measured at
/// dequeue.
pub(crate) struct WideCtx {
    /// Connection slab token.
    pub token: Token,
    /// 1-based request ordinal on the connection.
    pub conn_req: u64,
    /// Nanoseconds the job waited in the dispatch queue.
    pub queue_ns: u64,
}

/// Record the wide event for one handled request line and run the
/// slow-request trigger. Drains the phase accumulator armed before the
/// handler ran; `trace_override` (the HTTP `traceparent` header) wins over
/// a `trace` member noted from the request body.
#[allow(clippy::too_many_arguments)]
fn emit_wide(
    shared: &Shared,
    ctx: &WideCtx,
    protocol: &'static str,
    endpoint: &'static str,
    outcome: Outcome,
    status: u16,
    handle_ns: u64,
    body_bytes: usize,
    trace_override: Option<&str>,
) {
    let phases = cqc_obs::wide::phases_take();
    shared.wide.record(WideEvent {
        seq: 0,
        t_ns: cqc_obs::clock::now_nanos(),
        protocol,
        endpoint,
        class: phases.class,
        outcome,
        status,
        queue_ns: ctx.queue_ns,
        handle_ns,
        prepare_ns: phases.prepare_ns,
        evaluate_ns: phases.evaluate_ns,
        bytes: body_bytes as u64,
        slot: ctx.token.slot,
        gen: ctx.token.gen,
        conn_req: ctx.conn_req,
        trace: trace_override.map(str::to_string).unwrap_or(phases.trace),
    });
}

/// One `handle_line_classified` call with its observability wrapping:
/// latency histogram, phase accumulator arm/drain, wide event, slow
/// trigger. Returns the response body and its error flag — the response
/// bytes are untouched by any of the wrapping.
fn handle_observed(
    shared: &Shared,
    ctx: &WideCtx,
    protocol: &'static str,
    endpoint: &'static str,
    line: &str,
    trace_override: Option<&str>,
) -> (String, bool) {
    let wide_on = cqc_obs::wide::enabled();
    if wide_on {
        cqc_obs::wide::phases_begin();
    }
    let start = Stopwatch::start();
    let (body, is_error) = shared.serve.handle_line_classified(line);
    let elapsed = start.elapsed();
    shared.metrics.latency.record(elapsed);
    shared.count_served();
    let handle_ns = elapsed.as_nanos().min(u64::MAX as u128) as u64;
    if wide_on {
        let outcome = if is_error {
            Outcome::Error
        } else {
            Outcome::Ok
        };
        let status = if is_error { 400 } else { 200 };
        emit_wide(
            shared,
            ctx,
            protocol,
            endpoint,
            outcome,
            status,
            handle_ns,
            body.len(),
            trace_override,
        );
    }
    shared.note_handle_ns(handle_ns);
    (body, is_error)
}

/// Execute one job against the serve layer and render the full response
/// bytes. This is the exact request semantics of the thread-per-connection
/// handlers (same calls, same order, same header bytes), relocated off the
/// event thread — response bytes stay a pure function of request bytes.
fn execute(shared: &Shared, kind: JobKind, ctx: &WideCtx) -> (Vec<u8>, bool) {
    match kind {
        JobKind::Count {
            text,
            traceparent,
            close,
        } => {
            // A request carrying a `traceparent` header gets it echoed
            // back verbatim on the response — correlation across the wire.
            // The echo is a pure function of the request bytes (tracing on
            // or off never changes it), so it cannot perturb transcript
            // comparison.
            if let Some(t) = &traceparent {
                cqc_obs::trace::instant("traceparent", t);
            }
            let (body, is_error) = handle_observed(
                shared,
                ctx,
                "http",
                "count",
                text.trim(),
                traceparent.as_deref(),
            );
            let status = if is_error { 400 } else { 200 };
            shared.metrics.observe_status(status);
            let extra: Vec<(&str, &str)> = traceparent
                .as_deref()
                .map(|t| vec![("Traceparent", t)])
                .unwrap_or_default();
            let mut out = Vec::new();
            let _ = write_response_with(
                &mut out,
                status,
                "application/json",
                &extra,
                body.as_bytes(),
                close,
            );
            (out, close)
        }
        JobKind::Stream {
            text,
            http10,
            close,
        } => {
            let mut out = Vec::new();
            if http10 {
                // HTTP/1.0 predates chunked encoding: buffer the response
                // lines and send them length-delimited.
                let mut body = String::new();
                for line in text.lines().filter(|l| !l.trim().is_empty()) {
                    let (response, _) = handle_observed(shared, ctx, "http", "stream", line, None);
                    body.push_str(&response);
                    body.push('\n');
                }
                shared.metrics.observe_status(200);
                let _ = crate::http::write_response(
                    &mut out,
                    200,
                    "application/x-ndjson",
                    body.as_bytes(),
                    close,
                );
            } else {
                shared.metrics.observe_status(200);
                let _ = write_chunked_head(&mut out, "application/x-ndjson", close);
                for line in text.lines().filter(|l| !l.trim().is_empty()) {
                    let (response, _) = handle_observed(shared, ctx, "http", "stream", line, None);
                    let _ = write_chunk(&mut out, format!("{response}\n").as_bytes());
                }
                let _ = finish_chunks(&mut out);
            }
            (out, close)
        }
        JobKind::Line { line } => {
            let (response, _) = handle_observed(
                shared,
                ctx,
                "ndjson",
                "line",
                line.trim_end_matches('\n'),
                None,
            );
            let mut out = response.into_bytes();
            out.push(b'\n');
            (out, false)
        }
    }
}
