//! A minimal std-only shim over `poll(2)` — the readiness primitive under
//! the event loop in [`crate::server`].
//!
//! The workspace vendors everything it needs (JSON, HTTP, audit lexer), and
//! readiness notification is no different: one `extern "C"` declaration and
//! a safe wrapper, instead of a `libc`/`mio` dependency. This module is the
//! crate's **only** unsafe code (the call into `poll`); it is inventoried in
//! `tests/golden/unsafe_inventory.txt` and fenced by the `unsafe-code`
//! audit rule, exactly like `cqc-runtime::pool`.
//!
//! On non-unix targets a degenerate fallback reports every requested event
//! as ready after a short sleep, degrading the event loop to a slow
//! spin-poll — correct (non-blocking sockets return `WouldBlock`), just not
//! efficient. The serving targets are unix.
#![allow(unsafe_code)]

/// Readable data (or a peer close) is pending.
pub const POLLIN: i16 = 0x001;
/// The socket can accept more outgoing bytes.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always reported, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (always reported, never requested).
pub const POLLHUP: i16 = 0x010;
/// The descriptor is invalid (always reported, never requested).
pub const POLLNVAL: i16 = 0x020;

/// The raw descriptor type fed to [`poll_fds`] (`i32` everywhere we run).
pub type RawFd = i32;

/// One registered descriptor: the fd, the requested `events` mask, and the
/// kernel-filled `revents` result mask. `#[repr(C)]` to match the layout of
/// `struct pollfd` (`int fd; short events; short revents;`).
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The descriptor to watch.
    pub fd: RawFd,
    /// Requested readiness ([`POLLIN`] | [`POLLOUT`], or `0` to watch for
    /// errors/hangup only).
    pub events: i16,
    /// Kernel-reported readiness; zeroed before each [`poll_fds`] call.
    pub revents: i16,
}

impl PollFd {
    /// A watch entry for `fd` with the given interest mask.
    pub fn new(fd: RawFd, events: i16) -> PollFd {
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Whether the kernel flagged any of `mask` (or an error/hangup
    /// condition, which `poll` reports regardless of the request).
    pub fn ready(&self, mask: i16) -> bool {
        self.revents & (mask | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// The raw descriptor of a socket, for registration with [`poll_fds`].
#[cfg(unix)]
pub fn raw_fd<T: std::os::unix::io::AsRawFd>(io: &T) -> RawFd {
    io.as_raw_fd()
}

/// Fallback for targets without `AsRawFd`: the descriptor value is unused
/// by the degenerate [`poll_fds`], so any placeholder works.
#[cfg(not(unix))]
pub fn raw_fd<T>(_io: &T) -> RawFd {
    -1
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::io;
    use std::os::raw::c_int;

    #[cfg(any(target_os = "macos", target_os = "ios"))]
    type NfdsT = std::os::raw::c_uint;
    #[cfg(not(any(target_os = "macos", target_os = "ios")))]
    type NfdsT = std::os::raw::c_ulong;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    }

    /// Block until a watched descriptor is ready, a signal interrupts, or
    /// `timeout_ms` elapses. Fills `revents` in place and returns the
    /// number of ready entries (0 on timeout). `EINTR` is retried.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        for fd in fds.iter_mut() {
            fd.revents = 0;
        }
        loop {
            // SAFETY: `fds` is a valid, exclusively borrowed slice for the
            // duration of the call; `PollFd` is `#[repr(C)]` and layout-
            // compatible with `struct pollfd`; the length is passed
            // alongside the pointer, so the kernel writes only within
            // bounds. No pointers are retained after the call returns.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollFd;
    use std::io;

    /// Degenerate readiness: sleep briefly, then report every requested
    /// event as ready. Non-blocking I/O keeps this correct (`WouldBlock`),
    /// at the cost of spinning at the sleep interval.
    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        let wait = timeout_ms.clamp(0, 5) as u64;
        std::thread::sleep(std::time::Duration::from_millis(wait));
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }
}

pub use sys::poll_fds;

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{Ipv4Addr, TcpListener, TcpStream};

    #[test]
    fn poll_reports_readable_after_a_write() {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        // Nothing written yet: a zero-timeout poll must report not-ready
        // (the degenerate non-unix fallback claims readiness, which the
        // read below tolerates via WouldBlock — only assert on unix).
        let mut fds = [PollFd::new(raw_fd(&rx), POLLIN)];
        #[cfg(unix)]
        {
            let n = poll_fds(&mut fds, 0).unwrap();
            assert_eq!(n, 0, "unexpected readiness: {fds:?}");
            assert!(!fds[0].ready(POLLIN));
        }

        tx.write_all(b"x").unwrap();
        tx.flush().unwrap();
        let n = poll_fds(&mut fds, 1000).unwrap();
        assert!(n >= 1);
        assert!(fds[0].ready(POLLIN));
        let mut byte = [0u8; 1];
        let mut rx_ref = &rx;
        match rx_ref.read(&mut byte) {
            Ok(1) => assert_eq!(byte[0], b'x'),
            Ok(n) => panic!("short read: {n}"),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
            Err(e) => panic!("read failed: {e}"),
        }
    }

    #[test]
    fn poll_times_out_on_a_quiet_socket() {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let _tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        let mut fds = [PollFd::new(raw_fd(&rx), POLLIN)];
        let n = poll_fds(&mut fds, 10).unwrap();
        #[cfg(unix)]
        assert_eq!(n, 0);
        #[cfg(not(unix))]
        let _ = n;
    }
}
