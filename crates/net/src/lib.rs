//! # cqc-net — the std-only network front end
//!
//! Puts real traffic on the sharded counting server of `cqc-serve`: a
//! threaded TCP accept loop that speaks **HTTP/1.1** (`POST /count`, a
//! streaming-NDJSON `POST /stream`, `GET /healthz`, `GET /metrics`) and the
//! **raw NDJSON** protocol of `cqc serve` on the same port (first-byte
//! sniff), plus a deterministic closed-loop **load generator** that drives
//! the server over loopback and reports throughput and latency
//! percentiles.
//!
//! The workspace has no crates.io access, so everything here — HTTP
//! parsing, metrics, the client — is built on `std::net` and `std::io`
//! alone.
//!
//! The design constraint inherited from the rest of the workspace is
//! **determinism over the wire**: response bodies are byte-identical
//! regardless of connection interleaving, client concurrency, worker-pool
//! width, or shard count, because every request carries its own seed and
//! all merges are index-ordered. `tests/wire_determinism.rs` pins the
//! matrix; `GET /metrics` exposes the observation side (latency, cache
//! hit rates) that *is* allowed to vary.
//!
//! ```no_run
//! use cqc_net::{NetConfig, RunningServer};
//! use cqc_net::loadgen::{run_against, LoadgenOptions};
//!
//! let server = RunningServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
//! let report = run_against(server.addr(), &LoadgenOptions::default()).unwrap();
//! println!("{:.0} req/s, p99 {:.2} ms", report.throughput_rps, report.p99_ms);
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod server;

pub use loadgen::{bench_json, obs_bench_json, run_against, LoadReport, LoadgenOptions, Protocol};
pub use metrics::Metrics;
pub use server::{NetConfig, RunningServer, ShutdownHandle};
