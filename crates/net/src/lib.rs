//! # cqc-net — the std-only network front end
//!
//! Puts real traffic on the sharded counting server of `cqc-serve`: an
//! **event-driven** TCP server — non-blocking sockets on a `poll(2)`
//! readiness loop, a per-connection state machine, and a bounded dispatch
//! queue feeding a small worker pool — that speaks **HTTP/1.1**
//! (`POST /count`, a streaming-NDJSON `POST /stream`, `GET /healthz`,
//! `GET /metrics`, and the read-only introspection endpoints
//! `GET /debug/requests`, `GET /debug/flight`, `GET /debug/loop`) and the
//! **raw NDJSON** protocol of `cqc serve` on the
//! same port (first-byte sniff), plus a deterministic closed-loop **load
//! generator** that drives the server over loopback and reports throughput
//! and latency percentiles (including a connection-scaling mode,
//! [`loadgen::run_scaling`]).
//!
//! The workspace has no crates.io access, so everything here — HTTP
//! parsing, readiness polling, metrics, the client — is built on
//! `std::net` and `std::io` alone. The single `unsafe` region (the
//! `poll(2)` call in [`poll`]) is inventoried and audited exactly like the
//! worker pool's.
//!
//! The design constraint inherited from the rest of the workspace is
//! **determinism over the wire**: response bodies are byte-identical
//! regardless of connection interleaving, client concurrency, worker-pool
//! width, or shard count, because every request carries its own seed and
//! all merges are index-ordered. Admission control (connection cap,
//! dispatch-queue bound) sheds load with fixed bytes — never by silently
//! dropping a peer. `tests/wire_determinism.rs` pins the matrix;
//! `GET /metrics` exposes the observation side (latency, cache hit rates,
//! queue depth) that *is* allowed to vary.
//!
//! ```no_run
//! use cqc_net::{NetConfig, RunningServer};
//! use cqc_net::loadgen::{run_against, LoadgenOptions};
//!
//! let server = RunningServer::bind("127.0.0.1:0", NetConfig::default()).unwrap();
//! let report = run_against(server.addr(), &LoadgenOptions::default()).unwrap();
//! println!("{:.0} req/s, p99 {:.2} ms", report.throughput_rps, report.p99_ms);
//! server.shutdown();
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub(crate) mod conn;
pub(crate) mod dispatch;
pub mod http;
pub mod loadgen;
pub mod metrics;
pub mod poll;
pub mod server;

pub use loadgen::{
    bench_json, obs_bench_json, obs_overhead, run_against, run_scaling, scaling_bench_json,
    LoadReport, LoadgenOptions, ObsOverhead, Protocol, ScalingPoint, ScalingReport,
};
pub use metrics::Metrics;
pub use server::{NetConfig, NetStats, RunningServer, ShutdownHandle};
