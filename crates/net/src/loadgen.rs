//! The deterministic closed-loop load generator behind `cqc loadgen`.
//!
//! The request mix is synthesized by `cqc_workloads::mix` as a pure
//! function of `(seed, request count)`; request `i` is rendered to a
//! serve-protocol JSON line with `id = i` and its own derived counting
//! seed. Connections partition the mix round-robin (`i mod connections`)
//! and each runs a closed loop — send one request, wait for its response,
//! send the next — over HTTP/1.1 keep-alive (`POST /count`) or the raw
//! NDJSON TCP protocol.
//!
//! **The transcript is the determinism witness.** Responses are reassembled
//! in request-index order into one newline-delimited string. Because every
//! response body is a pure function of its request (the serving layer's
//! contract), the transcript is byte-identical across connection counts,
//! protocols, server worker-pool widths, and shard counts — which is
//! exactly what `tests/wire_determinism.rs` and the CI smoke leg assert.
//! Latency and throughput, the *measured* quantities, are reported
//! separately and feed `BENCH_serve.json`.

use cqc_obs::Stopwatch;
use cqc_serve::json::Value;
use cqc_workloads::enumo::{class_name, suite_request_mix};
use cqc_workloads::mix::{request_mix, RequestSpec};
use cqc_workloads::QueryClass;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// Wire protocol the generator drives the server over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Protocol {
    /// `POST /count` over HTTP/1.1 with keep-alive.
    Http,
    /// Raw newline-delimited JSON over TCP (the sniffed protocol).
    Ndjson,
}

impl Protocol {
    /// The name used by `--protocol` and the bench report.
    pub fn name(&self) -> &'static str {
        match self {
            Protocol::Http => "http",
            Protocol::Ndjson => "ndjson",
        }
    }

    /// Parse a `--protocol` value.
    pub fn parse(raw: &str) -> Option<Protocol> {
        match raw {
            "http" => Some(Protocol::Http),
            "ndjson" | "tcp" => Some(Protocol::Ndjson),
            _ => None,
        }
    }
}

/// Load-generation options.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Total requests in the mix.
    pub requests: usize,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Mix seed (drives queries, databases, and per-request seeds).
    pub seed: u64,
    /// Optional `shards` member added to every request.
    pub shards: Option<usize>,
    /// Optional `method` member added to every request
    /// (`auto | fpras | fptras | exact`).
    pub method: Option<String>,
    /// Optional `(ε, δ)` accuracy overriding the mix's per-request
    /// defaults (the CLI wires `--epsilon`/`--delta` here when given).
    pub accuracy: Option<(f64, f64)>,
    /// Wire protocol.
    pub protocol: Protocol,
    /// Request source: `None` replays the curated mix of
    /// `cqc_workloads::mix`; `Some(class)` replays the enumerated suite
    /// mix of that Figure-1 class (`cqc_workloads::enumo`).
    pub suite: Option<QueryClass>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            requests: 100,
            connections: 4,
            seed: 0xC0FFEE,
            shards: None,
            method: None,
            accuracy: None,
            protocol: Protocol::Http,
            suite: None,
        }
    }
}

/// The outcome of a load-generation run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The options the run used (echoed into the bench report).
    pub options: LoadgenOptions,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Requests per second (requests / wall).
    pub throughput_rps: f64,
    /// Median request latency, milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile request latency, milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile request latency, milliseconds.
    pub p99_ms: f64,
    /// Responses that carried an `error` member (0 on a healthy run).
    pub errors: u64,
    /// Response-body bytes received.
    pub bytes_received: u64,
    /// Response lines in request-index order, `\n`-terminated — the
    /// byte-comparison witness.
    pub transcript: String,
}

/// Render request `spec` as one serve-protocol JSON line. The rendering is
/// deterministic (insertion-ordered members, canonical numbers), so the
/// request bytes — like the response bytes — admit transcript comparison.
pub fn render_request_line(
    spec: &RequestSpec,
    shards: Option<usize>,
    method: Option<&str>,
    accuracy: Option<(f64, f64)>,
) -> String {
    let (epsilon, delta) = accuracy.unwrap_or((spec.epsilon, spec.delta));
    let mut members = vec![
        ("id".to_string(), Value::Num(spec.index as f64)),
        ("query".to_string(), Value::Str(spec.query.to_string())),
        (
            "dbs".to_string(),
            Value::Arr(spec.dbs.iter().map(|d| Value::Str(d.clone())).collect()),
        ),
        // decimal-string form: carries the full u64 without 2^53 concerns
        ("seed".to_string(), Value::Str(spec.seed.to_string())),
        ("epsilon".to_string(), Value::Num(epsilon)),
        ("delta".to_string(), Value::Num(delta)),
    ];
    if let Some(shards) = shards {
        members.push(("shards".to_string(), Value::Num(shards as f64)));
    }
    if let Some(method) = method {
        members.push(("method".to_string(), Value::Str(method.to_string())));
    }
    Value::Obj(members).render()
}

/// How [`run_with`] drives its client fleet. [`run_against`] uses the
/// defaults; the connection-scaling mode shrinks client stacks (thousands
/// of client threads on one box), retries the connect storm, and
/// rendezvous-gates the fleet so wall-clock measures steady-state serving,
/// not connection setup.
struct DriveConfig {
    /// Client-thread stack size (`None` = platform default).
    stack_size: Option<usize>,
    /// Hold every connection at a barrier until all are connected, and
    /// start the clock at the release.
    rendezvous: bool,
    /// Connect attempts per connection (25 ms apart) before giving up.
    connect_attempts: u32,
}

impl Default for DriveConfig {
    fn default() -> Self {
        DriveConfig {
            stack_size: None,
            rendezvous: false,
            connect_attempts: 1,
        }
    }
}

/// Client-thread stack for the scaling mode: the client only renders and
/// buffers single requests, so a small stack lets thousands of connection
/// threads coexist.
const SCALING_CLIENT_STACK: usize = 256 * 1024;

/// Connect attempts in the scaling mode: a thousands-strong connect storm
/// overflows the listen backlog transiently, so clients retry.
const SCALING_CONNECT_ATTEMPTS: u32 = 40;

/// Drive `addr` with the seeded mix and assemble the report. Fails only on
/// transport errors; application-level `error` responses are counted and
/// kept in the transcript.
pub fn run_against(addr: SocketAddr, options: &LoadgenOptions) -> std::io::Result<LoadReport> {
    run_with(addr, options, &DriveConfig::default())
}

fn run_with(
    addr: SocketAddr,
    options: &LoadgenOptions,
    config: &DriveConfig,
) -> std::io::Result<LoadReport> {
    let connections = options.connections.max(1);
    let specs = match options.suite {
        None => request_mix(options.seed, options.requests),
        Some(class) => suite_request_mix(class, options.seed, options.requests),
    };
    let lines: Vec<String> = specs
        .iter()
        .map(|s| {
            render_request_line(
                s,
                options.shards,
                options.method.as_deref(),
                options.accuracy,
            )
        })
        .collect();

    // Responses land here as (request index, response line); latencies are
    // pooled across connections (nanoseconds).
    let results: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::with_capacity(lines.len()));
    let latencies: Mutex<Vec<u64>> = Mutex::new(Vec::with_capacity(lines.len()));
    // The barrier counts every connection thread plus the coordinator: the
    // fleet holds until everyone is connected, the coordinator restarts the
    // clock at the release, so wall measures serving — not the connect storm.
    let barrier = config
        .rendezvous
        .then(|| std::sync::Barrier::new(connections + 1));
    let mut started = Stopwatch::start();
    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut workers = Vec::new();
        for c in 0..connections {
            let lines = &lines;
            let results = &results;
            let latencies = &latencies;
            let options = &options;
            let barrier = barrier.as_ref();
            let body = move || -> std::io::Result<()> {
                let owned: Vec<usize> = (c..lines.len()).step_by(connections).collect();
                if owned.is_empty() {
                    // Still rendezvous: the barrier counts every thread.
                    if let Some(b) = barrier {
                        b.wait();
                    }
                    return Ok(());
                }
                let client = Client::connect(addr, options.protocol, config.connect_attempts);
                // A failed connect must still reach the barrier, or the
                // rest of the fleet deadlocks waiting for it.
                if let Some(b) = barrier {
                    b.wait();
                }
                let mut client = client?;
                let mut local_results = Vec::with_capacity(owned.len());
                let mut local_latencies = Vec::with_capacity(owned.len());
                for i in owned {
                    let start = Stopwatch::start();
                    let response = client.roundtrip(&lines[i])?;
                    local_latencies.push(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
                    local_results.push((i, response));
                }
                results.lock().expect("results lock").extend(local_results);
                latencies
                    .lock()
                    .expect("latencies lock")
                    .extend(local_latencies);
                Ok(())
            };
            let handle = match config.stack_size {
                None => scope.spawn(body),
                Some(stack) => std::thread::Builder::new()
                    .name(format!("cqc-loadgen-{c}"))
                    .stack_size(stack)
                    .spawn_scoped(scope, body)?,
            };
            workers.push(handle);
        }
        if let Some(b) = &barrier {
            b.wait();
            started.restart();
        }
        for worker in workers {
            worker.join().expect("loadgen connection panicked")?;
        }
        Ok(())
    })?;
    let wall = started.elapsed();

    let mut results = results.into_inner().expect("results lock");
    results.sort_unstable_by_key(|(i, _)| *i);
    let mut transcript = String::new();
    let mut errors = 0u64;
    let mut bytes_received = 0u64;
    for (_, line) in &results {
        bytes_received += line.len() as u64 + 1;
        if line.contains("\"error\":") {
            errors += 1;
        }
        transcript.push_str(line);
        transcript.push('\n');
    }
    let mut latencies = latencies.into_inner().expect("latencies lock");
    latencies.sort_unstable();
    let percentile = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        // nearest-rank on the sorted sample
        let rank = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[rank - 1] as f64 / 1e6
    };
    Ok(LoadReport {
        options: options.clone(),
        wall,
        throughput_rps: results.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: percentile(0.50),
        p95_ms: percentile(0.95),
        p99_ms: percentile(0.99),
        errors,
        bytes_received,
        transcript,
    })
}

/// FNV-1a (64-bit) of the transcript — a cheap cross-run fingerprint for
/// the bench report.
pub fn transcript_fingerprint(transcript: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in transcript.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Render the `BENCH_serve.json` document for a run. Wall-clock numbers
/// vary run to run; `transcript_fnv1a` must not (same seed, same mix).
pub fn bench_json(report: &LoadReport) -> String {
    let o = &report.options;
    Value::Obj(vec![
        ("bench".to_string(), Value::Str("serve_loadgen".to_string())),
        (
            "protocol".to_string(),
            Value::Str(o.protocol.name().to_string()),
        ),
        ("requests".to_string(), Value::Num(o.requests as f64)),
        ("connections".to_string(), Value::Num(o.connections as f64)),
        ("seed".to_string(), Value::Str(o.seed.to_string())),
        (
            "suite".to_string(),
            o.suite
                .map_or(Value::Null, |c| Value::Str(class_name(c).to_string())),
        ),
        (
            "shards".to_string(),
            o.shards.map_or(Value::Null, |s| Value::Num(s as f64)),
        ),
        (
            "method".to_string(),
            o.method
                .as_deref()
                .map_or(Value::Null, |m| Value::Str(m.to_string())),
        ),
        (
            "epsilon".to_string(),
            o.accuracy.map_or(Value::Null, |(e, _)| Value::Num(e)),
        ),
        (
            "delta".to_string(),
            o.accuracy.map_or(Value::Null, |(_, d)| Value::Num(d)),
        ),
        (
            "wall_seconds".to_string(),
            Value::Num(report.wall.as_secs_f64()),
        ),
        (
            "throughput_rps".to_string(),
            Value::Num(report.throughput_rps),
        ),
        (
            "latency_ms".to_string(),
            Value::Obj(vec![
                ("p50".to_string(), Value::Num(report.p50_ms)),
                ("p95".to_string(), Value::Num(report.p95_ms)),
                ("p99".to_string(), Value::Num(report.p99_ms)),
            ]),
        ),
        (
            "responses_with_error".to_string(),
            Value::Num(report.errors as f64),
        ),
        (
            "bytes_received".to_string(),
            Value::Num(report.bytes_received as f64),
        ),
        (
            "transcript_fnv1a".to_string(),
            Value::Str(format!(
                "{:016x}",
                transcript_fingerprint(&report.transcript)
            )),
        ),
    ])
    .render()
}

/// Summary of the per-repeat observability overhead of an `--obs-bench`
/// run (see [`obs_overhead`]).
#[derive(Debug, Clone, Copy)]
pub struct ObsOverhead {
    /// Median of the per-pair relative overheads, percent.
    pub median_pct: f64,
    /// Minimum (best-case) per-pair relative overhead, percent.
    pub min_pct: f64,
}

/// Median of `values` (mean of the two middles for even counts); `0.0` for
/// an empty slice.
fn median_of(values: &[f64]) -> f64 {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    match sorted.len() {
        0 => 0.0,
        n if n % 2 == 1 => sorted[n / 2],
        n => (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0,
    }
}

/// Per-pair relative overhead (%) of each observability-on run over its
/// observability-off partner, summarised by median and min. The median —
/// not a single pair's delta — is the committed figure: back-to-back wall
/// clocks on a busy host are noisy enough that one pair regularly reports
/// a *negative* overhead when the second run wins the scheduling lottery.
pub fn obs_overhead(pairs: &[(LoadReport, LoadReport)]) -> ObsOverhead {
    let pcts: Vec<f64> = pairs
        .iter()
        .map(|(off, on)| {
            let (wall_off, wall_on) = (off.wall.as_secs_f64(), on.wall.as_secs_f64());
            if wall_off > 0.0 {
                (wall_on - wall_off) / wall_off * 100.0
            } else {
                0.0
            }
        })
        .collect();
    let min_pct = if pcts.is_empty() {
        0.0
    } else {
        pcts.iter().copied().fold(f64::INFINITY, f64::min)
    };
    ObsOverhead {
        median_pct: median_of(&pcts),
        min_pct,
    }
}

/// Render the `BENCH_obs.json` document from interleaved
/// `(observability-off, observability-on)` run pairs of the same mix
/// (`cqc loadgen --obs-bench`). The document carries median wall-clock and
/// throughput figures for each side, the median and min per-pair overhead
/// (`overhead_pct` *is* the median, kept under its historical name so CI
/// greps and downstream dashboards keep working), and the invisibility
/// witness: whether every transcript in every pair is byte-identical (it
/// must be — observability can slow a run down, never change a response
/// byte).
pub fn obs_bench_json(pairs: &[(LoadReport, LoadReport)], trace_events: u64) -> String {
    let first = pairs
        .first()
        .expect("obs_bench_json needs at least one run pair");
    let o = &first.0.options;
    let walls_off: Vec<f64> = pairs
        .iter()
        .map(|(off, _)| off.wall.as_secs_f64())
        .collect();
    let walls_on: Vec<f64> = pairs.iter().map(|(_, on)| on.wall.as_secs_f64()).collect();
    let rps_off: Vec<f64> = pairs.iter().map(|(off, _)| off.throughput_rps).collect();
    let rps_on: Vec<f64> = pairs.iter().map(|(_, on)| on.throughput_rps).collect();
    let overhead = obs_overhead(pairs);
    let identical = pairs.iter().all(|(off, on)| {
        off.transcript == first.0.transcript && on.transcript == first.0.transcript
    });
    Value::Obj(vec![
        (
            "bench".to_string(),
            Value::Str("obs_trace_overhead".to_string()),
        ),
        (
            "protocol".to_string(),
            Value::Str(o.protocol.name().to_string()),
        ),
        ("requests".to_string(), Value::Num(o.requests as f64)),
        ("connections".to_string(), Value::Num(o.connections as f64)),
        ("seed".to_string(), Value::Str(o.seed.to_string())),
        ("repeats".to_string(), Value::Num(pairs.len() as f64)),
        (
            "wall_seconds_trace_off".to_string(),
            Value::Num(median_of(&walls_off)),
        ),
        (
            "wall_seconds_trace_on".to_string(),
            Value::Num(median_of(&walls_on)),
        ),
        (
            "throughput_rps_trace_off".to_string(),
            Value::Num(median_of(&rps_off)),
        ),
        (
            "throughput_rps_trace_on".to_string(),
            Value::Num(median_of(&rps_on)),
        ),
        ("overhead_pct".to_string(), Value::Num(overhead.median_pct)),
        (
            "overhead_pct_median".to_string(),
            Value::Num(overhead.median_pct),
        ),
        ("overhead_pct_min".to_string(), Value::Num(overhead.min_pct)),
        ("trace_events".to_string(), Value::Num(trace_events as f64)),
        ("transcripts_identical".to_string(), Value::Bool(identical)),
        (
            "transcript_fnv1a".to_string(),
            Value::Str(format!(
                "{:016x}",
                transcript_fingerprint(&first.0.transcript)
            )),
        ),
    ])
    .render()
}

/// One measured point on the connection-scaling curve.
#[derive(Debug)]
pub struct ScalingPoint {
    /// Concurrent keep-alive connections at this point.
    pub connections: usize,
    /// The full load report for this point (same mix as every other point).
    pub report: LoadReport,
}

/// The outcome of a connection-scaling sweep: the **same** seeded request
/// mix replayed at each connection count, so the transcripts are comparable
/// byte-for-byte and the curve isolates the cost of concurrency alone.
#[derive(Debug)]
pub struct ScalingReport {
    /// The base options every point shares (`connections` is overridden
    /// per point; `requests` is raised to at least the largest count so
    /// every connection owns at least one request).
    pub options: LoadgenOptions,
    /// One entry per requested connection count, in the requested order.
    pub points: Vec<ScalingPoint>,
    /// Whether every point produced byte-identical transcripts — the
    /// determinism witness for the event-driven server under scale.
    pub transcripts_identical: bool,
}

/// Sweep `addr` with the same seeded mix at each of `counts` concurrent
/// keep-alive connections (`cqc loadgen --scaling`). Each point runs with
/// small client stacks, a connect-retry loop, and a start barrier so the
/// wall clock measures steady-state serving rather than the connect storm.
pub fn run_scaling(
    addr: SocketAddr,
    base: &LoadgenOptions,
    counts: &[usize],
) -> std::io::Result<ScalingReport> {
    let max_count = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut options = base.clone();
    // Every connection must own at least one request, or transcripts of
    // different points would cover different request subsets.
    options.requests = options.requests.max(max_count);
    let config = DriveConfig {
        stack_size: Some(SCALING_CLIENT_STACK),
        rendezvous: true,
        connect_attempts: SCALING_CONNECT_ATTEMPTS,
    };
    let mut points = Vec::with_capacity(counts.len());
    for &count in counts {
        let mut point_options = options.clone();
        point_options.connections = count.max(1);
        let report = run_with(addr, &point_options, &config)?;
        points.push(ScalingPoint {
            connections: count.max(1),
            report,
        });
    }
    let transcripts_identical = points
        .windows(2)
        .all(|w| w[0].report.transcript == w[1].report.transcript);
    Ok(ScalingReport {
        options,
        points,
        transcripts_identical,
    })
}

/// Render the `BENCH_serve.json` document for a connection-scaling sweep
/// (`bench = "serve_scaling"`): one `points` entry per connection count
/// with throughput and latency percentiles, plus the cross-point
/// determinism witness.
pub fn scaling_bench_json(report: &ScalingReport) -> String {
    let o = &report.options;
    let points = report
        .points
        .iter()
        .map(|p| {
            Value::Obj(vec![
                ("connections".to_string(), Value::Num(p.connections as f64)),
                (
                    "wall_seconds".to_string(),
                    Value::Num(p.report.wall.as_secs_f64()),
                ),
                (
                    "throughput_rps".to_string(),
                    Value::Num(p.report.throughput_rps),
                ),
                (
                    "latency_ms".to_string(),
                    Value::Obj(vec![
                        ("p50".to_string(), Value::Num(p.report.p50_ms)),
                        ("p95".to_string(), Value::Num(p.report.p95_ms)),
                        ("p99".to_string(), Value::Num(p.report.p99_ms)),
                    ]),
                ),
                (
                    "responses_with_error".to_string(),
                    Value::Num(p.report.errors as f64),
                ),
                (
                    "transcript_fnv1a".to_string(),
                    Value::Str(format!(
                        "{:016x}",
                        transcript_fingerprint(&p.report.transcript)
                    )),
                ),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("bench".to_string(), Value::Str("serve_scaling".to_string())),
        (
            "protocol".to_string(),
            Value::Str(o.protocol.name().to_string()),
        ),
        ("requests".to_string(), Value::Num(o.requests as f64)),
        ("seed".to_string(), Value::Str(o.seed.to_string())),
        (
            "suite".to_string(),
            o.suite
                .map_or(Value::Null, |c| Value::Str(class_name(c).to_string())),
        ),
        (
            "shards".to_string(),
            o.shards.map_or(Value::Null, |s| Value::Num(s as f64)),
        ),
        (
            "method".to_string(),
            o.method
                .as_deref()
                .map_or(Value::Null, |m| Value::Str(m.to_string())),
        ),
        ("points".to_string(), Value::Arr(points)),
        (
            "transcripts_identical".to_string(),
            Value::Bool(report.transcripts_identical),
        ),
        (
            "transcript_fnv1a".to_string(),
            Value::Str(format!(
                "{:016x}",
                report
                    .points
                    .first()
                    .map_or(0, |p| transcript_fingerprint(&p.report.transcript))
            )),
        ),
    ])
    .render()
}

/// One closed-loop client connection.
enum Client {
    Http {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
        host: String,
    },
    Ndjson {
        reader: BufReader<TcpStream>,
        writer: TcpStream,
    },
}

impl Client {
    /// Connect, retrying up to `attempts` times 25 ms apart — connect
    /// storms at high connection counts can transiently overflow the
    /// listen backlog.
    fn connect(addr: SocketAddr, protocol: Protocol, attempts: u32) -> std::io::Result<Client> {
        let mut stream = TcpStream::connect(addr);
        for _ in 1..attempts.max(1) {
            if stream.is_ok() {
                break;
            }
            std::thread::sleep(Duration::from_millis(25));
            stream = TcpStream::connect(addr);
        }
        let stream = stream?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(match protocol {
            Protocol::Http => Client::Http {
                reader,
                writer: stream,
                host: addr.to_string(),
            },
            Protocol::Ndjson => Client::Ndjson {
                reader,
                writer: stream,
            },
        })
    }

    /// Send one request line, block for its response line.
    fn roundtrip(&mut self, line: &str) -> std::io::Result<String> {
        match self {
            Client::Ndjson { reader, writer } => {
                writer.write_all(line.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                let mut response = String::new();
                if reader.read_line(&mut response)? == 0 {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "server closed the NDJSON connection",
                    ));
                }
                Ok(response.trim_end_matches('\n').to_string())
            }
            Client::Http {
                reader,
                writer,
                host,
            } => {
                write!(
                    writer,
                    "POST /count HTTP/1.1\r\nHost: {host}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
                    line.len()
                )?;
                writer.write_all(line.as_bytes())?;
                writer.flush()?;
                read_http_response(reader)
            }
        }
    }
}

/// Read one fixed-length HTTP response, returning its body. Any status is
/// accepted — application errors travel in the body and are counted by the
/// caller; chunked responses are not expected from `/count`.
fn read_http_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let bad = |m: String| std::io::Error::new(std::io::ErrorKind::InvalidData, m);
    let mut status_line = String::new();
    if reader.read_line(&mut status_line)? == 0 {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the HTTP connection",
        ));
    }
    if !status_line.starts_with("HTTP/1.1 ") && !status_line.starts_with("HTTP/1.0 ") {
        return Err(bad(format!("bad status line `{}`", status_line.trim())));
    }
    let mut content_length: Option<usize> = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad("EOF inside response headers".to_string()));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .trim()
                        .parse()
                        .map_err(|_| bad(format!("bad Content-Length `{}`", value.trim())))?,
                );
            }
        }
    }
    let len = content_length.ok_or_else(|| bad("response without Content-Length".to_string()))?;
    let mut body = vec![0u8; len];
    std::io::Read::read_exact(reader, &mut body)?;
    String::from_utf8(body).map_err(|_| bad("non-UTF-8 response body".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_workloads::mix::request_spec;

    #[test]
    fn request_lines_render_deterministically() {
        let spec = request_spec(7, 3);
        let a = render_request_line(&spec, Some(4), None, None);
        let b = render_request_line(&spec, Some(4), None, None);
        assert_eq!(a, b);
        assert!(a.starts_with("{\"id\":3,"), "{a}");
        assert!(a.contains("\"shards\":4"), "{a}");
        assert!(!a.contains("\"method\""), "{a}");
        let c = render_request_line(&spec, None, Some("exact"), None);
        // an explicit accuracy overrides the mix's per-request defaults
        let tight = render_request_line(&spec, None, None, Some((0.01, 0.02)));
        assert!(tight.contains("\"epsilon\":0.01"), "{tight}");
        assert!(tight.contains("\"delta\":0.02"), "{tight}");
        assert!(c.contains("\"method\":\"exact\""), "{c}");
        assert!(!c.contains("\"shards\""), "{c}");
        // the request line is valid JSON for the serve-side parser
        assert!(cqc_serve::json::parse(&a).is_ok());
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        assert_eq!(transcript_fingerprint(""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(transcript_fingerprint("abc"), transcript_fingerprint("abc"));
        assert_ne!(transcript_fingerprint("abc"), transcript_fingerprint("abd"));
    }

    #[test]
    fn bench_json_is_valid_json() {
        let report = LoadReport {
            options: LoadgenOptions::default(),
            wall: Duration::from_millis(1234),
            throughput_rps: 81.0,
            p50_ms: 1.5,
            p95_ms: 3.0,
            p99_ms: 9.25,
            errors: 0,
            bytes_received: 4096,
            transcript: "{\"id\":0}\n".to_string(),
        };
        let text = bench_json(&report);
        let v = cqc_serve::json::parse(&text).expect("bench json parses");
        assert_eq!(
            v.get("bench").and_then(|b| b.as_str()),
            Some("serve_loadgen")
        );
        assert_eq!(v.get("requests").and_then(|r| r.as_u64()), Some(100));
        assert!(v.get("latency_ms").and_then(|l| l.get("p99")).is_some());
    }

    #[test]
    fn scaling_bench_json_carries_points_and_identity() {
        let mk = |transcript: &str| LoadReport {
            options: LoadgenOptions::default(),
            wall: Duration::from_millis(500),
            throughput_rps: 200.0,
            p50_ms: 1.0,
            p95_ms: 2.0,
            p99_ms: 3.0,
            errors: 0,
            bytes_received: 9,
            transcript: transcript.to_string(),
        };
        let report = ScalingReport {
            options: LoadgenOptions::default(),
            points: vec![
                ScalingPoint {
                    connections: 64,
                    report: mk("{\"id\":0}\n"),
                },
                ScalingPoint {
                    connections: 256,
                    report: mk("{\"id\":0}\n"),
                },
            ],
            transcripts_identical: true,
        };
        let text = scaling_bench_json(&report);
        let v = cqc_serve::json::parse(&text).expect("scaling bench json parses");
        assert_eq!(
            v.get("bench").and_then(|b| b.as_str()),
            Some("serve_scaling")
        );
        let points = match v.get("points") {
            Some(Value::Arr(points)) => points,
            other => panic!("points member missing or not an array: {other:?}"),
        };
        assert_eq!(points.len(), 2);
        assert_eq!(
            points[0].get("connections").and_then(|c| c.as_u64()),
            Some(64)
        );
        assert!(points[1]
            .get("latency_ms")
            .and_then(|l| l.get("p99"))
            .is_some());
        assert!(text.contains("\"transcripts_identical\":true"));
    }

    #[test]
    fn obs_bench_json_reports_overhead_and_identity() {
        let mk = |wall_ms: u64, transcript: &str| LoadReport {
            options: LoadgenOptions::default(),
            wall: Duration::from_millis(wall_ms),
            throughput_rps: 50.0,
            p50_ms: 1.0,
            p95_ms: 2.0,
            p99_ms: 3.0,
            errors: 0,
            bytes_received: 9,
            transcript: transcript.to_string(),
        };
        // three repeats with per-pair overheads +5 %, +3 %, -1 %: the
        // committed figure is the median (+3 %), the min records the
        // best-case pair (which may be negative on a noisy host)
        let pairs = vec![
            (mk(1000, "{\"id\":0}\n"), mk(1050, "{\"id\":0}\n")),
            (mk(1000, "{\"id\":0}\n"), mk(1030, "{\"id\":0}\n")),
            (mk(1000, "{\"id\":0}\n"), mk(990, "{\"id\":0}\n")),
        ];
        let text = obs_bench_json(&pairs, 42);
        let v = cqc_serve::json::parse(&text).expect("obs bench json parses");
        assert_eq!(
            v.get("bench").and_then(|b| b.as_str()),
            Some("obs_trace_overhead")
        );
        assert_eq!(v.get("trace_events").and_then(|t| t.as_u64()), Some(42));
        assert_eq!(v.get("repeats").and_then(|r| r.as_u64()), Some(3));
        let overhead = v.get("overhead_pct").and_then(|p| p.as_f64()).unwrap();
        assert!((overhead - 3.0).abs() < 1e-9, "{overhead}");
        let med = v
            .get("overhead_pct_median")
            .and_then(|p| p.as_f64())
            .unwrap();
        assert!((med - 3.0).abs() < 1e-9, "{med}");
        let min = v.get("overhead_pct_min").and_then(|p| p.as_f64()).unwrap();
        assert!((min + 1.0).abs() < 1e-9, "{min}");
        assert_eq!(
            v.get("transcripts_identical").map(|b| b.render()),
            Some("true".to_string())
        );
        let stats = obs_overhead(&pairs);
        assert!((stats.median_pct - 3.0).abs() < 1e-9);
        assert!((stats.min_pct + 1.0).abs() < 1e-9);
        // one diverging transcript anywhere in the repeats flips the witness
        let diverged = obs_bench_json(
            &[
                (mk(1000, "{\"id\":0}\n"), mk(1030, "{\"id\":0}\n")),
                (mk(1000, "{\"id\":0}\n"), mk(1030, "{\"id\":1}\n")),
            ],
            42,
        );
        assert!(diverged.contains("\"transcripts_identical\":false"));
    }
}
