//! Serving metrics: the network layer's counters, gauges and request
//! latency histogram, registered — together with the serve-layer series —
//! in one `cqc_obs::Registry` and rendered by `GET /metrics`.
//!
//! Everything here is observation-only — series are relaxed atomics updated
//! off the hot path and can never influence a response body, so the
//! wire-determinism contract is untouched.
//!
//! ## Byte-stable rendering
//!
//! The registry renders in registration order, and [`Metrics::new`]
//! registers exactly the series the pre-registry implementation rendered,
//! in the same order, with the same help strings — so the historical byte
//! prefix of `/metrics` (net counters, serve counters, the
//! `cqc_request_latency_seconds` histogram) is unchanged. Series added
//! with the unified registry — the extended serve series and the gauges —
//! are strictly appended after that prefix. Registering everything at
//! construction time is also the idle-server fix: a scrape against a
//! server that has served nothing sees every series, zero-valued, instead
//! of an empty document.

use cqc_obs::{Counter, Gauge, Histogram, Registry};
use cqc_serve::Server;
use std::sync::Arc;

pub use cqc_obs::metrics::LATENCY_BUCKET_BOUNDS_NANOS;

/// The network layer's handles into the shared registry (the serve-layer
/// counters — requests, plan cache, work items — are registered by
/// `cqc_serve::Server` itself in [`Metrics::new`]).
#[derive(Debug)]
pub struct Metrics {
    /// TCP connections accepted.
    pub connections: Arc<Counter>,
    /// HTTP requests parsed (any endpoint).
    pub http_requests: Arc<Counter>,
    /// Raw NDJSON lines served over sniffed TCP connections.
    pub ndjson_lines: Arc<Counter>,
    /// HTTP responses by coarse status class.
    pub responses_2xx: Arc<Counter>,
    /// 4xx responses (bad requests, unknown endpoints).
    pub responses_4xx: Arc<Counter>,
    /// Count-request handling latency (both protocols).
    pub latency: Arc<Histogram>,
    /// Worker-pool width (participants), sampled at scrape time.
    pub pool_width: Arc<Gauge>,
    /// Pool dispatches currently in flight, sampled at scrape time.
    pub pool_queue_depth: Arc<Gauge>,
    /// Open TCP connections, maintained live by the event loop.
    pub active_connections: Arc<Gauge>,
    /// Connections refused at the admission cap with a load-shed response.
    pub connections_rejected: Arc<Counter>,
    /// Requests shed because the dispatch queue was at its bound.
    pub requests_shed: Arc<Counter>,
    /// Request handlers that panicked (answered 500-class, never swallowed).
    pub connection_panics: Arc<Counter>,
    /// Transient accept failures the event loop backed off from.
    pub accept_errors: Arc<Counter>,
    /// Requests queued or executing in the dispatcher, sampled at scrape
    /// time.
    pub dispatch_queue_depth: Arc<Gauge>,
    /// Event-loop processing time per tick (poll return to iteration end).
    pub event_loop_tick: Arc<Histogram>,
    /// Polls woken by the wake socket (completions, shutdown signals).
    pub event_loop_wakeups: Arc<Counter>,
}

impl Metrics {
    /// Register every `/metrics` series — the net layer's, then (via
    /// `serve`) the serving core's — in canonical order and return the net
    /// layer's handles.
    pub fn new(registry: &Registry, serve: &Server) -> Metrics {
        // The historical byte prefix: five net counters, six serve
        // counters, the latency histogram — names, order and help strings
        // are load-bearing (pinned by `tests/metrics_golden.rs`).
        let connections = registry.counter("cqc_connections_total", "TCP connections accepted");
        let http_requests = registry.counter("cqc_http_requests_total", "HTTP requests parsed");
        let ndjson_lines =
            registry.counter("cqc_ndjson_lines_total", "raw NDJSON lines served over TCP");
        let responses_2xx = registry.counter(
            "cqc_http_responses_2xx_total",
            "HTTP responses with a 2xx status",
        );
        let responses_4xx = registry.counter(
            "cqc_http_responses_4xx_total",
            "HTTP responses with a 4xx status",
        );
        serve.register_metrics(registry);
        let latency =
            registry.histogram("cqc_request_latency_seconds", LATENCY_BUCKET_BOUNDS_NANOS);
        // Everything below is strictly appended after the historical
        // prefix: extended serve series, then the sampled gauges.
        serve.register_extended_metrics(registry);
        let pool_width = registry.gauge(
            "cqc_pool_width",
            "persistent worker-pool width (participating threads)",
        );
        let pool_queue_depth = registry.gauge(
            "cqc_pool_queue_depth",
            "pool dispatches currently in flight",
        );
        let active_connections =
            registry.gauge("cqc_active_connections", "TCP connections currently open");
        // Admission-control series (event-driven rewrite): appended after
        // the pre-existing gauges so the historical prefix stays stable.
        let connections_rejected = registry.counter(
            "cqc_connections_rejected_total",
            "connections rejected at the admission cap with a load-shed response",
        );
        let requests_shed = registry.counter(
            "cqc_requests_shed_total",
            "requests shed with an overload response (dispatch queue full)",
        );
        let connection_panics = registry.counter(
            "cqc_connection_panics_total",
            "request handlers that panicked (answered with an internal error)",
        );
        let accept_errors = registry.counter(
            "cqc_accept_errors_total",
            "transient accept failures backed off by the event loop",
        );
        let dispatch_queue_depth = registry.gauge(
            "cqc_dispatch_queue_depth",
            "requests queued or executing in the dispatcher",
        );
        // Event-loop lag series (observability PR): appended after the
        // admission-control block so every earlier byte of the scrape is
        // untouched. They back `GET /debug/loop` and stand alone as lag
        // alerting signals.
        let event_loop_tick =
            registry.histogram("cqc_event_loop_tick_seconds", LATENCY_BUCKET_BOUNDS_NANOS);
        let event_loop_wakeups = registry.counter(
            "cqc_event_loop_wakeups_total",
            "event-loop polls woken by the wake socket",
        );
        Metrics {
            connections,
            http_requests,
            ndjson_lines,
            responses_2xx,
            responses_4xx,
            latency,
            pool_width,
            pool_queue_depth,
            active_connections,
            connections_rejected,
            requests_shed,
            connection_panics,
            accept_errors,
            dispatch_queue_depth,
            event_loop_tick,
            event_loop_wakeups,
        }
    }

    /// Bump a status-class counter for an HTTP response.
    pub fn observe_status(&self, status: u16) {
        if (200..300).contains(&status) {
            self.responses_2xx.inc();
        } else {
            self.responses_4xx.inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cqc_serve::ServerConfig;

    #[test]
    fn rendering_starts_with_the_historical_series_in_order() {
        let registry = Registry::new();
        let serve = Server::new(ServerConfig::default());
        let m = Metrics::new(&registry, &serve);
        m.connections.add(2);
        m.observe_status(200);
        m.observe_status(404);
        let text = registry.render();
        // the historical prefix, in registration (= rendering) order
        let needles = [
            "cqc_connections_total 2",
            "cqc_http_requests_total 0",
            "cqc_ndjson_lines_total 0",
            "cqc_http_responses_2xx_total 1",
            "cqc_http_responses_4xx_total 1",
            "cqc_serve_requests_total 0",
            "cqc_serve_request_errors_total 0",
            "cqc_shard_work_items_total 0",
            "cqc_plan_cache_hits_total 0",
            "cqc_plan_cache_misses_total 0",
            "cqc_plan_cache_evictions_total 0",
            "# TYPE cqc_request_latency_seconds histogram",
        ];
        let mut last = 0;
        for needle in needles {
            let at = text.find(needle).unwrap_or_else(|| {
                panic!("missing `{needle}` in:\n{text}");
            });
            assert!(at >= last, "`{needle}` out of order in:\n{text}");
            last = at;
        }
    }

    #[test]
    fn extended_series_render_zeroed_on_an_idle_registry() {
        let registry = Registry::new();
        let serve = Server::new(ServerConfig::default());
        let _m = Metrics::new(&registry, &serve);
        let text = registry.render();
        for needle in [
            "cqc_oracle_calls_total 0",
            "cqc_colour_repetitions_total 0",
            "cqc_shard_merge_seconds_count 0",
            "cqc_pool_width 0",
            "cqc_pool_queue_depth 0",
            "cqc_active_connections 0",
            "cqc_connections_rejected_total 0",
            "cqc_requests_shed_total 0",
            "cqc_connection_panics_total 0",
            "cqc_accept_errors_total 0",
            "cqc_dispatch_queue_depth 0",
            "cqc_event_loop_tick_seconds_count 0",
            "cqc_event_loop_wakeups_total 0",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
        // the extended series come after the historical histogram
        let hist = text.find("cqc_request_latency_seconds_count").unwrap();
        let ext = text.find("cqc_oracle_calls_total").unwrap();
        assert!(hist < ext, "{text}");
    }
}
