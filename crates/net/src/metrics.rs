//! Serving metrics: relaxed atomic counters plus a fixed-bucket latency
//! histogram, rendered in the Prometheus text exposition format by
//! `GET /metrics`.
//!
//! Everything here is observation-only — counters are updated with relaxed
//! ordering off the hot path and can never influence a response body, so
//! the wire-determinism contract is untouched.

use cqc_serve::StatsSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Upper bounds of the latency histogram buckets, in nanoseconds
/// (≈ log-spaced from 100 µs to 10 s, plus the implicit `+Inf`).
pub const LATENCY_BUCKET_BOUNDS_NANOS: &[u64] = &[
    100_000,        // 100 µs
    316_000,        // 316 µs
    1_000_000,      // 1 ms
    3_160_000,      // 3.16 ms
    10_000_000,     // 10 ms
    31_600_000,     // 31.6 ms
    100_000_000,    // 100 ms
    316_000_000,    // 316 ms
    1_000_000_000,  // 1 s
    3_160_000_000,  // 3.16 s
    10_000_000_000, // 10 s
];

/// A fixed-bucket cumulative histogram of request latencies.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>, // one per bound, plus +Inf
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: (0..=LATENCY_BUCKET_BOUNDS_NANOS.len())
                .map(|_| AtomicU64::new(0))
                .collect(),
            sum_nanos: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Record one observation.
    pub fn record(&self, latency: Duration) {
        let nanos = latency.as_nanos().min(u64::MAX as u128) as u64;
        let slot = LATENCY_BUCKET_BOUNDS_NANOS
            .iter()
            .position(|&bound| nanos <= bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_NANOS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Render the histogram in Prometheus text format under `name`.
    fn render(&self, name: &str, out: &mut String) {
        out.push_str(&format!("# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, &bound) in LATENCY_BUCKET_BOUNDS_NANOS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                bound as f64 / 1e9
            ));
        }
        cumulative += self.buckets[LATENCY_BUCKET_BOUNDS_NANOS.len()].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!(
            "{name}_sum {}\n",
            self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
        ));
        out.push_str(&format!("{name}_count {cumulative}\n"));
    }
}

/// The network layer's own counters (the serve-layer counters — requests,
/// plan cache, work items — live in `cqc_serve::Server` and are merged in
/// at render time).
#[derive(Debug, Default)]
pub struct Metrics {
    /// TCP connections accepted.
    pub connections: AtomicU64,
    /// HTTP requests parsed (any endpoint).
    pub http_requests: AtomicU64,
    /// Raw NDJSON lines served over sniffed TCP connections.
    pub ndjson_lines: AtomicU64,
    /// HTTP responses by coarse status class.
    pub responses_2xx: AtomicU64,
    /// 4xx responses (bad requests, unknown endpoints).
    pub responses_4xx: AtomicU64,
    /// Count-request handling latency (both protocols).
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Bump a status-class counter for an HTTP response.
    pub fn observe_status(&self, status: u16) {
        if (200..300).contains(&status) {
            self.responses_2xx.fetch_add(1, Ordering::Relaxed);
        } else {
            self.responses_4xx.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Render every metric — net-layer counters, the merged serve-layer
    /// snapshot, and the latency histogram — in Prometheus text format.
    pub fn render_prometheus(&self, serve: &StatsSnapshot) -> String {
        let mut out = String::new();
        let mut counter = |name: &str, help: &str, value: u64| {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        };
        counter(
            "cqc_connections_total",
            "TCP connections accepted",
            self.connections.load(Ordering::Relaxed),
        );
        counter(
            "cqc_http_requests_total",
            "HTTP requests parsed",
            self.http_requests.load(Ordering::Relaxed),
        );
        counter(
            "cqc_ndjson_lines_total",
            "raw NDJSON lines served over TCP",
            self.ndjson_lines.load(Ordering::Relaxed),
        );
        counter(
            "cqc_http_responses_2xx_total",
            "HTTP responses with a 2xx status",
            self.responses_2xx.load(Ordering::Relaxed),
        );
        counter(
            "cqc_http_responses_4xx_total",
            "HTTP responses with a 4xx status",
            self.responses_4xx.load(Ordering::Relaxed),
        );
        counter(
            "cqc_serve_requests_total",
            "count requests handled by the serving core",
            serve.requests,
        );
        counter(
            "cqc_serve_request_errors_total",
            "count requests answered with an error",
            serve.errors,
        );
        counter(
            "cqc_shard_work_items_total",
            "work items (databases) evaluated across all requests",
            serve.work_items,
        );
        counter(
            "cqc_plan_cache_hits_total",
            "requests served from the prepared-plan cache",
            serve.plan_cache_hits,
        );
        counter(
            "cqc_plan_cache_misses_total",
            "requests that prepared a new plan",
            serve.plan_cache_misses,
        );
        counter(
            "cqc_plan_cache_evictions_total",
            "plans evicted by the LRU capacity bound",
            serve.plan_cache_evictions,
        );
        self.latency.render("cqc_request_latency_seconds", &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = LatencyHistogram::default();
        h.record(Duration::from_micros(50)); // below first bound
        h.record(Duration::from_millis(2)); // 3.16 ms bucket
        h.record(Duration::from_secs(60)); // +Inf
        assert_eq!(h.count(), 3);
        let mut out = String::new();
        h.render("lat", &mut out);
        assert!(out.contains("lat_bucket{le=\"0.0001\"} 1\n"), "{out}");
        assert!(out.contains("lat_bucket{le=\"0.00316\"} 2\n"), "{out}");
        assert!(out.contains("lat_bucket{le=\"+Inf\"} 3\n"), "{out}");
        assert!(out.contains("lat_count 3\n"), "{out}");
    }

    #[test]
    fn prometheus_rendering_includes_serve_counters() {
        let m = Metrics::default();
        m.connections.fetch_add(2, Ordering::Relaxed);
        m.observe_status(200);
        m.observe_status(404);
        let serve = StatsSnapshot {
            requests: 7,
            errors: 1,
            work_items: 12,
            plan_cache_hits: 5,
            plan_cache_misses: 2,
            plan_cache_evictions: 1,
        };
        let text = m.render_prometheus(&serve);
        for needle in [
            "cqc_connections_total 2",
            "cqc_http_responses_2xx_total 1",
            "cqc_http_responses_4xx_total 1",
            "cqc_serve_requests_total 7",
            "cqc_serve_request_errors_total 1",
            "cqc_shard_work_items_total 12",
            "cqc_plan_cache_hits_total 5",
            "cqc_plan_cache_misses_total 2",
            "cqc_plan_cache_evictions_total 1",
            "# TYPE cqc_request_latency_seconds histogram",
        ] {
            assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
        }
    }
}
