//! The network front end: a threaded TCP server that speaks HTTP/1.1 *and*
//! raw newline-delimited JSON on one port, wrapping the sharded counting
//! core of `cqc_serve::Server`.
//!
//! ## Protocol sniffing
//!
//! The first byte of a connection decides its protocol: `{` means the peer
//! is speaking the raw NDJSON request protocol of `cqc serve` (one JSON
//! request per line, one JSON response per line); anything else is parsed
//! as HTTP/1.1. No HTTP method starts with `{`, so the sniff is exact.
//!
//! ## Endpoints
//!
//! | Endpoint | Behaviour |
//! |---|---|
//! | `POST /count` | one serve-protocol JSON request in the body; JSON response (HTTP 400 for `error` responses, body identical to NDJSON mode) |
//! | `POST /stream` | NDJSON request lines in the body; chunked NDJSON response, one chunk per response line |
//! | `GET /healthz` | `{"status":"ok"}` |
//! | `GET /metrics` | Prometheus text: request/plan-cache/shard counters + latency histogram |
//!
//! ## Determinism over TCP
//!
//! Response *bodies* are byte-identical regardless of connection
//! interleaving, client concurrency, worker-pool width, or shard count:
//! every request carries its own seed, work item `i` always runs under
//! `split_seed(seed, i)`, and merges are index-ordered (see `cqc-serve`).
//! The network layer adds nothing nondeterministic around the body — HTTP
//! headers are a fixed function of the body — so transcript comparison is
//! exact. `tests/wire_determinism.rs` pins the full matrix.
//!
//! ## Graceful shutdown
//!
//! [`ShutdownHandle::signal`] (or reaching `max_requests`) sets a flag and
//! wakes the accept loop with a loopback connection. Connections finish
//! their in-flight request, the accept thread joins every connection
//! thread, and [`RunningServer::wait`]/[`RunningServer::shutdown`] return
//! the total number of count requests served.

use crate::http::{
    finish_chunks, read_request, write_chunk, write_chunked_head, write_response,
    write_response_with, HttpError,
};
use crate::metrics::Metrics;
use cqc_obs::{Registry, Stopwatch};
use cqc_serve::{Server, ServerConfig};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often idle connections and the wait loops poll the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Default cap on concurrent connections (see [`NetConfig::max_connections`]).
pub const DEFAULT_MAX_CONNECTIONS: usize = 256;

/// Default idle-read deadline (see [`NetConfig::idle_timeout`]).
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Configuration of the network front end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Defaults for the wrapped serving core (accuracy, seed, shards,
    /// plan-cache capacity).
    pub serve: ServerConfig,
    /// Stop accepting and shut down gracefully after this many count
    /// requests (`None` = run until signalled). Smoke tests and the CLI's
    /// `--max-requests` use this.
    pub max_requests: Option<u64>,
    /// Cap on concurrent connections (each costs an OS thread). Excess
    /// connections are accepted and immediately closed — the TCP analogue
    /// of a full listen backlog — so one peer cannot pin unbounded threads
    /// and per-connection buffers. `0` means the default.
    pub max_connections: usize,
    /// Close a connection when no bytes arrive for this long — idle
    /// keep-alive peers *and* slowloris-style stalled requests both
    /// expire, so the [`NetConfig::max_connections`] slots they occupy are
    /// recovered instead of being pinned until shutdown. Zero means the
    /// default.
    pub idle_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            serve: ServerConfig::default(),
            max_requests: None,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
        }
    }
}

/// State shared by the accept loop, every connection thread, and the
/// shutdown handle.
struct Shared {
    serve: Server,
    registry: Registry,
    metrics: Metrics,
    stopping: AtomicBool,
    served: AtomicU64,
    max_requests: Option<u64>,
    max_connections: usize,
    active_connections: AtomicU64,
    idle_timeout: Duration,
    addr: SocketAddr,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Relaxed)
    }

    /// Set the stop flag and wake the accept loop.
    fn signal(&self) {
        self.stopping.store(true, Ordering::Relaxed);
        // A loopback connection unblocks `accept`; errors are irrelevant
        // (the listener may already be gone). Wildcard binds (0.0.0.0 /
        // [::]) are not connectable addresses, so the wake-up targets the
        // loopback of the same family with the bound port.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake.ip() {
                std::net::IpAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                std::net::IpAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
    }

    /// Count one served count-request; trigger shutdown at the limit.
    fn count_served(&self) {
        let served = self.served.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.max_requests {
            if served >= max {
                self.signal();
            }
        }
    }
}

/// A handle that triggers graceful shutdown from another thread (the CLI
/// wires it to a line arriving on stdin — its "signal pipe" — and tests
/// call it directly).
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Begin graceful shutdown: stop accepting, let in-flight requests
    /// finish, close idle keep-alive connections.
    pub fn signal(&self) {
        self.shared.signal();
    }
}

/// A bound, running network server.
pub struct RunningServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl RunningServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the accept loop.
    pub fn bind(addr: &str, config: NetConfig) -> std::io::Result<RunningServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Register every metric series before the first connection is
        // accepted: a scrape against an idle server must see the full,
        // zero-valued document, not whatever happened to be touched.
        let serve = Server::new(config.serve);
        let registry = Registry::new();
        let metrics = Metrics::new(&registry, &serve);
        let shared = Arc::new(Shared {
            serve,
            registry,
            metrics,
            stopping: AtomicBool::new(false),
            served: AtomicU64::new(0),
            max_requests: config.max_requests,
            max_connections: if config.max_connections == 0 {
                DEFAULT_MAX_CONNECTIONS
            } else {
                config.max_connections
            },
            active_connections: AtomicU64::new(0),
            idle_timeout: if config.idle_timeout.is_zero() {
                DEFAULT_IDLE_TIMEOUT
            } else {
                config.idle_timeout
            },
            addr: local,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("cqc-net-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(RunningServer {
            addr: local,
            shared,
            accept: Some(accept),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable shutdown handle.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Count requests served so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Number of prepared plans currently cached by the serving core.
    pub fn cached_plans(&self) -> usize {
        self.shared.serve.cached_plans()
    }

    /// Signal shutdown and wait for the accept loop and every connection
    /// to finish. Returns the total count requests served.
    pub fn shutdown(mut self) -> u64 {
        self.shared.signal();
        if let Some(handle) = self.accept.take() {
            // cqc-audit: allow(serve-panic) — shutdown path, not request handling; re-raising an accept-loop panic is the only sound option
            handle.join().expect("accept thread panicked");
        }
        self.served()
    }

    /// Wait until the server shuts down on its own (`max_requests`
    /// reached, or another holder of the handle signalled). Returns the
    /// total count requests served.
    pub fn wait(mut self) -> u64 {
        if let Some(handle) = self.accept.take() {
            // cqc-audit: allow(serve-panic) — shutdown path, not request handling; re-raising an accept-loop panic is the only sound option
            handle.join().expect("accept thread panicked");
        }
        self.served()
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        if let Some(handle) = self.accept.take() {
            self.shared.signal();
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stopping() {
                    break;
                }
                // Back off briefly: persistent accept errors (fd
                // exhaustion under load, say) must not busy-spin a core —
                // sleeping also gives connection threads a chance to
                // finish and release descriptors.
                std::thread::sleep(POLL_INTERVAL);
                continue;
            }
        };
        if shared.stopping() {
            break; // the wake-up connection (or a raced late client)
        }
        // Concurrency cap: each connection costs an OS thread (plus up to
        // one buffered request body), so excess connections are closed
        // immediately — the TCP analogue of a full listen backlog.
        if shared.active_connections.load(Ordering::Relaxed) >= shared.max_connections as u64 {
            drop(stream);
            continue;
        }
        shared.metrics.connections.inc();
        shared.active_connections.fetch_add(1, Ordering::Relaxed);
        let conn_shared = Arc::clone(&shared);
        let spawned = std::thread::Builder::new()
            .name("cqc-net-conn".into())
            .spawn(move || {
                // Decrements even if the handler panics, so a wedged
                // counter can never starve the accept loop.
                struct ActiveGuard<'a>(&'a Shared);
                impl Drop for ActiveGuard<'_> {
                    fn drop(&mut self) {
                        self.0.active_connections.fetch_sub(1, Ordering::Relaxed);
                    }
                }
                let _guard = ActiveGuard(&conn_shared);
                let _ = handle_connection(stream, &conn_shared);
            });
        match spawned {
            Ok(handle) => connections.push(handle),
            Err(_) => {
                // The spawn never ran, so the guard never will either.
                shared.active_connections.fetch_sub(1, Ordering::Relaxed);
            }
        }
        // Reap finished connection threads so the vector stays bounded on
        // long-running servers.
        connections.retain(|h| !h.is_finished());
    }
    for handle in connections {
        let _ = handle.join();
    }
}

/// A `Read` adapter over the connection socket. The socket carries a
/// permanent short read timeout ([`POLL_INTERVAL`]); every timeout
/// re-checks the shutdown flag (and an idle deadline) and retries, so
/// blocking reads are effectively "block until bytes, EOF, error,
/// shutdown, or idle expiry". This is what makes graceful shutdown robust
/// against *stalled* peers — a client that sends half a request and parks
/// cannot pin its connection thread past the idle timeout, let alone
/// forever — and what stops idle peers from permanently occupying
/// [`NetConfig::max_connections`] slots.
struct PollingStream<'a> {
    stream: TcpStream,
    shared: &'a Shared,
    /// Restarted after every successful read; a read that stays byte-less
    /// past `shared.idle_timeout` fails with `TimedOut`.
    last_activity: Stopwatch,
}

impl std::io::Read for PollingStream<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        loop {
            if self.shared.stopping() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "server shutting down",
                ));
            }
            if self.last_activity.elapsed() > self.shared.idle_timeout {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "idle connection expired",
                ));
            }
            match std::io::Read::read(&mut self.stream, buf) {
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue
                }
                result => {
                    if result.is_ok() {
                        self.last_activity.restart();
                    }
                    return result;
                }
            }
        }
    }
}

/// Peek the first byte of the connection to decide its protocol: `None`
/// means the peer closed (or the server is stopping, or the peer sat idle
/// past the deadline) before sending any.
fn first_byte(reader: &mut BufReader<PollingStream<'_>>) -> std::io::Result<Option<u8>> {
    if let Some(&byte) = reader.buffer().first() {
        return Ok(Some(byte));
    }
    let mut byte = [0u8; 1];
    loop {
        let polling = reader.get_ref();
        if polling.shared.stopping() {
            return Ok(None);
        }
        if polling.last_activity.elapsed() > polling.shared.idle_timeout {
            return Ok(None);
        }
        match polling.stream.peek(&mut byte) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(byte[0])),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let writer_stream = stream.try_clone()?;
    let mut reader = BufReader::new(PollingStream {
        stream,
        shared,
        last_activity: Stopwatch::start(),
    });
    let mut writer = BufWriter::new(writer_stream);
    match first_byte(&mut reader)? {
        Some(b'{') => serve_ndjson(&mut reader, &mut writer, shared),
        Some(_) => serve_http(&mut reader, &mut writer, shared),
        None => Ok(()),
    }
}

/// The raw NDJSON protocol: one request line in, one response line out,
/// until EOF or shutdown. Lines are bounded like HTTP bodies
/// ([`crate::http::MAX_BODY_BYTES`]): a peer streaming bytes with no
/// newline gets an error response and a closed connection instead of an
/// unbounded buffer.
fn serve_ndjson(
    reader: &mut BufReader<PollingStream<'_>>,
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
) -> std::io::Result<()> {
    const MAX_LINE: usize = crate::http::MAX_BODY_BYTES;
    loop {
        if shared.stopping() {
            return Ok(());
        }
        let mut line = String::new();
        if std::io::Read::take(&mut *reader, MAX_LINE as u64 + 1).read_line(&mut line)? == 0 {
            return Ok(());
        }
        if line.len() > MAX_LINE && !line.ends_with('\n') {
            // over-long line: no way to resync on this stream — answer
            // with a protocol error and close
            let body = error_body(&format!("request line exceeds {MAX_LINE} bytes"));
            writer.write_all(body.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            return Ok(());
        }
        if line.trim().is_empty() {
            continue;
        }
        shared.metrics.ndjson_lines.inc();
        let start = Stopwatch::start();
        let (response, _) = shared
            .serve
            .handle_line_classified(line.trim_end_matches('\n'));
        shared.metrics.latency.record(start.elapsed());
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        shared.count_served();
    }
}

/// The HTTP/1.1 protocol: parse requests, dispatch endpoints, keep-alive.
fn serve_http(
    reader: &mut BufReader<PollingStream<'_>>,
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
) -> std::io::Result<()> {
    loop {
        if shared.stopping() {
            return Ok(());
        }
        let request = match read_request(reader, writer) {
            Ok(None) | Err(HttpError::UnexpectedEof) => return Ok(()),
            Ok(Some(request)) => request,
            Err(HttpError::Io(_)) => return Ok(()),
            Err(HttpError::Malformed(m)) => {
                shared.metrics.http_requests.inc();
                let body = error_body(&m);
                shared.metrics.observe_status(400);
                write_response(writer, 400, "application/json", body.as_bytes(), true)?;
                return Ok(());
            }
        };
        shared.metrics.http_requests.inc();
        let keep_alive = request.keep_alive() && !shared.stopping();
        let close = !keep_alive;
        let path = request.target.split('?').next().unwrap_or("");
        match (request.method.as_str(), path) {
            ("POST", "/count") => {
                // A request carrying a `traceparent` header gets it echoed
                // back verbatim on the response — correlation across the
                // wire. The echo is a pure function of the request bytes
                // (tracing on or off never changes it), so it cannot
                // perturb transcript comparison.
                let traceparent = request.header("traceparent").map(str::to_string);
                if let Some(t) = &traceparent {
                    cqc_obs::trace::instant("traceparent", t);
                }
                let (status, body) = match std::str::from_utf8(&request.body) {
                    Err(_) => (400, error_body("request body is not UTF-8")),
                    Ok(text) => {
                        let start = Stopwatch::start();
                        let (body, is_error) = shared.serve.handle_line_classified(text.trim());
                        shared.metrics.latency.record(start.elapsed());
                        shared.count_served();
                        (if is_error { 400 } else { 200 }, body)
                    }
                };
                shared.metrics.observe_status(status);
                let extra: Vec<(&str, &str)> = traceparent
                    .as_deref()
                    .map(|t| vec![("Traceparent", t)])
                    .unwrap_or_default();
                write_response_with(
                    writer,
                    status,
                    "application/json",
                    &extra,
                    body.as_bytes(),
                    close,
                )?;
            }
            ("POST", "/stream") => match std::str::from_utf8(&request.body) {
                Err(_) => {
                    let body = error_body("request body is not UTF-8");
                    shared.metrics.observe_status(400);
                    write_response(writer, 400, "application/json", body.as_bytes(), close)?;
                }
                Ok(text) if request.version == "HTTP/1.0" => {
                    // HTTP/1.0 predates chunked encoding: buffer the
                    // response lines and send them length-delimited.
                    let mut body = String::new();
                    for line in text.lines().filter(|l| !l.trim().is_empty()) {
                        let start = Stopwatch::start();
                        let (response, _) = shared.serve.handle_line_classified(line);
                        shared.metrics.latency.record(start.elapsed());
                        shared.count_served();
                        body.push_str(&response);
                        body.push('\n');
                    }
                    shared.metrics.observe_status(200);
                    write_response(writer, 200, "application/x-ndjson", body.as_bytes(), close)?;
                }
                Ok(text) => {
                    shared.metrics.observe_status(200);
                    write_chunked_head(writer, "application/x-ndjson", close)?;
                    for line in text.lines().filter(|l| !l.trim().is_empty()) {
                        let start = Stopwatch::start();
                        let (response, _) = shared.serve.handle_line_classified(line);
                        shared.metrics.latency.record(start.elapsed());
                        shared.count_served();
                        write_chunk(writer, format!("{response}\n").as_bytes())?;
                    }
                    finish_chunks(writer)?;
                }
            },
            ("GET", "/healthz") => {
                shared.metrics.observe_status(200);
                write_response(
                    writer,
                    200,
                    "application/json",
                    b"{\"status\":\"ok\"}",
                    close,
                )?;
            }
            ("GET", "/metrics") => {
                // Gauges are sampled at scrape time, just before render.
                shared
                    .metrics
                    .pool_width
                    .set(cqc_runtime::pool::global().width() as u64);
                shared
                    .metrics
                    .pool_queue_depth
                    .set(cqc_runtime::pool::active_dispatches());
                shared
                    .metrics
                    .active_connections
                    .set(shared.active_connections.load(Ordering::Relaxed));
                let text = shared.registry.render();
                shared.metrics.observe_status(200);
                write_response(
                    writer,
                    200,
                    "text/plain; version=0.0.4",
                    text.as_bytes(),
                    close,
                )?;
            }
            (_, "/count" | "/stream" | "/healthz" | "/metrics") => {
                let body = error_body(&format!("method {} not allowed for {path}", request.method));
                shared.metrics.observe_status(405);
                write_response(writer, 405, "application/json", body.as_bytes(), close)?;
            }
            _ => {
                let body = error_body(&format!("no such endpoint `{path}`"));
                shared.metrics.observe_status(404);
                write_response(writer, 404, "application/json", body.as_bytes(), close)?;
            }
        }
        if close {
            return Ok(());
        }
    }
}

/// A serve-protocol-shaped error body for transport-level failures.
fn error_body(message: &str) -> String {
    cqc_serve::json::Value::Obj(vec![
        ("id".to_string(), cqc_serve::json::Value::Null),
        (
            "error".to_string(),
            cqc_serve::json::Value::Str(message.to_string()),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_are_serve_shaped_json() {
        let body = error_body("boom \"quoted\"");
        assert_eq!(body, r#"{"id":null,"error":"boom \"quoted\""}"#);
        assert!(cqc_serve::json::parse(&body).is_ok());
    }
}
