//! The network front end: an event-driven TCP server that speaks HTTP/1.1
//! *and* raw newline-delimited JSON on one port, wrapping the sharded
//! counting core of `cqc_serve::Server`.
//!
//! ## Architecture: readiness loop + dispatch workers
//!
//! One **event thread** owns every socket: it polls them for readiness
//! (`poll(2)` through the std-only shim in [`crate::poll`]), accepts new
//! connections, fills per-connection read buffers, frames requests
//! ([`crate::conn`]: read → parse), and drains write buffers. Engine work
//! never runs on the event thread — `/count`, `/stream` and NDJSON lines
//! are pushed onto the **bounded dispatch queue** ([`crate::dispatch`]),
//! where a small pool of dispatch workers executes them (fanning across
//! the `cqc-runtime` pool) and hands fully rendered response bytes back.
//! A connection with a request in flight is not read further — that
//! per-connection backpressure is what keeps responses ordered and
//! buffers bounded.
//!
//! ## Admission control
//!
//! Two explicit limits, both answered with the canonical overload bytes of
//! [`cqc_serve::overload_line`] (identical JSON across protocols):
//!
//! * [`NetConfig::max_connections`] — connections over the cap get one
//!   load-shed response (HTTP 503 / NDJSON error line) and are closed,
//!   counted by `cqc_connections_rejected_total`.
//! * [`NetConfig::dispatch_queue_limit`] — requests beyond the queue bound
//!   are shed per-request (the connection stays usable), counted by
//!   `cqc_requests_shed_total`; `cqc_dispatch_queue_depth` samples the
//!   queue at scrape time.
//!
//! ## Protocol sniffing
//!
//! The first byte of a connection decides its protocol: `{` means the peer
//! is speaking the raw NDJSON request protocol of `cqc serve` (one JSON
//! request per line, one JSON response per line); anything else is parsed
//! as HTTP/1.1. No HTTP method starts with `{`, so the sniff is exact.
//!
//! ## Endpoints
//!
//! | Endpoint | Behaviour |
//! |---|---|
//! | `POST /count` | one serve-protocol JSON request in the body; JSON response (HTTP 400 for `error` responses, body identical to NDJSON mode) |
//! | `POST /stream` | NDJSON request lines in the body; chunked NDJSON response, one chunk per response line |
//! | `GET /healthz` | `{"status":"ok"}` |
//! | `GET /metrics` | Prometheus text: request/plan-cache/shard counters + latency histogram |
//!
//! ## Determinism over TCP
//!
//! Response *bodies* are byte-identical regardless of connection
//! interleaving, client concurrency, worker-pool width, or shard count:
//! every request carries its own seed, work item `i` always runs under
//! `split_seed(seed, i)`, and merges are index-ordered (see `cqc-serve`).
//! The network layer adds nothing nondeterministic around the body — HTTP
//! headers are a fixed function of the body, and which *thread* renders a
//! response (event loop for inline endpoints, a dispatch worker for engine
//! work) never appears on the wire. `tests/wire_determinism.rs` pins the
//! full matrix.
//!
//! ## Graceful shutdown
//!
//! [`ShutdownHandle::signal`] (or reaching `max_requests`) sets a flag and
//! writes a byte to the event thread's wake socket. The listener closes
//! immediately, in-flight requests finish and flush (bounded by a short
//! drain deadline for peers that stop reading), idle connections close,
//! the dispatch workers join, and [`RunningServer::wait`] /
//! [`RunningServer::shutdown`] return the total count requests served.

use crate::conn::{Conn, HttpNext, NdjsonNext, Proto};
use crate::dispatch::{Dispatcher, Job, JobKind, Token};
use crate::http::{write_response, write_response_with, MAX_BODY_BYTES};
use crate::metrics::Metrics;
use crate::poll::{poll_fds, raw_fd, PollFd, POLLIN, POLLOUT};
use cqc_obs::wide::Outcome;
use cqc_obs::{Registry, Stopwatch, WideEvent, WideLog};
use cqc_serve::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// The event loop's poll timeout: the granularity of the idle sweep and of
/// accept-error backoff. Readiness (bytes, completions, shutdown wake)
/// interrupts it immediately.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Default cap on concurrent connections (see [`NetConfig::max_connections`]).
/// A connection now costs one descriptor plus its buffers — not an OS
/// thread — so the default is sized for thousands of keep-alive peers.
pub const DEFAULT_MAX_CONNECTIONS: usize = 4096;

/// Default idle-read deadline (see [`NetConfig::idle_timeout`]).
pub const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(60);

/// Default bound on dispatched-but-unanswered requests (see
/// [`NetConfig::dispatch_queue_limit`]).
pub const DEFAULT_DISPATCH_QUEUE_LIMIT: usize = 256;

/// Cap on connections simultaneously being *rejected* (sniffing their
/// protocol to frame the 503/error bytes). Beyond it, over-cap connections
/// are closed bare — still counted — so a reject flood cannot itself pin
/// descriptors.
const MAX_REJECT_SLOTS: usize = 64;

/// Once shutdown begins, how long flushed-but-unread response bytes may
/// keep a connection open before it is closed anyway. Short enough that a
/// peer that stopped reading cannot stall shutdown noticeably.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(2);

/// Wide events kept in the in-memory tail behind `GET /debug/requests`.
const WIDE_TAIL_CAP: usize = 512;

/// Shed responses within [`SHED_BURST_WINDOW_NANOS`] that constitute a
/// burst worth a flight-recorder dump.
const SHED_BURST_THRESHOLD: u64 = 32;

/// The shed-burst counting window.
const SHED_BURST_WINDOW_NANOS: u64 = 1_000_000_000;

/// Minimum spacing between non-panic flight dumps, so a sustained anomaly
/// (every request slow, say) produces a bounded dump series instead of one
/// file per request.
const DUMP_COOLDOWN_MILLIS: u64 = 1_000;

/// Configuration of the network front end.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Defaults for the wrapped serving core (accuracy, seed, shards,
    /// plan-cache capacity).
    pub serve: ServerConfig,
    /// Stop accepting and shut down gracefully after this many count
    /// requests (`None` = run until signalled). Smoke tests and the CLI's
    /// `--max-requests` use this.
    pub max_requests: Option<u64>,
    /// Cap on concurrent connections (each costs a descriptor and its
    /// buffers). Excess connections receive one load-shed response (HTTP
    /// 503 / NDJSON error line, counted by
    /// `cqc_connections_rejected_total`) and are closed. `0` means the
    /// default.
    pub max_connections: usize,
    /// Close a connection when no bytes arrive for this long — idle
    /// keep-alive peers *and* slowloris-style stalled requests both
    /// expire, so the [`NetConfig::max_connections`] slots they occupy are
    /// recovered instead of being pinned until shutdown. Zero means the
    /// default.
    pub idle_timeout: Duration,
    /// Bound on requests dispatched but not yet answered (queued plus
    /// executing). Requests beyond it are shed with a 503/NDJSON error
    /// (counted by `cqc_requests_shed_total`) while the connection stays
    /// usable. `0` means the default.
    pub dispatch_queue_limit: usize,
    /// Dispatch worker threads executing engine requests off the event
    /// thread. `0` means auto (derived from available parallelism).
    pub dispatch_workers: usize,
    /// Append every wide event (one NDJSON record per request) to this
    /// file — `cqc serve --request-log FILE`. The bounded in-memory tail
    /// behind `GET /debug/requests` fills regardless; the file is the
    /// durable log `cqc report requests` consumes. Recording only happens
    /// while [`cqc_obs::wide::set_enabled`] is on.
    pub request_log: Option<PathBuf>,
    /// A request whose handler runs longer than this triggers an automatic
    /// flight-recorder dump (`cqc serve --slow-ms`). `None` disables the
    /// slow trigger.
    pub slow_ms: Option<u64>,
    /// Directory for automatic flight-recorder dumps (panic, shed burst,
    /// slow request). `None` disables dump files; `GET /debug/flight`
    /// still serves live snapshots.
    pub flight_dir: Option<PathBuf>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            serve: ServerConfig::default(),
            max_requests: None,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            idle_timeout: DEFAULT_IDLE_TIMEOUT,
            dispatch_queue_limit: DEFAULT_DISPATCH_QUEUE_LIMIT,
            dispatch_workers: 0,
            request_log: None,
            slow_ms: None,
            flight_dir: None,
        }
    }
}

/// Counters of the admission-control and failure paths (the same series
/// are exported via `/metrics`; this is the programmatic view for tests
/// and operational assertions).
#[derive(Debug, Clone, Copy)]
pub struct NetStats {
    /// Connections refused at the cap with a load-shed response.
    pub connections_rejected: u64,
    /// Requests answered with a load-shed response (queue bound reached).
    pub requests_shed: u64,
    /// Request handlers that panicked (answered 500-class and counted,
    /// never silently swallowed).
    pub connection_panics: u64,
    /// Transient `accept(2)` failures the event loop backed off from.
    pub accept_errors: u64,
}

/// Event-loop tick statistics maintained live by the readiness loop and
/// read only by `GET /debug/loop` (relaxed atomics — observation only).
#[derive(Debug, Default)]
pub(crate) struct LoopStats {
    /// Completed loop iterations.
    ticks: AtomicU64,
    /// Total nanoseconds spent *processing* (poll return to iteration
    /// end — the poll wait itself is idle time, not lag).
    tick_ns_total: AtomicU64,
    /// Slowest single tick.
    tick_ns_max: AtomicU64,
    /// Dispatch-queue depth high-water mark.
    queue_depth_hwm: AtomicU64,
}

impl LoopStats {
    fn note_tick(&self, tick_ns: u64, queue_depth: u64) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        self.tick_ns_total.fetch_add(tick_ns, Ordering::Relaxed);
        self.tick_ns_max.fetch_max(tick_ns, Ordering::Relaxed);
        self.queue_depth_hwm
            .fetch_max(queue_depth, Ordering::Relaxed);
    }
}

/// Automatic flight-recorder dumps: where they go, how many happened, and
/// the shed-burst detector. All state is relaxed atomics — a racy double
/// count widens a window by one event, nothing more.
pub(crate) struct FlightDumps {
    /// Dump directory; `None` disables dump files entirely.
    dir: Option<PathBuf>,
    /// Dumps written (also the filename ordinal).
    dumps: AtomicU64,
    /// `unix_millis` of the last dump, for the cooldown.
    last_dump_ms: AtomicU64,
    /// Start of the current shed-burst window (trace-epoch nanoseconds).
    shed_window_start_ns: AtomicU64,
    /// Shed responses inside the current window.
    shed_in_window: AtomicU64,
}

impl FlightDumps {
    fn new(dir: Option<PathBuf>) -> FlightDumps {
        FlightDumps {
            dir,
            dumps: AtomicU64::new(0),
            last_dump_ms: AtomicU64::new(0),
            shed_window_start_ns: AtomicU64::new(0),
            shed_in_window: AtomicU64::new(0),
        }
    }

    /// Count one shed response; `true` exactly when the count crosses
    /// [`SHED_BURST_THRESHOLD`] within the current window.
    pub(crate) fn note_shed(&self) -> bool {
        let now = cqc_obs::clock::now_nanos();
        let start = self.shed_window_start_ns.load(Ordering::Relaxed);
        if now.saturating_sub(start) > SHED_BURST_WINDOW_NANOS {
            self.shed_window_start_ns.store(now, Ordering::Relaxed);
            self.shed_in_window.store(1, Ordering::Relaxed);
            return SHED_BURST_THRESHOLD <= 1;
        }
        self.shed_in_window.fetch_add(1, Ordering::Relaxed) + 1 == SHED_BURST_THRESHOLD
    }

    /// Snapshot the flight recorder into a timestamped dump file. `force`
    /// (the panic path) bypasses the cooldown — a panic dump must never be
    /// suppressed. Returns the path written, `None` if dumps are disabled,
    /// on cooldown, or unwritable.
    pub(crate) fn dump(&self, reason: &str, force: bool) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let now_ms = cqc_obs::clock::unix_millis();
        if !force {
            let last = self.last_dump_ms.load(Ordering::Relaxed);
            if last != 0 && now_ms.saturating_sub(last) < DUMP_COOLDOWN_MILLIS {
                return None;
            }
        }
        self.last_dump_ms.store(now_ms.max(1), Ordering::Relaxed);
        let ordinal = self.dumps.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("flight-{now_ms:013}-{ordinal:04}-{reason}.ndjson"));
        let snapshot = cqc_obs::flight::snapshot();
        std::fs::write(&path, snapshot.to_ndjson()).ok()?;
        Some(path)
    }

    /// Dumps written so far.
    pub(crate) fn count(&self) -> u64 {
        self.dumps.load(Ordering::Relaxed)
    }
}

/// State shared by the event thread, the dispatch workers, and the
/// shutdown handle.
pub(crate) struct Shared {
    pub(crate) serve: Server,
    pub(crate) registry: Registry,
    pub(crate) metrics: Metrics,
    /// The wide-event request log (in-memory tail + optional file sink).
    pub(crate) wide: WideLog,
    /// Slow-request dump threshold in nanoseconds, from
    /// [`NetConfig::slow_ms`].
    pub(crate) slow_ns: Option<u64>,
    /// Anomaly-triggered flight-recorder dumps.
    pub(crate) flight_dumps: FlightDumps,
    /// Event-loop tick statistics for `GET /debug/loop`.
    pub(crate) loop_stats: LoopStats,
    stopping: AtomicBool,
    served: AtomicU64,
    max_requests: Option<u64>,
    /// Write end of the event thread's wake socket: one byte unblocks the
    /// poll immediately (`WouldBlock` means a wake is already pending).
    wake: TcpStream,
}

impl Shared {
    pub(crate) fn stopping(&self) -> bool {
        self.stopping.load(Ordering::Relaxed)
    }

    /// Set the stop flag and wake the event thread.
    fn signal(&self) {
        self.stopping.store(true, Ordering::Relaxed);
        self.wake();
    }

    /// Nudge the event thread's poll awake.
    pub(crate) fn wake(&self) {
        let mut wake: &TcpStream = &self.wake;
        let _ = wake.write(&[1]);
    }

    /// Count one served count-request; trigger shutdown at the limit.
    pub(crate) fn count_served(&self) {
        let served = self.served.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(max) = self.max_requests {
            if served >= max {
                self.signal();
            }
        }
    }

    /// Slow-request trigger: a handler that ran past `--slow-ms` dumps the
    /// flight recorder (cooldown-limited).
    pub(crate) fn note_handle_ns(&self, handle_ns: u64) {
        if let Some(slow) = self.slow_ns {
            if handle_ns > slow {
                self.flight_dumps.dump("slow", false);
            }
        }
    }

    /// The `GET /debug/loop` body: event-loop tick/lag statistics plus the
    /// health counters of the observability layer itself.
    fn debug_loop_json(&self, queue_depth: u64) -> String {
        let ticks = self.loop_stats.ticks.load(Ordering::Relaxed);
        let total = self.loop_stats.tick_ns_total.load(Ordering::Relaxed);
        let mean = total.checked_div(ticks).unwrap_or(0);
        format!(
            "{{\"ticks\":{},\"tick_ns_max\":{},\"tick_ns_mean\":{},\"wakeups\":{},\"dispatch_queue_depth\":{},\"dispatch_queue_depth_hwm\":{},\"flight_dumps\":{},\"flight_dropped\":{},\"wide_recorded\":{},\"wide_dropped\":{}}}",
            ticks,
            self.loop_stats.tick_ns_max.load(Ordering::Relaxed),
            mean,
            self.metrics.event_loop_wakeups.get(),
            queue_depth,
            self.loop_stats.queue_depth_hwm.load(Ordering::Relaxed),
            self.flight_dumps.count(),
            cqc_obs::flight::dropped_total(),
            self.wide.recorded(),
            self.wide.dropped(),
        )
    }
}

/// A handle that triggers graceful shutdown from another thread (the CLI
/// wires it to a line arriving on stdin — its "signal pipe" — and tests
/// call it directly).
#[derive(Clone)]
pub struct ShutdownHandle {
    shared: Arc<Shared>,
}

impl ShutdownHandle {
    /// Begin graceful shutdown: stop accepting, let in-flight requests
    /// finish, close idle keep-alive connections.
    pub fn signal(&self) {
        self.shared.signal();
    }
}

/// A bound, running network server.
pub struct RunningServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event: Option<JoinHandle<()>>,
}

impl RunningServer {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the event thread and dispatch workers.
    pub fn bind(addr: &str, config: NetConfig) -> std::io::Result<RunningServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let (wake_tx, wake_rx) = wake_pair()?;
        // Register every metric series before the first connection is
        // accepted: a scrape against an idle server must see the full,
        // zero-valued document, not whatever happened to be touched.
        let serve = Server::new(config.serve);
        let registry = Registry::new();
        let metrics = Metrics::new(&registry, &serve);
        let wide = WideLog::new(WIDE_TAIL_CAP);
        if let Some(path) = &config.request_log {
            wide.attach_file(std::fs::File::create(path)?);
        }
        if let Some(dir) = &config.flight_dir {
            std::fs::create_dir_all(dir)?;
        }
        let shared = Arc::new(Shared {
            serve,
            registry,
            metrics,
            wide,
            slow_ns: config.slow_ms.map(|ms| ms.saturating_mul(1_000_000)),
            flight_dumps: FlightDumps::new(config.flight_dir.clone()),
            loop_stats: LoopStats::default(),
            stopping: AtomicBool::new(false),
            served: AtomicU64::new(0),
            max_requests: config.max_requests,
            wake: wake_tx,
        });
        let worker_wake = Arc::new(shared.wake.try_clone()?);
        let workers = if config.dispatch_workers == 0 {
            default_dispatch_workers()
        } else {
            config.dispatch_workers
        };
        let queue_limit = if config.dispatch_queue_limit == 0 {
            DEFAULT_DISPATCH_QUEUE_LIMIT
        } else {
            config.dispatch_queue_limit
        };
        let dispatcher = Dispatcher::start(Arc::clone(&shared), workers, queue_limit, worker_wake);
        let event_loop = EventLoop {
            shared: Arc::clone(&shared),
            dispatcher,
            listener: Some(listener),
            wake_rx,
            slots: Vec::new(),
            free: Vec::new(),
            max_connections: if config.max_connections == 0 {
                DEFAULT_MAX_CONNECTIONS
            } else {
                config.max_connections
            },
            idle_timeout: if config.idle_timeout.is_zero() {
                DEFAULT_IDLE_TIMEOUT
            } else {
                config.idle_timeout
            },
            active: 0,
            rejecting: 0,
            accept_backoff: false,
            drain: None,
        };
        let event = std::thread::Builder::new()
            .name("cqc-net-event".into())
            .spawn(move || event_loop.run())?;
        Ok(RunningServer {
            addr: local,
            shared,
            event: Some(event),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable shutdown handle.
    pub fn handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Count requests served so far.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Number of prepared plans currently cached by the serving core.
    pub fn cached_plans(&self) -> usize {
        self.shared.serve.cached_plans()
    }

    /// A snapshot of the admission-control counters.
    pub fn stats(&self) -> NetStats {
        NetStats {
            connections_rejected: self.shared.metrics.connections_rejected.get(),
            requests_shed: self.shared.metrics.requests_shed.get(),
            connection_panics: self.shared.metrics.connection_panics.get(),
            accept_errors: self.shared.metrics.accept_errors.get(),
        }
    }

    /// Signal shutdown and wait for the event thread (and its dispatch
    /// workers) to finish. Returns the total count requests served.
    pub fn shutdown(mut self) -> u64 {
        self.shared.signal();
        if let Some(handle) = self.event.take() {
            // cqc-audit: allow(serve-panic) — shutdown path, not request handling; re-raising an event-thread panic is the only sound option
            handle.join().expect("event thread panicked");
        }
        self.served()
    }

    /// Wait until the server shuts down on its own (`max_requests`
    /// reached, or another holder of the handle signalled). Returns the
    /// total count requests served.
    pub fn wait(mut self) -> u64 {
        if let Some(handle) = self.event.take() {
            // cqc-audit: allow(serve-panic) — shutdown path, not request handling; re-raising an event-thread panic is the only sound option
            handle.join().expect("event thread panicked");
        }
        self.served()
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        if let Some(handle) = self.event.take() {
            self.shared.signal();
            let _ = handle.join();
        }
    }
}

/// Dispatch workers when [`NetConfig::dispatch_workers`] is `0`: at least
/// two (so one long `/stream` batch cannot head-of-line block every other
/// request), bounded so dispatch threads do not crowd the runtime pool
/// they fan into.
fn default_dispatch_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8)
}

/// A loopback socket pair serving as the event thread's wake channel: the
/// read end sits in the poll set, anyone holding the write end (shutdown
/// handles, dispatch workers) makes the poll return by writing a byte.
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind((std::net::Ipv4Addr::LOCALHOST, 0))?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true).ok();
    rx.set_nonblocking(true)?;
    Ok((tx, rx))
}

/// How the event loop should respond to an `accept(2)` error.
#[derive(Debug, PartialEq, Eq)]
enum AcceptDisposition {
    /// Transient (aborted handshake, descriptor/buffer exhaustion): count
    /// it, skip accepting for one tick, carry on.
    Retry,
    /// The listener is broken; stop the server cleanly.
    Fatal,
}

/// Classify an accept error. Resource exhaustion (`EMFILE`, `ENFILE`,
/// `ENOBUFS`, `ENOMEM`) is transient — closing connections release
/// descriptors — as are peer-caused handshake failures; anything else
/// (e.g. `EBADF`, `EINVAL`) means the listener itself is gone.
fn classify_accept_error(error: &std::io::Error) -> AcceptDisposition {
    use std::io::ErrorKind;
    match error.kind() {
        ErrorKind::WouldBlock
        | ErrorKind::Interrupted
        | ErrorKind::ConnectionAborted
        | ErrorKind::ConnectionReset
        | ErrorKind::TimedOut => AcceptDisposition::Retry,
        _ => match error.raw_os_error() {
            // ENOMEM(12), ENFILE(23), EMFILE(24), ENOBUFS(105)
            Some(12) | Some(23) | Some(24) | Some(105) => AcceptDisposition::Retry,
            _ => AcceptDisposition::Fatal,
        },
    }
}

/// One connection slot: the generation counter outlives the connection so
/// completions addressed to a closed connection (same index, older
/// generation) are discarded instead of delivered to a new peer.
struct Slot {
    conn: Option<Conn>,
    gen: u64,
}

/// The readiness loop: owns the listener, the wake socket, and every
/// connection.
struct EventLoop {
    shared: Arc<Shared>,
    dispatcher: Dispatcher,
    listener: Option<TcpListener>,
    wake_rx: TcpStream,
    slots: Vec<Slot>,
    free: Vec<usize>,
    max_connections: usize,
    idle_timeout: Duration,
    /// Live admitted connections (mirrored by the gauge).
    active: usize,
    /// Live over-cap connections awaiting their shed response.
    rejecting: usize,
    /// A retryable accept error happened: skip accepting for one tick.
    accept_backoff: bool,
    /// Started on the first stopping tick; bounds the final flush.
    drain: Option<Stopwatch>,
}

impl EventLoop {
    fn run(mut self) {
        loop {
            let stopping = self.shared.stopping();
            if stopping {
                // Close the port immediately: graceful shutdown stops
                // accepting before it drains.
                self.listener = None;
                if self.drain.is_none() {
                    self.drain = Some(Stopwatch::start());
                }
                if self.active == 0 && self.rejecting == 0 && self.dispatcher.depth() == 0 {
                    break;
                }
            }

            // Build the poll set: wake socket, listener, every connection.
            let mut fds = vec![PollFd::new(raw_fd(&self.wake_rx), POLLIN)];
            let listener_fd = self.listener.as_ref().and_then(|listener| {
                if self.accept_backoff {
                    None
                } else {
                    fds.push(PollFd::new(raw_fd(listener), POLLIN));
                    Some(fds.len() - 1)
                }
            });
            let mut watched: Vec<(usize, usize)> = Vec::new();
            for (idx, slot) in self.slots.iter().enumerate() {
                if let Some(conn) = &slot.conn {
                    let mut events = 0i16;
                    if conn.wants_read() {
                        events |= POLLIN;
                    }
                    if conn.wants_write() {
                        events |= POLLOUT;
                    }
                    watched.push((idx, fds.len()));
                    fds.push(PollFd::new(conn.fd(), events));
                }
            }
            if poll_fds(&mut fds, POLL_INTERVAL.as_millis() as i32).is_err() {
                // A failing poll (EINVAL from an absurd fd set, say) must
                // not busy-spin the core; tick at the poll interval.
                std::thread::sleep(POLL_INTERVAL);
            }

            // Tick timing starts when poll returns: the poll wait is idle
            // time, everything after it is the loop's processing lag.
            let tick = Stopwatch::start();

            if fds[0].ready(POLLIN) {
                self.shared.metrics.event_loop_wakeups.inc();
                drain_wake(&self.wake_rx);
            }

            // Accept phase. After a retryable error the listener sat out
            // of the poll set for one tick; try again now.
            let after_backoff = std::mem::take(&mut self.accept_backoff);
            let accept_now = !stopping
                && self.listener.is_some()
                && (after_backoff || listener_fd.is_some_and(|idx| fds[idx].ready(POLLIN)));
            if accept_now {
                self.accept_ready();
            }

            // Completions: append rendered response bytes to their
            // (still-live, same-generation) connections.
            for completion in self.dispatcher.drain_completions() {
                let Some(slot) = self.slots.get_mut(completion.token.slot) else {
                    continue;
                };
                if slot.gen != completion.token.gen {
                    continue; // the connection closed while the job ran
                }
                let Some(conn) = slot.conn.as_mut() else {
                    continue;
                };
                conn.in_flight = false;
                conn.queue(&completion.bytes);
                if completion.close {
                    conn.close_after_flush = true;
                }
            }

            // Per-connection I/O and framing.
            let mut readable = vec![false; self.slots.len()];
            for &(slot_idx, fd_idx) in &watched {
                readable[slot_idx] = fds[fd_idx].ready(POLLIN);
            }
            for idx in 0..self.slots.len() {
                self.service(idx, readable.get(idx).copied().unwrap_or(false), stopping);
            }

            // Idle sweep (in-flight connections are waiting on us, not on
            // the peer — they are exempt).
            for idx in 0..self.slots.len() {
                let expired = match &self.slots[idx].conn {
                    Some(conn) => {
                        !conn.in_flight && conn.last_activity.elapsed() > self.idle_timeout
                    }
                    None => false,
                };
                if expired {
                    self.close_slot(idx);
                }
            }

            // Shutdown drain: everything not waiting on a dispatch worker
            // closes once flushed (or once the drain deadline passes).
            if stopping {
                let drain_expired = self
                    .drain
                    .as_ref()
                    .is_some_and(|drain| drain.elapsed() > SHUTDOWN_DRAIN);
                for idx in 0..self.slots.len() {
                    let close = match &mut self.slots[idx].conn {
                        Some(conn) if !conn.in_flight => {
                            let _ = conn.flush_out();
                            conn.flushed() || drain_expired
                        }
                        _ => false,
                    };
                    if close {
                        self.close_slot(idx);
                    }
                }
            }

            // Close out the tick: histogram for `/metrics`, running stats
            // for `/debug/loop`.
            let tick_ns = tick.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.shared.metrics.event_loop_tick.record_nanos(tick_ns);
            self.shared
                .loop_stats
                .note_tick(tick_ns, self.dispatcher.depth());
        }
        // Queue drained, connections closed: stop and join the workers.
        self.dispatcher.shutdown();
    }

    /// Accept until the listener would block.
    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) => match classify_accept_error(&e) {
                    AcceptDisposition::Retry => {
                        self.shared.metrics.accept_errors.inc();
                        cqc_obs::trace::instant("net_accept_error", &e.kind().to_string());
                        self.accept_backoff = true;
                        return;
                    }
                    AcceptDisposition::Fatal => {
                        cqc_obs::trace::instant("net_accept_fatal", &e.to_string());
                        self.shared.signal();
                        return;
                    }
                },
            }
        }
    }

    /// Admit (or begin rejecting) one accepted connection.
    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        stream.set_nodelay(true).ok();
        let over_cap = self.active >= self.max_connections;
        if over_cap {
            self.shared.metrics.connections_rejected.inc();
            cqc_obs::trace::instant("net_shed", "connection");
            if self.rejecting >= MAX_REJECT_SLOTS {
                // Reject slots are themselves bounded: beyond them the
                // close is bare (the counter still records it).
                return;
            }
            self.rejecting += 1;
        } else {
            self.shared.metrics.connections.inc();
            self.shared.metrics.active_connections.inc();
            self.active += 1;
        }
        let conn = Conn::new(stream, over_cap);
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(Slot { conn: None, gen: 0 });
                self.slots.len() - 1
            }
        };
        self.slots[idx].conn = Some(conn);
    }

    /// Run one connection through fill → frame/route → flush, closing it
    /// on I/O failure or once a close-after-flush completes.
    fn service(&mut self, idx: usize, can_read: bool, stopping: bool) {
        let close_now = {
            let gen = self.slots[idx].gen;
            let Some(conn) = self.slots[idx].conn.as_mut() else {
                return;
            };
            let token = Token { slot: idx, gen };
            let mut close = false;
            if can_read && conn.wants_read() && conn.fill().is_err() {
                close = true;
            }
            if !close {
                advance_conn(conn, token, &self.dispatcher, &self.shared, stopping);
                if conn.flush_out().is_err() {
                    close = true;
                } else if conn.flushed() {
                    close = conn.close_after_flush
                        || (conn.peer_closed && !conn.in_flight && conn.buf_is_empty());
                }
            }
            close
        };
        if close_now {
            self.close_slot(idx);
        }
    }

    /// Drop a connection and recycle its slot under a new generation.
    fn close_slot(&mut self, idx: usize) {
        if let Some(conn) = self.slots[idx].conn.take() {
            if conn.reject {
                self.rejecting -= 1;
            } else {
                self.active -= 1;
                self.shared.metrics.active_connections.dec();
            }
            self.slots[idx].gen += 1;
            self.free.push(idx);
        }
    }
}

/// Drain pending wake bytes so the socket is quiet until the next wake.
fn drain_wake(wake_rx: &TcpStream) {
    let mut sink = [0u8; 256];
    let mut wake_rx: &TcpStream = wake_rx;
    loop {
        match wake_rx.read(&mut sink) {
            Ok(0) => return,
            Ok(_) => continue,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Frame and route as many buffered requests as possible on one
/// connection: dispatch engine work, answer inline endpoints, shed on a
/// full queue, and stop at one in-flight request per connection.
fn advance_conn(
    conn: &mut Conn,
    token: Token,
    dispatcher: &Dispatcher,
    shared: &Shared,
    stopping: bool,
) {
    loop {
        if conn.in_flight || conn.close_after_flush {
            return;
        }
        if stopping {
            // No new requests during shutdown: flush whatever is queued
            // (including a completion that just landed) and close.
            conn.close_after_flush = true;
            return;
        }
        conn.sniff();
        match conn.proto {
            Proto::Unknown => return, // no bytes yet
            Proto::Ndjson if conn.reject => {
                let line = cqc_serve::overload_line(cqc_serve::OVERLOAD_CONNECTION_LIMIT);
                conn.queue(line.as_bytes());
                conn.queue(b"\n");
                conn.close_after_flush = true;
                return;
            }
            Proto::Http if conn.reject => {
                let line = cqc_serve::overload_line(cqc_serve::OVERLOAD_CONNECTION_LIMIT);
                let mut out = Vec::new();
                let _ = write_response(&mut out, 503, "application/json", line.as_bytes(), true);
                conn.queue(&out);
                conn.close_after_flush = true;
                return;
            }
            Proto::Ndjson => match conn.next_ndjson_line() {
                NdjsonNext::NeedMore => {
                    if conn.peer_closed {
                        conn.close_after_flush = true;
                    }
                    return;
                }
                NdjsonNext::Line(line) => {
                    shared.metrics.ndjson_lines.inc();
                    conn.requests += 1;
                    let job = Job {
                        token,
                        conn_req: conn.requests,
                        queued: Stopwatch::start(),
                        kind: JobKind::Line { line },
                    };
                    if dispatcher.try_enqueue(job) {
                        conn.in_flight = true;
                        return;
                    }
                    shed_ndjson(conn, token, shared);
                    // connection stays usable; try the next line
                }
                NdjsonNext::TooLong => {
                    // over-long line: no way to resync on this stream —
                    // answer with a protocol error and close
                    let body = error_body(&format!("request line exceeds {MAX_BODY_BYTES} bytes"));
                    conn.queue(body.as_bytes());
                    conn.queue(b"\n");
                    conn.close_after_flush = true;
                    return;
                }
                NdjsonNext::BadUtf8 => {
                    let body = error_body("request line is not UTF-8");
                    conn.queue(body.as_bytes());
                    conn.queue(b"\n");
                    conn.close_after_flush = true;
                    return;
                }
            },
            Proto::Http => match conn.next_http_request() {
                HttpNext::NeedMore => {
                    if conn.peer_closed || conn.buf_at_cap() {
                        // EOF (or an unfinishable request) mid-request:
                        // nothing to answer, close once flushed.
                        conn.close_after_flush = true;
                    }
                    return;
                }
                HttpNext::Malformed(m) => {
                    shared.metrics.http_requests.inc();
                    let body = error_body(&m);
                    shared.metrics.observe_status(400);
                    queue_http(conn, 400, "application/json", body.as_bytes(), true);
                    return;
                }
                HttpNext::Request(request) => {
                    shared.metrics.http_requests.inc();
                    let keep_alive = request.keep_alive() && !shared.stopping();
                    let close = !keep_alive;
                    route_http(conn, token, request, close, dispatcher, shared);
                    // inline endpoints keep the pipeline moving; dispatch
                    // and close-bound responses stop this connection here
                }
            },
        }
    }
}

/// Route one parsed HTTP request: dispatch engine endpoints, answer the
/// rest inline on the event thread.
fn route_http(
    conn: &mut Conn,
    token: Token,
    request: crate::http::Request,
    close: bool,
    dispatcher: &Dispatcher,
    shared: &Shared,
) {
    let path = request.target.split('?').next().unwrap_or("").to_string();
    match (request.method.as_str(), path.as_str()) {
        ("POST", "/count") => {
            let traceparent = request.header("traceparent").map(str::to_string);
            match String::from_utf8(request.body) {
                Err(_) => {
                    let body = error_body("request body is not UTF-8");
                    shared.metrics.observe_status(400);
                    let extra: Vec<(&str, &str)> = traceparent
                        .as_deref()
                        .map(|t| vec![("Traceparent", t)])
                        .unwrap_or_default();
                    let mut out = Vec::new();
                    let _ = write_response_with(
                        &mut out,
                        400,
                        "application/json",
                        &extra,
                        body.as_bytes(),
                        close,
                    );
                    conn.queue(&out);
                    if close {
                        conn.close_after_flush = true;
                    }
                }
                Ok(text) => {
                    conn.requests += 1;
                    let job = Job {
                        token,
                        conn_req: conn.requests,
                        queued: Stopwatch::start(),
                        kind: JobKind::Count {
                            text,
                            traceparent,
                            close,
                        },
                    };
                    if dispatcher.try_enqueue(job) {
                        conn.in_flight = true;
                    } else {
                        shed_http(conn, token, close, shared);
                    }
                }
            }
        }
        ("POST", "/stream") => match String::from_utf8(request.body) {
            Err(_) => {
                let body = error_body("request body is not UTF-8");
                shared.metrics.observe_status(400);
                queue_http(conn, 400, "application/json", body.as_bytes(), close);
            }
            Ok(text) => {
                conn.requests += 1;
                let job = Job {
                    token,
                    conn_req: conn.requests,
                    queued: Stopwatch::start(),
                    kind: JobKind::Stream {
                        text,
                        http10: request.version == "HTTP/1.0",
                        close,
                    },
                };
                if dispatcher.try_enqueue(job) {
                    conn.in_flight = true;
                } else {
                    shed_http(conn, token, close, shared);
                }
            }
        },
        ("GET", "/healthz") => {
            shared.metrics.observe_status(200);
            queue_http(conn, 200, "application/json", b"{\"status\":\"ok\"}", close);
        }
        ("GET", "/metrics") => {
            // Gauges are sampled at scrape time, just before render
            // (`cqc_active_connections` is maintained live by the event
            // loop's admit/close bookkeeping).
            shared
                .metrics
                .pool_width
                .set(cqc_runtime::pool::global().width() as u64);
            shared
                .metrics
                .pool_queue_depth
                .set(cqc_runtime::pool::active_dispatches());
            shared.metrics.dispatch_queue_depth.set(dispatcher.depth());
            let text = shared.registry.render();
            shared.metrics.observe_status(200);
            queue_http(
                conn,
                200,
                "text/plain; version=0.0.4",
                text.as_bytes(),
                close,
            );
        }
        // The `/debug/*` endpoints are read-only introspection served
        // inline on the event thread, like `/healthz`: bounded bodies,
        // no engine work, no effect on request handling. They never emit
        // wide events themselves — a scraper polling `/debug/requests`
        // must not fill the very log it is reading.
        ("GET", "/debug/requests") => {
            let body = shared.wide.tail_ndjson();
            shared.metrics.observe_status(200);
            queue_http(conn, 200, "application/x-ndjson", body.as_bytes(), close);
        }
        ("GET", "/debug/flight") => {
            let body = cqc_obs::flight::snapshot().to_ndjson();
            shared.metrics.observe_status(200);
            queue_http(conn, 200, "application/x-ndjson", body.as_bytes(), close);
        }
        ("GET", "/debug/loop") => {
            let body = shared.debug_loop_json(dispatcher.depth());
            shared.metrics.observe_status(200);
            queue_http(conn, 200, "application/json", body.as_bytes(), close);
        }
        (
            _,
            "/count" | "/stream" | "/healthz" | "/metrics" | "/debug/requests" | "/debug/flight"
            | "/debug/loop",
        ) => {
            let body = error_body(&format!("method {} not allowed for {path}", request.method));
            shared.metrics.observe_status(405);
            queue_http(conn, 405, "application/json", body.as_bytes(), close);
        }
        _ => {
            let body = error_body(&format!("no such endpoint `{path}`"));
            shared.metrics.observe_status(404);
            queue_http(conn, 404, "application/json", body.as_bytes(), close);
        }
    }
}

/// Queue a fixed-length HTTP response built on the event thread.
fn queue_http(conn: &mut Conn, status: u16, content_type: &str, body: &[u8], close: bool) {
    let mut out = Vec::new();
    let _ = write_response(&mut out, status, content_type, body, close);
    conn.queue(&out);
    if close {
        conn.close_after_flush = true;
    }
}

/// Shed one HTTP request (dispatch queue full): 503 with the canonical
/// overload bytes, connection kept alive unless the request asked to
/// close.
fn shed_http(conn: &mut Conn, token: Token, close: bool, shared: &Shared) {
    shared.metrics.requests_shed.inc();
    cqc_obs::trace::instant("net_shed", "queue");
    let line = cqc_serve::overload_line(cqc_serve::OVERLOAD_QUEUE_FULL);
    shed_wide(shared, token, "http", "count", line.len(), conn.requests);
    queue_http(conn, 503, "application/json", line.as_bytes(), close);
}

/// Shed one NDJSON line (dispatch queue full): the canonical overload
/// line, connection kept alive.
fn shed_ndjson(conn: &mut Conn, token: Token, shared: &Shared) {
    shared.metrics.requests_shed.inc();
    cqc_obs::trace::instant("net_shed", "queue");
    let line = cqc_serve::overload_line(cqc_serve::OVERLOAD_QUEUE_FULL);
    shed_wide(shared, token, "ndjson", "line", line.len(), conn.requests);
    conn.queue(line.as_bytes());
    conn.queue(b"\n");
}

/// Record the wide event for a shed request (queue and handler times are
/// zero — the request never reached a worker) and feed the shed-burst
/// detector, dumping the flight recorder when a burst crosses the
/// threshold.
fn shed_wide(
    shared: &Shared,
    token: Token,
    protocol: &'static str,
    endpoint: &'static str,
    bytes: usize,
    conn_req: u64,
) {
    if cqc_obs::wide::enabled() {
        shared.wide.record(WideEvent {
            seq: 0,
            t_ns: cqc_obs::clock::now_nanos(),
            protocol,
            endpoint,
            class: String::new(),
            outcome: Outcome::Shed,
            status: 503,
            queue_ns: 0,
            handle_ns: 0,
            prepare_ns: 0,
            evaluate_ns: 0,
            bytes: bytes as u64,
            slot: token.slot,
            gen: token.gen,
            conn_req,
            trace: String::new(),
        });
    }
    if shared.flight_dumps.note_shed() {
        shared.flight_dumps.dump("shed-burst", false);
    }
}

/// A serve-protocol-shaped error body for transport-level failures.
pub(crate) fn error_body(message: &str) -> String {
    cqc_serve::json::Value::Obj(vec![
        ("id".to_string(), cqc_serve::json::Value::Null),
        (
            "error".to_string(),
            cqc_serve::json::Value::Str(message.to_string()),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_bodies_are_serve_shaped_json() {
        let body = error_body("boom \"quoted\"");
        assert_eq!(body, r#"{"id":null,"error":"boom \"quoted\""}"#);
        assert!(cqc_serve::json::parse(&body).is_ok());
    }

    #[test]
    fn flight_dumps_detect_bursts_and_honour_the_cooldown() {
        // the shed-burst detector fires exactly once, at the threshold
        // crossing, however long the burst runs on
        let dumps = FlightDumps::new(None);
        let fired = (0..SHED_BURST_THRESHOLD * 2)
            .filter(|_| dumps.note_shed())
            .count();
        assert_eq!(fired, 1);
        // no directory → dumps disabled, even forced
        assert!(dumps.dump("test", true).is_none());

        let dir = std::env::temp_dir().join(format!("cqc-flight-dumps-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let dumps = FlightDumps::new(Some(dir.clone()));
        let first = dumps.dump("slow", false).expect("first dump writes");
        assert!(
            first
                .file_name()
                .unwrap()
                .to_str()
                .unwrap()
                .contains("-slow"),
            "{first:?}"
        );
        // the cooldown suppresses an immediate unforced follow-up…
        assert!(dumps.dump("slow", false).is_none());
        // …but the panic path bypasses it — a panic dump is never lost
        let forced = dumps.dump("panic", true).expect("forced dump writes");
        assert!(forced.to_str().unwrap().contains("-panic"), "{forced:?}");
        assert_eq!(dumps.count(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loop_stats_track_totals_max_and_high_water() {
        let stats = LoopStats::default();
        stats.note_tick(100, 2);
        stats.note_tick(300, 1);
        assert_eq!(stats.ticks.load(Ordering::Relaxed), 2);
        assert_eq!(stats.tick_ns_total.load(Ordering::Relaxed), 400);
        assert_eq!(stats.tick_ns_max.load(Ordering::Relaxed), 300);
        assert_eq!(stats.queue_depth_hwm.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn accept_errors_are_classified() {
        use std::io::{Error, ErrorKind};
        // Peer-caused and resource-exhaustion errors retry…
        for retryable in [
            Error::from(ErrorKind::ConnectionAborted),
            Error::from(ErrorKind::ConnectionReset),
            Error::from(ErrorKind::Interrupted),
            Error::from_raw_os_error(24),  // EMFILE
            Error::from_raw_os_error(23),  // ENFILE
            Error::from_raw_os_error(105), // ENOBUFS
        ] {
            assert_eq!(
                classify_accept_error(&retryable),
                AcceptDisposition::Retry,
                "{retryable}"
            );
        }
        // …a broken listener does not.
        for fatal in [
            Error::from_raw_os_error(9),  // EBADF
            Error::from_raw_os_error(22), // EINVAL
        ] {
            assert_eq!(
                classify_accept_error(&fatal),
                AcceptDisposition::Fatal,
                "{fatal}"
            );
        }
    }
}
