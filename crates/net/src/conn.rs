//! Per-connection state for the readiness loop: buffered non-blocking I/O
//! plus incremental framing for both wire protocols.
//!
//! A [`Conn`] owns one accepted socket and two byte buffers. The event loop
//! in [`crate::server`] fills the read buffer when `poll(2)` reports the
//! socket readable, asks the connection to frame the next request (an HTTP
//! request or an NDJSON line) out of those bytes, and drains the write
//! buffer when the socket is writable. The connection itself never blocks
//! and never talks to the engine — it is pure buffering and framing, which
//! keeps the response bytes a function of the request bytes alone.

use crate::http::{self, HttpError, Request, MAX_BODY_BYTES, MAX_HEADERS, MAX_LINE_BYTES};
use cqc_obs::Stopwatch;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Upper bound on buffered-but-unframed request bytes per connection: the
/// largest legal HTTP request (16 MiB body + request line + headers) plus
/// slack. A connection whose buffer fills without yielding a request is
/// answered 400 and closed — the bound is what keeps a hostile trickle
/// from growing memory without limit.
pub(crate) const IN_BUF_CAP: usize = MAX_BODY_BYTES + (MAX_HEADERS + 4) * MAX_LINE_BYTES;

/// Read chunk size for draining a readable socket.
const READ_CHUNK: usize = 16 * 1024;

/// The sniffed wire protocol of a connection (decided by its first byte:
/// `{` opens a raw NDJSON request, anything else is read as HTTP/1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Proto {
    /// No bytes seen yet.
    Unknown,
    /// HTTP/1.1 (or 1.0) framing.
    Http,
    /// Raw newline-delimited JSON.
    Ndjson,
}

/// Result of asking a connection for its next NDJSON line.
pub(crate) enum NdjsonNext {
    /// No complete line buffered yet.
    NeedMore,
    /// One non-empty request line (without the trailing newline).
    Line(String),
    /// The line under construction exceeded [`MAX_BODY_BYTES`].
    TooLong,
    /// The buffered line is not UTF-8.
    BadUtf8,
}

/// Result of asking a connection for its next HTTP request.
pub(crate) enum HttpNext {
    /// The buffered bytes are a valid prefix of a request; wait for more.
    NeedMore,
    /// One complete request, consumed from the buffer.
    Request(Request),
    /// The buffered bytes can never become a valid request.
    Malformed(String),
}

/// One accepted connection: socket, buffers, framing state.
pub(crate) struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet framed into a request.
    buf: Vec<u8>,
    /// Response bytes queued but not yet written.
    out: Vec<u8>,
    /// How much of `out` has been written.
    out_pos: usize,
    /// Sniffed protocol.
    pub proto: Proto,
    /// Admitted over the connection cap: sniff, send one shed response,
    /// close. Never dispatches work.
    pub reject: bool,
    /// A dispatched request is awaiting its completion; reads pause.
    pub in_flight: bool,
    /// Close once `out` is fully flushed.
    pub close_after_flush: bool,
    /// The peer half-closed (read returned 0).
    pub peer_closed: bool,
    /// The `100 Continue` interim for the in-progress request was already
    /// queued (incremental parsing re-runs the parser from scratch, which
    /// would otherwise re-emit it).
    sent_100: bool,
    /// Restarted on every successful read/write; drives the idle sweep.
    pub last_activity: Stopwatch,
    /// Engine requests framed on this connection (dispatched or shed) —
    /// the 1-based `conn_req` ordinal of the wide-event log. Inline
    /// endpoints (`/healthz`, `/metrics`, `/debug/*`) do not count.
    pub requests: u64,
}

impl Conn {
    /// Wrap an accepted socket (already set non-blocking by the caller).
    pub fn new(stream: TcpStream, reject: bool) -> Conn {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            proto: Proto::Unknown,
            reject,
            in_flight: false,
            close_after_flush: false,
            peer_closed: false,
            sent_100: false,
            last_activity: Stopwatch::start(),
            requests: 0,
        }
    }

    /// The raw descriptor, for registration with the poll set.
    pub fn fd(&self) -> crate::poll::RawFd {
        crate::poll::raw_fd(&self.stream)
    }

    /// Whether the event loop should watch this socket for readability:
    /// not while a request is in flight (backpressure — one request per
    /// connection at a time, which also preserves response ordering), not
    /// once we have decided to close, and not past the buffer bound.
    pub fn wants_read(&self) -> bool {
        !self.in_flight
            && !self.close_after_flush
            && !self.peer_closed
            && self.buf.len() < IN_BUF_CAP
    }

    /// Whether response bytes are waiting for the socket.
    pub fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// Whether every queued response byte has reached the socket.
    pub fn flushed(&self) -> bool {
        !self.wants_write()
    }

    /// Whether the unframed buffer is empty.
    pub fn buf_is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Whether the unframed buffer hit [`IN_BUF_CAP`] (the request can
    /// never complete — answer 400 and close).
    pub fn buf_at_cap(&self) -> bool {
        self.buf.len() >= IN_BUF_CAP
    }

    /// Drain the readable socket into the buffer (until `WouldBlock`, the
    /// buffer cap, or EOF). `Err` means the socket is gone — close the
    /// connection.
    pub fn fill(&mut self) -> std::io::Result<()> {
        let mut chunk = [0u8; READ_CHUNK];
        while self.buf.len() < IN_BUF_CAP {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                    return Ok(());
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.last_activity.restart();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Queue response bytes for writing.
    pub fn queue(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    /// Write as much of the queued output as the socket accepts. `Err`
    /// means the socket is gone — close the connection.
    pub fn flush_out(&mut self) -> std::io::Result<()> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => return Err(ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity.restart();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(())
    }

    /// Decide the protocol from the first buffered byte, if any.
    pub fn sniff(&mut self) {
        if self.proto == Proto::Unknown {
            if let Some(&first) = self.buf.first() {
                self.proto = if first == b'{' {
                    Proto::Ndjson
                } else {
                    Proto::Http
                };
            }
        }
    }

    /// Frame the next non-empty NDJSON line out of the buffer.
    pub fn next_ndjson_line(&mut self) -> NdjsonNext {
        loop {
            match self.buf.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    let mut line: Vec<u8> = self.buf.drain(..=pos).collect();
                    line.pop(); // the newline
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    if line.is_empty() {
                        continue; // blank keep-alive line
                    }
                    match String::from_utf8(line) {
                        Ok(text) => return NdjsonNext::Line(text),
                        Err(_) => return NdjsonNext::BadUtf8,
                    }
                }
                None if self.buf.len() > MAX_BODY_BYTES => return NdjsonNext::TooLong,
                None => return NdjsonNext::NeedMore,
            }
        }
    }

    /// Try to frame one complete HTTP request out of the buffer. On
    /// success the request's bytes are consumed and any `100 Continue`
    /// interim is queued (exactly once per request, even though the
    /// incremental parser re-reads the prefix on every attempt).
    pub fn next_http_request(&mut self) -> HttpNext {
        let mut slice: &[u8] = &self.buf;
        let mut interim = Vec::new();
        match http::read_request(&mut slice, &mut interim) {
            Ok(None) => HttpNext::NeedMore,
            Ok(Some(request)) => {
                let consumed = self.buf.len() - slice.len();
                self.buf.drain(..consumed);
                if !interim.is_empty() && !self.sent_100 {
                    self.out.extend_from_slice(&interim);
                }
                self.sent_100 = false; // next request starts fresh
                HttpNext::Request(request)
            }
            Err(HttpError::UnexpectedEof) => {
                // A valid prefix: headers may already be complete (the
                // parser emits the interim before reading the body).
                if !interim.is_empty() && !self.sent_100 {
                    self.out.extend_from_slice(&interim);
                    self.sent_100 = true;
                }
                HttpNext::NeedMore
            }
            Err(HttpError::Malformed(m)) => HttpNext::Malformed(m),
            // `&[u8]` readers and `Vec` writers cannot fail with `Io`;
            // treat it as malformed if it ever appears.
            Err(HttpError::Io(m)) => HttpNext::Malformed(m),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, TcpListener};

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        (tx, Conn::new(rx, false))
    }

    #[test]
    fn http_request_is_framed_incrementally() {
        let (mut tx, mut conn) = pair();
        tx.write_all(b"POST /count HTTP/1.1\r\nContent-Le").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.fill().unwrap();
        conn.sniff();
        assert_eq!(conn.proto, Proto::Http);
        assert!(matches!(conn.next_http_request(), HttpNext::NeedMore));

        tx.write_all(b"ngth: 4\r\n\r\nbody").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.fill().unwrap();
        match conn.next_http_request() {
            HttpNext::Request(req) => {
                assert_eq!(req.method, "POST");
                assert_eq!(req.body, b"body");
            }
            _ => panic!("expected a complete request"),
        }
        assert!(conn.buf_is_empty());
    }

    #[test]
    fn expect_100_continue_interim_is_queued_once() {
        let (mut tx, mut conn) = pair();
        tx.write_all(b"POST /count HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 4\r\n\r\n")
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.fill().unwrap();
        // Headers complete, body missing: the interim goes out now…
        assert!(matches!(conn.next_http_request(), HttpNext::NeedMore));
        assert_eq!(conn.out, b"HTTP/1.1 100 Continue\r\n\r\n".to_vec());
        // …and another parse attempt must not queue it again.
        assert!(matches!(conn.next_http_request(), HttpNext::NeedMore));
        assert_eq!(conn.out.len(), b"HTTP/1.1 100 Continue\r\n\r\n".len());

        tx.write_all(b"body").unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.fill().unwrap();
        assert!(matches!(conn.next_http_request(), HttpNext::Request(_)));
        assert_eq!(conn.out.len(), b"HTTP/1.1 100 Continue\r\n\r\n".len());
    }

    #[test]
    fn ndjson_lines_are_framed_and_blank_lines_skipped() {
        let (mut tx, mut conn) = pair();
        tx.write_all(b"{\"id\":1}\r\n\n{\"id\":2}\n{\"part")
            .unwrap();
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.fill().unwrap();
        conn.sniff();
        assert_eq!(conn.proto, Proto::Ndjson);
        assert!(matches!(conn.next_ndjson_line(), NdjsonNext::Line(l) if l == "{\"id\":1}"));
        assert!(matches!(conn.next_ndjson_line(), NdjsonNext::Line(l) if l == "{\"id\":2}"));
        assert!(matches!(conn.next_ndjson_line(), NdjsonNext::NeedMore));
    }

    #[test]
    fn peer_close_is_observed() {
        let (tx, mut conn) = pair();
        drop(tx);
        std::thread::sleep(std::time::Duration::from_millis(20));
        conn.fill().unwrap();
        assert!(conn.peer_closed);
    }
}
