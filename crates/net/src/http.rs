//! A minimal HTTP/1.1 layer: request parsing (request line, headers,
//! `Content-Length` bodies) and response writing (fixed-length and chunked),
//! built on `std::io` only.
//!
//! Scope is deliberately narrow — exactly what the serving front end needs:
//! `GET`/`POST`, keep-alive, `Content-Length` request bodies (no request
//! chunking, no trailers, no TLS). Hard limits bound what an unauthenticated
//! peer can make the server buffer.

use std::fmt;
use std::io::{BufRead, Write};

/// Upper bound on the request line and on each header line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of headers per request.
pub const MAX_HEADERS: usize = 64;
/// Upper bound on a request body, in bytes. Requests carry inline facts
/// texts, so the bound is generous but still finite.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// An HTTP parsing/IO failure; rendered into a `400` (or a closed
/// connection when the stream is already unusable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The peer closed the connection mid-request.
    UnexpectedEof,
    /// The request violates the grammar or a hard limit.
    Malformed(String),
    /// Reading from or writing to the socket failed.
    Io(String),
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::UnexpectedEof => write!(f, "connection closed mid-request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::Io(m) => write!(f, "http io error: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// A parsed HTTP request. Header names are lowercased on parse; values keep
/// their bytes (trimmed of surrounding whitespace).
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb, uppercase as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request target (path plus optional query string).
    pub target: String,
    /// The protocol version (`HTTP/1.1` or `HTTP/1.0`).
    pub version: String,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Does the peer want the connection kept open after this exchange?
    /// HTTP/1.1 defaults to keep-alive unless `Connection: close`;
    /// HTTP/1.0 defaults to close unless `Connection: keep-alive`.
    pub fn keep_alive(&self) -> bool {
        let connection = self
            .header("connection")
            .map(|v| v.to_ascii_lowercase())
            .unwrap_or_default();
        if self.version == "HTTP/1.0" {
            connection == "keep-alive"
        } else {
            connection != "close"
        }
    }
}

/// Read one CRLF- (or bare-LF-) terminated line, enforcing
/// [`MAX_LINE_BYTES`]. `Ok(None)` means clean EOF before any byte.
fn read_line<R: BufRead>(reader: &mut R) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::UnexpectedEof);
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if buf.last() == Some(&b'\r') {
                        buf.pop();
                    }
                    return String::from_utf8(buf)
                        .map(Some)
                        .map_err(|_| HttpError::Malformed("non-UTF-8 header bytes".into()));
                }
                buf.push(byte[0]);
                if buf.len() > MAX_LINE_BYTES {
                    return Err(HttpError::Malformed(format!(
                        "line exceeds {MAX_LINE_BYTES} bytes"
                    )));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Io(e.to_string())),
        }
    }
}

/// Read and parse one request, writing the interim `100 Continue` response
/// to `writer` when the client asked for one (`Expect: 100-continue` —
/// curl sends it for bodies over ~1 KiB and waits before transmitting the
/// body, so not answering would stall every such request). `Ok(None)`
/// signals a cleanly closed connection (EOF between requests — the normal
/// end of keep-alive).
pub fn read_request<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
) -> Result<Option<Request>, HttpError> {
    let line = match read_line(reader)? {
        None => return Ok(None),
        Some(line) => line,
    };
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => {
            (m.to_string(), t.to_string(), v.to_string())
        }
        _ => return Err(HttpError::Malformed(format!("bad request line `{line}`"))),
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!(
            "unsupported version `{version}`"
        )));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader)?.ok_or(HttpError::UnexpectedEof)?;
        if line.is_empty() {
            break;
        }
        if headers.len() == MAX_HEADERS {
            return Err(HttpError::Malformed(format!(
                "more than {MAX_HEADERS} headers"
            )));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line `{line}`")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let mut request = Request {
        method,
        target,
        version,
        headers,
        body: Vec::new(),
    };
    if let Some(raw) = request.header("transfer-encoding") {
        return Err(HttpError::Malformed(format!(
            "transfer-encoding `{raw}` not supported for request bodies (send Content-Length)"
        )));
    }
    if let Some(raw) = request.header("expect") {
        if !raw.eq_ignore_ascii_case("100-continue") {
            return Err(HttpError::Malformed(format!(
                "unsupported expectation `{raw}`"
            )));
        }
        writer
            .write_all(b"HTTP/1.1 100 Continue\r\n\r\n")
            .and_then(|()| writer.flush())
            .map_err(|e| HttpError::Io(e.to_string()))?;
    }
    if let Some(raw) = request.header("content-length") {
        let len: usize = raw
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length `{raw}`")))?;
        if len > MAX_BODY_BYTES {
            return Err(HttpError::Malformed(format!(
                "body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
            )));
        }
        let mut body = vec![0u8; len];
        std::io::Read::read_exact(reader, &mut body).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                HttpError::UnexpectedEof
            } else {
                HttpError::Io(e.to_string())
            }
        })?;
        request.body = body;
    }
    Ok(Some(request))
}

/// The reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write a fixed-length response. The bytes on the wire are a pure function
/// of the arguments — header order and formatting are fixed — so response
/// determinism reduces to body determinism.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    write_response_with(writer, status, content_type, &[], body, close)
}

/// [`write_response`] with extra `(name, value)` headers inserted between
/// `Content-Length` and the optional `Connection: close`. With no extra
/// headers the bytes are identical to [`write_response`] — the serving
/// layer uses this to echo a request's `traceparent` header (a pure
/// function of the request bytes) without perturbing any other response.
pub fn write_response_with<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        reason(status),
        body.len(),
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(
        writer,
        "{}\r\n",
        if close { "Connection: close\r\n" } else { "" },
    )?;
    writer.write_all(body)?;
    writer.flush()
}

/// Write the head of a chunked response (the streaming NDJSON endpoint).
pub fn write_chunked_head<W: Write>(
    writer: &mut W,
    content_type: &str,
    close: bool,
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nTransfer-Encoding: chunked\r\n{}\r\n",
        if close { "Connection: close\r\n" } else { "" },
    )
}

/// Write one chunk and flush it, so a closed-loop client sees each
/// response line as soon as it is computed.
pub fn write_chunk<W: Write>(writer: &mut W, chunk: &[u8]) -> std::io::Result<()> {
    if chunk.is_empty() {
        return Ok(());
    }
    write!(writer, "{:x}\r\n", chunk.len())?;
    writer.write_all(chunk)?;
    writer.write_all(b"\r\n")?;
    writer.flush()
}

/// Terminate a chunked response.
pub fn finish_chunks<W: Write>(writer: &mut W) -> std::io::Result<()> {
    writer.write_all(b"0\r\n\r\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(text.as_bytes()), &mut Vec::new())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /count HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbodyEXTRA")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/count");
        assert_eq!(req.body, b"body");
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(req.keep_alive());
    }

    #[test]
    fn connection_close_and_http10_defaults() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive());
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive());
        let req = parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive());
    }

    #[test]
    fn eof_before_any_byte_is_a_clean_none() {
        assert_eq!(parse("").unwrap().map(|r| r.method), None);
    }

    #[test]
    fn expect_100_continue_gets_the_interim_response_before_the_body() {
        let mut interim = Vec::new();
        let req = read_request(
            &mut BufReader::new(
                "POST / HTTP/1.1\r\nExpect: 100-Continue\r\nContent-Length: 4\r\n\r\nbody"
                    .as_bytes(),
            ),
            &mut interim,
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.body, b"body");
        assert_eq!(interim, b"HTTP/1.1 100 Continue\r\n\r\n");
        // other expectations are rejected, and no interim bytes are sent
        let mut interim = Vec::new();
        let err = read_request(
            &mut BufReader::new("POST / HTTP/1.1\r\nExpect: teapot\r\n\r\n".as_bytes()),
            &mut interim,
        )
        .unwrap_err();
        assert!(matches!(err, HttpError::Malformed(_)), "{err}");
        assert!(interim.is_empty());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "GET\r\n\r\n",
            "GET / HTTP/2\r\n\r\n",
            "GET / HTTP/1.1\r\nno-colon\r\n\r\n",
            "POST / HTTP/1.1\r\nContent-Length: zap\r\n\r\n",
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(matches!(parse(bad), Err(HttpError::Malformed(_))), "{bad}");
        }
        // body larger than advertised input: unexpected EOF
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpError::UnexpectedEof)
        ));
    }

    #[test]
    fn oversized_inputs_are_bounded() {
        let long = "A".repeat(MAX_LINE_BYTES + 2);
        assert!(matches!(
            parse(&format!("GET /{long} HTTP/1.1\r\n\r\n")),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse(&format!(
                "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn responses_render_deterministically() {
        let mut a = Vec::new();
        write_response(&mut a, 200, "application/json", b"{\"x\":1}", false).unwrap();
        let text = String::from_utf8(a).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 7\r\n\r\n{\"x\":1}"
        );
        let mut b = Vec::new();
        write_response(&mut b, 404, "text/plain", b"nope", true).unwrap();
        assert!(String::from_utf8(b).unwrap().contains("Connection: close"));
    }

    #[test]
    fn extra_headers_sit_between_content_length_and_connection() {
        let mut out = Vec::new();
        write_response_with(
            &mut out,
            200,
            "application/json",
            &[("Traceparent", "00-abc-def-01")],
            b"{}",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\
             Traceparent: 00-abc-def-01\r\nConnection: close\r\n\r\n{}"
        );
        // no extra headers: byte-identical to write_response
        let mut a = Vec::new();
        let mut b = Vec::new();
        write_response(&mut a, 200, "text/plain", b"x", false).unwrap();
        write_response_with(&mut b, 200, "text/plain", &[], b"x", false).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn chunked_responses_render_correctly() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, "application/x-ndjson", false).unwrap();
        write_chunk(&mut out, b"{\"id\":0}\n").unwrap();
        write_chunk(&mut out, b"").unwrap();
        write_chunk(&mut out, b"{\"id\":1}\n").unwrap();
        finish_chunks(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(!text.contains("Connection: close"));
        assert!(text.ends_with("9\r\n{\"id\":0}\n\r\n9\r\n{\"id\":1}\n\r\n0\r\n\r\n"));
        let mut closing = Vec::new();
        write_chunked_head(&mut closing, "application/x-ndjson", true).unwrap();
        assert!(String::from_utf8(closing)
            .unwrap()
            .contains("Connection: close\r\n"));
    }
}
