//! The flight-recorder / wide-event acceptance test: the live `/debug/*`
//! endpoints expose the request tail, the recorder snapshot and the
//! event-loop statistics; a handler panic forces a flight dump that
//! contains the panicking request's own wide event; and the `/debug`
//! endpoints never record wide events about themselves (a scraper must
//! not fill the log it reads).
//!
//! One `#[test]` body: the wide/flight toggles are process-global.

use cqc_net::{NetConfig, RunningServer};
use cqc_serve::ServerConfig;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

const COUNT_REQ: &str = r#"{"id": 1, "query": "ans(x) :- E(x, y), E(x, z), y != z", "dbs": ["universe 4\nrelation E 2\nE 0 1\nE 0 2\nE 3 1\nE 3 2\n"], "seed": 7, "method": "exact"}"#;

/// One HTTP request over a fresh connection; returns the raw response.
fn http(server: &RunningServer, request: &str) -> String {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.write_all(request.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    raw
}

fn get(server: &RunningServer, path: &str) -> String {
    http(
        server,
        &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn post_count(server: &RunningServer, body: &str) -> String {
    http(
        server,
        &format!(
            "POST /count HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// The body of an HTTP response (after the blank line).
fn body_of(raw: &str) -> &str {
    raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("")
}

#[test]
fn debug_endpoints_and_panic_dumps_expose_the_flight_recorder() {
    cqc_obs::wide::set_enabled(true);
    cqc_obs::flight::set_enabled(true);
    cqc_obs::flight::reset();

    let dump_dir = std::env::temp_dir().join(format!("cqc-flight-debug-{}", std::process::id()));
    std::fs::create_dir_all(&dump_dir).unwrap();
    let server = RunningServer::bind(
        "127.0.0.1:0",
        NetConfig {
            serve: ServerConfig {
                // deliberate fail-injection hook: a request carrying
                // `"panic": true` panics inside the handler
                fail_injection: true,
                ..ServerConfig::default()
            },
            flight_dir: Some(dump_dir.clone()),
            ..NetConfig::default()
        },
    )
    .expect("bind");

    // --- the wide-event tail -------------------------------------------
    // two HTTP count requests and one raw NDJSON line…
    for _ in 0..2 {
        let raw = post_count(&server, COUNT_REQ);
        assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    }
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    stream.write_all(COUNT_REQ.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(response.contains("\"estimate\":2,"), "{response}");
    drop(reader);
    drop(stream);

    // …show up as exactly three wide records in the tail, per protocol
    let raw = get(&server, "/debug/requests");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    assert!(raw.contains("application/x-ndjson"), "{raw}");
    let tail = body_of(&raw).to_string();
    let wide = |text: &str| {
        text.lines()
            .filter(|l| l.contains("\"type\":\"wide\""))
            .count()
    };
    assert_eq!(wide(&tail), 3, "{tail}");
    assert_eq!(tail.matches("\"protocol\":\"http\"").count(), 2, "{tail}");
    assert_eq!(tail.matches("\"protocol\":\"ndjson\"").count(), 1, "{tail}");
    assert!(tail.contains("\"outcome\":\"ok\""), "{tail}");
    assert!(tail.contains("\"class\":"), "{tail}");

    // scraping the tail again records nothing new: /debug endpoints are
    // invisible to the log they serve
    let again = body_of(&get(&server, "/debug/requests")).to_string();
    assert_eq!(wide(&again), 3, "{again}");
    assert!(!again.contains("\"endpoint\":\"debug"), "{again}");

    // --- the flight snapshot and loop stats ----------------------------
    let raw = get(&server, "/debug/flight");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    let flight = body_of(&raw);
    assert!(flight.starts_with("{\"type\":\"flight\""), "{flight}");
    // the recorder mirrors both trace events and wide events
    assert!(flight.contains("\"type\":\"wide\""), "{flight}");
    assert!(flight.contains("\"name\":\"request\""), "{flight}");

    let raw = get(&server, "/debug/loop");
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    let loop_stats = body_of(&raw);
    let stats = cqc_serve::json::parse(loop_stats.trim()).expect("loop stats parse");
    assert!(
        stats.get("ticks").and_then(|v| v.as_u64()).unwrap() > 0,
        "{loop_stats}"
    );
    for key in [
        "tick_ns_max",
        "tick_ns_mean",
        "wakeups",
        "dispatch_queue_depth",
        "dispatch_queue_depth_hwm",
        "flight_dumps",
        "flight_dropped",
        "wide_recorded",
        "wide_dropped",
    ] {
        assert!(stats.get(key).is_some(), "`{key}` missing in {loop_stats}");
    }
    assert_eq!(
        stats.get("wide_recorded").and_then(|v| v.as_u64()),
        Some(3),
        "{loop_stats}"
    );

    // debug endpoints are GET-only
    let raw = http(
        &server,
        "POST /debug/loop HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert!(raw.starts_with("HTTP/1.1 405"), "{raw}");

    // --- a handler panic forces a dump with the panicking wide event ---
    let panic_req = COUNT_REQ.replace("\"id\": 1", "\"id\": 99, \"panic\": true");
    let raw = post_count(&server, &panic_req);
    assert!(raw.starts_with("HTTP/1.1 500"), "{raw}");
    let dumps: Vec<_> = std::fs::read_dir(&dump_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_str().unwrap().ends_with("-panic.ndjson"))
        .collect();
    assert_eq!(dumps.len(), 1, "{dumps:?}");
    let dump_text = std::fs::read_to_string(&dumps[0]).unwrap();
    assert!(dump_text.starts_with("{\"type\":\"flight\""), "{dump_text}");
    // the dump contains the panicking request's own wide event — recorded
    // before the snapshot was taken, force-bypassing the dump cooldown
    assert!(dump_text.contains("\"outcome\":\"panic\""), "{dump_text}");
    assert!(dump_text.contains("\"status\":500"), "{dump_text}");

    // the server survives the panic and keeps serving
    let raw = post_count(&server, COUNT_REQ);
    assert!(raw.starts_with("HTTP/1.1 200"), "{raw}");
    // the panic is visible in the tail too
    let tail = body_of(&get(&server, "/debug/requests")).to_string();
    assert!(tail.contains("\"outcome\":\"panic\""), "{tail}");

    server.shutdown();
    cqc_obs::wide::set_enabled(false);
    cqc_obs::flight::set_enabled(false);
    cqc_obs::flight::reset();
    std::fs::remove_dir_all(&dump_dir).ok();
}
